//! Compile-then-execute: lower a [`Circuit`] once into a flat list of
//! fused kernel ops, then replay that list per shot.
//!
//! The interpreted executor ([`crate::run_once_interpreted`]) re-dispatches
//! every [`Instruction`] and re-derives every gate matrix on every shot.
//! [`CompiledCircuit::compile`] pays those costs **once**:
//!
//! * every gate matrix, control mask and phase factor is precomputed into a
//!   [`KernelOp`] — replay touches no trig, no `match inst.gate`, and no
//!   allocation;
//! * **single-qubit fusion** — adjacent single-qubit unitaries on the same
//!   target with the same control mask collapse via 2×2 matrix products, and
//!   uncontrolled/same-controlled diagonal gates fold into neighbouring
//!   dense matrices;
//! * **phase-sweep fusion** — diagonal gates (Z/S/T/Rz/CZ/CPhase/CCPhase…)
//!   all commute, so runs of them are reordered freely: same-mask phases
//!   merge by angle addition and the `Rz` global phases accumulate into a
//!   single [`KernelOp::Scale`];
//! * **two-qubit block fusion** — a second pass collapses adjacent gate
//!   runs sharing a qubit pair (with equal *outer* control masks) into one
//!   [`KernelOp::Dense2`] 4×4 block, and keeps absorbing single-qubit
//!   matrices, in-pair controlled gates, in-pair diagonals and in-pair
//!   swaps into that block. One `Dense2` sweep visits `2^(n-2-c)` quads —
//!   one pass over the state for the whole fused run instead of one pass
//!   per gate. Runs where *every* matrix is cheap (exactly diagonal or
//!   anti-diagonal — X/CX ladders) are deliberately **not** paired: the
//!   flip/phase kernels already beat a 4×4 mat-vec for those;
//! * **swap relabeling** — an uncontrolled `Swap` never executes during the
//!   circuit body. The compiler tracks a logical→physical qubit map
//!   instead, relabels every later operand through it, and flushes the
//!   residual permutation as at most `n-1` swap ops at the end of the
//!   circuit (where trailing `Dense2` blocks can still absorb them).
//!   Mid-circuit `Measure`/`Reset` carry both the *logical* qubit (for the
//!   shot record) and the current *physical* location (for the state
//!   update), so relabeling is exact bookkeeping, not a reorder;
//! * fused matrices are **classified** into the cheapest kernel the state
//!   vector offers: anti-diagonal results run the branch-free flip kernel
//!   ([`StateVector::apply_antidiag`]), diagonal results run the phase /
//!   diagonal kernels, a `Dense2` that collapses to the swap permutation
//!   runs the swap kernel, exact identities are dropped entirely.
//!
//! Fusion never crosses a `Measure`, `Reset` or `Barrier`: those are hard
//! scheduling points, so a compiled replay performs its RNG draws in
//! exactly the same order as the interpreted executor.
//!
//! # Cache-blocked replay
//!
//! Compilation also plans **cache blocking**: consecutive runs of ops whose
//! whole support (targets, controls, phase masks) lies below
//! `CACHE_BLOCK_QUBITS` are grouped into a blockable segment. On states
//! of at least `2^CACHE_BLOCK_MIN_QUBITS` amplitudes, replay walks such a
//! segment block-by-block: each `2^15`-amplitude block (512 KiB — sized to
//! sit in a per-core L2 while leaving room for the read+write streams)
//! streams through the cache **once for the whole run of fused ops**
//! instead of once per op. Block-local ops cannot reach across a block
//! boundary, and the per-amplitude arithmetic is expression-identical to
//! the full-state kernels, so blocked replay is bit-identical to unblocked
//! replay — only the traversal order changes. Segments containing a
//! `Measure`/`Reset` or any op touching a qubit ≥ 15 replay through the
//! ordinary full-state kernels.
//!
//! # Determinism contract
//!
//! A compiled replay draws from the RNG exactly once per `Measure`/`Reset`,
//! in program order — identical to the interpreted path — so compiled and
//! interpreted runs of the same [`crate::ShotPlan`] consume identical RNG
//! streams and their merged [`crate::Counts`] stay inside the PR 2
//! `(seed, tasks, chunk_shots)` byte-identical contract. Fused arithmetic
//! rounds differently at the last ulp (a 2×2 product is not two sequential
//! applies, and a relabeled measurement sums the same probabilities in a
//! different order), so *amplitudes* agree to ~1e-12 rather than
//! bit-for-bit; an outcome would only flip if a measurement probability and
//! an RNG draw coincided to ~1e-12, which the equivalence property tests
//! (`cross_crate_props`) assert never happens for seeded runs. The fusion
//! knob ([`crate::RunConfig::fusion`], `QCOR_GATE_FUSION`) keeps the
//! interpreted path selectable for exactly this A/B comparison.

use crate::complex::Complex64;
use crate::executor::ShotRecord;
use crate::gates::{
    embed_pair_single, identity4, mat2_mul, mat4_mul, pair_phase_matrix, single_qubit_matrix, swap4,
};
use crate::state::{BitInserts, StateVector};
use crate::stats::{record_iterations, KernelClass};
use qcor_circuit::{Circuit, GateKind, Instruction};
use rand::Rng;
use std::ops::Range;

/// One precomputed state-vector update of a compiled circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelOp {
    /// Dense 2×2 unitary on `target`, restricted to `ctrl_mask`.
    Dense { target: usize, ctrl_mask: usize, m: [[Complex64; 2]; 2] },
    /// Fused dense 4×4 unitary on the qubit pair `(t0, t1)` with `t0 < t1`
    /// (pair-basis index `s = bit(t1) << 1 | bit(t0)`), restricted to
    /// `ctrl_mask` (which excludes both pair bits). Boxed: the 256-byte
    /// matrix would otherwise dominate the enum size.
    Dense2 { t0: usize, t1: usize, ctrl_mask: usize, m: Box<[[Complex64; 4]; 4]> },
    /// Anti-diagonal [[0, m01], [m10, 0]] — the X-like flip kernel.
    Flip { target: usize, ctrl_mask: usize, m01: Complex64, m10: Complex64 },
    /// diag(d0, d1) on `target` under `ctrl_mask`, both entries non-trivial.
    Diag { target: usize, ctrl_mask: usize, d0: Complex64, d1: Complex64 },
    /// Multiply amplitudes with `set_mask` bits set and `clear_mask` bits
    /// clear by a precomputed unit phase.
    Phase { set_mask: usize, clear_mask: usize, phase: Complex64 },
    /// Multiply every amplitude by `factor` (merged global phases).
    Scale { factor: Complex64 },
    /// (Controlled) swap of qubits `a` and `b`.
    Swap { a: usize, b: usize, ctrl_mask: usize },
    /// Computational-basis measurement of logical `qubit`, currently living
    /// at physical bit `loc` (they differ when swap relabeling is active).
    Measure { qubit: usize, loc: usize },
    /// Reset logical `qubit` (at physical bit `loc`) to |0⟩.
    Reset { qubit: usize, loc: usize },
}

/// Intermediate form during fusion: dense matrices and *angle*-valued
/// phases (angles merge exactly by addition; the unit complex factor is
/// derived once at finalization). Each unitary op carries its provenance
/// (`src`): the [`Atom`] ids, in temporal order, whose ordered product the
/// op's value is. Cold compilation leaves the lists empty (zero cost — an
/// empty `Vec` never allocates); the template compiler uses them to
/// re-derive parameter-dependent groups at [`CompiledTemplate::rebind`].
#[derive(Debug, Clone)]
enum LowOp {
    Dense {
        target: usize,
        ctrl_mask: usize,
        m: [[Complex64; 2]; 2],
        src: Srcs,
    },
    Dense2 {
        t0: usize,
        t1: usize,
        ctrl_mask: usize,
        m: Box<[[Complex64; 4]; 4]>,
        src: Srcs,
    },
    Phase {
        set_mask: usize,
        clear_mask: usize,
        theta: f64,
        src: Srcs,
    },
    Swap {
        a: usize,
        b: usize,
        ctrl_mask: usize,
        src: Srcs,
    },
    Measure {
        qubit: usize,
        loc: usize,
    },
    Reset {
        qubit: usize,
        loc: usize,
    },
    /// Hard fusion barrier (from `GateKind::Barrier`); dropped at
    /// finalization.
    Barrier,
}

/// Provenance of a fused group: atom ids in temporal (program) order.
/// Merging with an *earlier* op prepends its list; folding a *later* op
/// into an existing one appends — so the ordered product over the list
/// always reconstructs the group's operator.
type Srcs = Vec<u32>;

/// High bit of an atom id, set when the atom's value depends on a
/// parameter slot. Lets `has_param` run without touching the atom table.
const PARAM_ATOM: u32 = 1 << 31;

/// True when any atom in the group is parameter-dependent. Groups with a
/// parameter are never dropped at template-build time (a binding-specific
/// identity must not be baked into the reusable plan) and are re-derived
/// on every rebind.
fn has_param(src: &[u32]) -> bool {
    src.iter().any(|&id| id & PARAM_ATOM != 0)
}

/// Take the provenance out of a removed op (non-unitary ops have none).
fn take_src(op: LowOp) -> Srcs {
    match op {
        LowOp::Dense { src, .. }
        | LowOp::Dense2 { src, .. }
        | LowOp::Phase { src, .. }
        | LowOp::Swap { src, .. } => src,
        _ => Srcs::new(),
    }
}

/// Prepend the provenance of an earlier op: `dst = earlier ++ dst`.
fn prepend_src(dst: &mut Srcs, mut earlier: Srcs) {
    if !earlier.is_empty() {
        earlier.extend(dst.iter().copied());
        *dst = earlier;
    }
}

/// Angle sentinel the template compiler feeds into parameterized gates.
/// Sentinels only steer the *value-dependent heuristics* of fusion (the
/// `is_cheap` pairing test): they are generic, slot-distinct angles, so no
/// sentinel matrix ever looks diagonal/anti-diagonal/identity and the
/// template's decisions hold for every future binding. Correctness never
/// rests on them — parameter-dependent groups are re-derived per binding.
fn sentinel_value(slot: usize) -> f64 {
    0.618_033_988_749_894_9 + 0.05 * ((slot & 63) as f64)
}

/// The value of one phase angle in a template: a constant, or `scale ×
/// values[slot]` for a parameterized gate (e.g. the `-θ/2` global half of
/// an `Rz` is `Slot { slot, scale: -0.5 }`).
#[derive(Debug, Clone, Copy)]
enum ThetaSpec {
    Const(f64),
    Slot { slot: u32, scale: f64 },
}

impl ThetaSpec {
    fn eval(self, values: &[f64]) -> f64 {
        match self {
            ThetaSpec::Const(c) => c,
            ThetaSpec::Slot { slot, scale } => scale * values[slot as usize],
        }
    }
}

/// Build the angle spec for a gate's `k = 0` parameter: a slot reference in
/// template mode, the bound constant in cold mode.
fn theta_spec(slot0: Option<u32>, scale: f64, value: f64) -> ThetaSpec {
    match slot0 {
        Some(slot) => ThetaSpec::Slot { slot, scale },
        None => ThetaSpec::Const(value),
    }
}

/// One lowered unit of the source circuit as registered by the template
/// compiler. A fused group's operator is the ordered product of its atoms'
/// matrices, so [`CompiledTemplate::rebind`] can re-derive exactly the
/// parameter-dependent groups for any binding.
#[derive(Debug, Clone)]
enum Atom {
    /// Diagonal phase on `set_mask`-set / `clear_mask`-clear amplitudes
    /// (`set_mask == usize::MAX` is the global-phase sentinel).
    Phase { set_mask: usize, clear_mask: usize, theta: ThetaSpec },
    /// (Controlled) single-qubit unitary at physical `target`; `ctrl_mask`
    /// is the full physical control mask at lowering time and `pslot` the
    /// gate's first parameter slot when parameterized.
    Single { gate: GateKind, target: usize, ctrl_mask: usize, pslot: Option<u32> },
    /// A swap folded into a pair block (always constant).
    Swap,
}

impl Atom {
    fn single_matrix(gate: GateKind, pslot: Option<u32>, values: &[f64]) -> [[Complex64; 2]; 2] {
        let n = gate.num_params();
        let mut pv = [0.0f64; 3];
        if let Some(p0) = pslot {
            pv[..n].copy_from_slice(&values[p0 as usize..p0 as usize + n]);
        }
        single_qubit_matrix(gate, &pv[..n]).expect("single-qubit atom")
    }

    /// The atom's 2×2 matrix inside a single-qubit group on `bit = 1 <<
    /// target` (the fold conditions guarantee a phase atom here is either
    /// the target-set or the target-clear diagonal of the group).
    fn mat2(&self, bit: usize, values: &[f64]) -> [[Complex64; 2]; 2] {
        match self {
            Atom::Single { gate, pslot, .. } => Self::single_matrix(*gate, *pslot, values),
            Atom::Phase { clear_mask, theta, .. } => {
                let p = Complex64::from_polar_unit(theta.eval(values));
                if clear_mask & bit != 0 {
                    [[p, Complex64::ZERO], [Complex64::ZERO, Complex64::ONE]]
                } else {
                    [[Complex64::ONE, Complex64::ZERO], [Complex64::ZERO, p]]
                }
            }
            Atom::Swap => unreachable!("swap atoms only occur in pair groups"),
        }
    }

    /// The atom's 4×4 matrix inside a pair group on `(t0, t1)` (the fold
    /// conditions guarantee the atom's outer masks match the group's, so
    /// only the in-pair bits matter here).
    fn mat4(&self, t0: usize, t1: usize, values: &[f64]) -> [[Complex64; 4]; 4] {
        let pb = (1usize << t0) | (1usize << t1);
        match self {
            Atom::Single { gate, target, ctrl_mask, pslot } => embed_pair_single(
                usize::from(*target == t1),
                pair_s_mask(ctrl_mask & pb, t0, t1),
                Self::single_matrix(*gate, *pslot, values),
            ),
            Atom::Phase { set_mask, clear_mask, theta } => pair_phase_matrix(
                pair_s_mask(set_mask & pb, t0, t1),
                pair_s_mask(clear_mask & pb, t0, t1),
                theta.eval(values),
            ),
            Atom::Swap => swap4(),
        }
    }
}

/// Left-multiply `acc` in place by the embedded (controlled) single `m`
/// acting on pair bit `pos`, conditioned on in-pair controls `ctrl_s` —
/// the specialized form of `mat4_mul(&embed_pair_single(pos, ctrl_s, m),
/// &acc)` (rows with unsatisfied controls are identity rows, so only the
/// satisfying row pair mixes).
fn mul4_single_left(acc: &mut [[Complex64; 4]; 4], pos: usize, ctrl_s: usize, m: [[Complex64; 2]; 2]) {
    let bit = 1usize << pos;
    for s0 in 0..4usize {
        if s0 & bit != 0 || s0 & ctrl_s != ctrl_s {
            continue;
        }
        let (lo, hi) = acc.split_at_mut(s0 | bit);
        for (x0, x1) in lo[s0].iter_mut().zip(hi[0].iter_mut()) {
            let (a0, a1) = (*x0, *x1);
            *x0 = m[0][0] * a0 + m[0][1] * a1;
            *x1 = m[1][0] * a0 + m[1][1] * a1;
        }
    }
}

/// Left-multiply `acc` in place by the pair-diagonal phase block — the
/// specialized form of `mat4_mul(&pair_phase_matrix(set_s, clear_s,
/// theta), &acc)` (scales the selected rows, leaves the rest untouched).
fn mul4_phase_left(acc: &mut [[Complex64; 4]; 4], set_s: usize, clear_s: usize, theta: f64) {
    let p = Complex64::from_polar_unit(theta);
    for (s, row) in acc.iter_mut().enumerate() {
        if s & set_s == set_s && s & clear_s == 0 {
            for cell in row {
                *cell *= p;
            }
        }
    }
}

/// How far backward the fusion passes search for a merge partner while
/// hopping over commuting ops. Bounds each pass at O(len × window).
const FUSION_WINDOW: usize = 32;

/// Block size (in qubits) for cache-blocked replay: `2^15` amplitudes =
/// 512 KiB of `Complex64`, sized to stay resident in a per-core L2 (typical
/// 1–2 MiB) with headroom for the streamed read+write halves of a sweep.
pub(crate) const CACHE_BLOCK_QUBITS: usize = 15;

/// Minimum state size (in qubits) before blocking pays: below `2^18`
/// amplitudes (4 MiB) the whole state fits in L2/L3 anyway and the extra
/// dispatch would only cost.
pub(crate) const CACHE_BLOCK_MIN_QUBITS: usize = 18;

/// True when a diagonal op with the given masks is independent of `bit`:
/// its phase factor is then identical on both halves of any amplitude pair
/// over that bit, so it commutes with any (controlled) single-qubit op
/// targeting the bit. (`set_mask == usize::MAX` is the global-scale
/// sentinel, handled separately where a hop over it is safe.)
fn phase_independent_of(set_mask: usize, clear_mask: usize, bit: usize) -> bool {
    set_mask != usize::MAX && (set_mask | clear_mask) & bit == 0
}

/// Map a physical-bit mask contained in the pair `{t0, t1}` to the 2-bit
/// pair-basis mask (bit `t0` → 1, bit `t1` → 2).
fn pair_s_mask(mask: usize, t0: usize, t1: usize) -> usize {
    ((mask >> t0) & 1) | (((mask >> t1) & 1) << 1)
}

/// A matrix the cheap kernels (flip / diag / phase) already handle in a
/// single multiply or swap per pair — exactly diagonal or exactly
/// anti-diagonal. Runs made solely of these are not worth a 4×4 block.
fn is_cheap(m: &[[Complex64; 2]; 2]) -> bool {
    let diagonal = m[0][1] == Complex64::ZERO && m[1][0] == Complex64::ZERO;
    let anti_diagonal = m[0][0] == Complex64::ZERO && m[1][1] == Complex64::ZERO;
    diagonal || anti_diagonal
}

fn is_identity2(m: &[[Complex64; 2]; 2]) -> bool {
    m[0][0] == Complex64::ONE
        && m[1][1] == Complex64::ONE
        && m[0][1] == Complex64::ZERO
        && m[1][0] == Complex64::ZERO
}

/// A circuit lowered to a flat, fused list of precomputed kernel ops.
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    num_qubits: usize,
    ops: Vec<KernelOp>,
    /// Consecutive op ranges with a `blockable` flag: a blockable segment
    /// is a run of ≥ 2 ops whose whole support sits below
    /// [`CACHE_BLOCK_QUBITS`], replayed block-by-block on large states.
    segments: Vec<(Range<usize>, bool)>,
    source_len: usize,
}

impl CompiledCircuit {
    /// Lower and fuse `circuit`. The result replays with
    /// [`CompiledCircuit::run_once`].
    pub fn compile(circuit: &Circuit) -> CompiledCircuit {
        let mut fuser = Fuser::new(circuit.num_qubits(), circuit.len(), false);
        for inst in circuit.instructions() {
            fuser.push_instruction(inst, None);
        }
        let ops = fuser.finalize();
        Self::from_ops(circuit.num_qubits(), ops, circuit.len())
    }

    /// Assemble a compiled circuit from an already-final op list, replanning
    /// the cache-blocking segments (they are a pure function of the ops).
    pub(crate) fn from_ops(num_qubits: usize, ops: Vec<KernelOp>, source_len: usize) -> CompiledCircuit {
        let segments = plan_segments(&ops);
        CompiledCircuit { num_qubits, ops, segments, source_len }
    }

    /// Qubit count of the source circuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The fused op list, in execution order.
    pub fn ops(&self) -> &[KernelOp] {
        &self.ops
    }

    /// Number of fused kernel ops (≤ the source instruction count for any
    /// circuit without `Barrier`s, and strictly less whenever fusion fired).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when every source instruction fused away (or the source was
    /// empty).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of instructions in the source circuit.
    pub fn source_len(&self) -> usize {
        self.source_len
    }

    /// Replay the compiled ops against `state` once, recording measurement
    /// outcomes — the compiled counterpart of
    /// [`crate::run_once_interpreted`].
    pub fn run_once(&self, state: &mut StateVector, rng: &mut impl Rng) -> ShotRecord {
        assert!(
            self.num_qubits <= state.num_qubits(),
            "compiled circuit needs {} qubits but the state has {}",
            self.num_qubits,
            state.num_qubits()
        );
        let mut record = ShotRecord::default();
        let total = state.amplitudes().len();
        let use_blocks = total >= (1usize << CACHE_BLOCK_MIN_QUBITS);
        for (range, blockable) in &self.segments {
            let ops = &self.ops[range.clone()];
            if *blockable && use_blocks {
                // Record the same iteration counts the full-state kernels
                // would, on the issuing thread (blocks run on the pool).
                for op in ops {
                    record_blocked_op_stats(op, total);
                }
                state.for_each_block(CACHE_BLOCK_QUBITS, |block| {
                    for op in ops {
                        apply_op_to_slice(block, op);
                    }
                });
            } else {
                for op in ops {
                    match op {
                        KernelOp::Dense { target, ctrl_mask, m } => {
                            state.apply_single(*target, *m, *ctrl_mask)
                        }
                        KernelOp::Dense2 { t0, t1, ctrl_mask, m } => {
                            state.apply_pair(*t0, *t1, m, *ctrl_mask)
                        }
                        KernelOp::Flip { target, ctrl_mask, m01, m10 } => {
                            state.apply_antidiag(*target, *m01, *m10, *ctrl_mask)
                        }
                        KernelOp::Diag { target, ctrl_mask, d0, d1 } => {
                            state.apply_diag(*target, *d0, *d1, *ctrl_mask)
                        }
                        KernelOp::Phase { set_mask, clear_mask, phase } => {
                            state.mul_where(*set_mask, *clear_mask, *phase)
                        }
                        KernelOp::Scale { factor } => state.scale_all(*factor),
                        KernelOp::Swap { a, b, ctrl_mask } => state.apply_swap(*a, *b, *ctrl_mask),
                        KernelOp::Measure { qubit, loc } => {
                            record.outcomes.push((*qubit, state.measure(*loc, rng)))
                        }
                        KernelOp::Reset { qubit: _, loc } => state.reset(*loc, rng),
                    }
                }
            }
        }
        record
    }
}

/// Whole-support footprint check: can this op run inside a
/// `2^CACHE_BLOCK_QUBITS`-amplitude block without reaching across it?
fn is_block_local(op: &KernelOp) -> bool {
    let footprint = match op {
        KernelOp::Dense { target, ctrl_mask, .. }
        | KernelOp::Flip { target, ctrl_mask, .. }
        | KernelOp::Diag { target, ctrl_mask, .. } => (1usize << target) | ctrl_mask,
        KernelOp::Dense2 { t0, t1, ctrl_mask, .. } => (1usize << t0) | (1usize << t1) | ctrl_mask,
        KernelOp::Phase { set_mask, clear_mask, .. } => set_mask | clear_mask,
        KernelOp::Scale { .. } => 0,
        KernelOp::Swap { a, b, ctrl_mask } => (1usize << a) | (1usize << b) | ctrl_mask,
        KernelOp::Measure { .. } | KernelOp::Reset { .. } => return false,
    };
    footprint < (1usize << CACHE_BLOCK_QUBITS)
}

/// Group the op list into maximal runs of block-local / non-local ops. A
/// run is marked blockable only when it is block-local and has ≥ 2 ops —
/// a single op already streams the state exactly once either way.
fn plan_segments(ops: &[KernelOp]) -> Vec<(Range<usize>, bool)> {
    let mut segments = Vec::new();
    let mut i = 0;
    while i < ops.len() {
        let local = is_block_local(&ops[i]);
        let mut j = i + 1;
        while j < ops.len() && is_block_local(&ops[j]) == local {
            j += 1;
        }
        segments.push((i..j, local && j - i >= 2));
        i = j;
    }
    segments
}

/// Record the iteration counts the full-state kernels would have recorded
/// for `op` on an `n`-amplitude state. Blocked replay bypasses those
/// kernels, so the compiled executor keeps the counters (and the guard's
/// exact `2^(n-2-c)` Dense2 assert) identical between both replay shapes.
fn record_blocked_op_stats(op: &KernelOp, n: usize) {
    match op {
        KernelOp::Dense { ctrl_mask, .. } => {
            record_iterations(KernelClass::Dense, n >> (1 + ctrl_mask.count_ones() as usize))
        }
        KernelOp::Dense2 { ctrl_mask, .. } => {
            record_iterations(KernelClass::Dense2, n >> (2 + ctrl_mask.count_ones() as usize))
        }
        KernelOp::Flip { ctrl_mask, .. } => {
            record_iterations(KernelClass::Flip, n >> (1 + ctrl_mask.count_ones() as usize))
        }
        KernelOp::Diag { ctrl_mask, .. } => {
            record_iterations(KernelClass::Diag, n >> (1 + ctrl_mask.count_ones() as usize))
        }
        KernelOp::Phase { set_mask, clear_mask, .. } => {
            record_iterations(KernelClass::Phase, n >> (set_mask | clear_mask).count_ones() as usize)
        }
        KernelOp::Scale { .. } => record_iterations(KernelClass::Scale, n),
        KernelOp::Swap { ctrl_mask, .. } => {
            record_iterations(KernelClass::Swap, n >> (2 + ctrl_mask.count_ones() as usize))
        }
        KernelOp::Measure { .. } | KernelOp::Reset { .. } => {
            unreachable!("non-unitary ops are never in a blockable segment")
        }
    }
}

/// Apply one unitary kernel op to a contiguous amplitude block. Every
/// support bit of `op` must lie below `log2(amps.len())` (guaranteed by
/// [`plan_segments`]), so the op cannot reach outside the slice. The
/// per-amplitude arithmetic is expression-identical to the corresponding
/// [`StateVector`] kernels, making blocked replay bit-identical.
fn apply_op_to_slice(amps: &mut [Complex64], op: &KernelOp) {
    let n = amps.len();
    let p = amps.as_mut_ptr();
    match op {
        KernelOp::Dense { target, ctrl_mask, m } => {
            let stride = 1usize << target;
            let inserts = BitInserts::new(*ctrl_mask, stride);
            let pairs = n >> inserts.width();
            if *ctrl_mask == 0 {
                // Contiguous-run sweep, as in `StateVector::apply_single`.
                let low_mask = stride - 1;
                let mut k = 0;
                while k < pairs {
                    let run = (stride - (k & low_mask)).min(pairs - k);
                    let i0 = ((k & !low_mask) << 1) | (k & low_mask);
                    for i in i0..i0 + run {
                        let j = i | stride;
                        // SAFETY: pair indices are in bounds and disjoint.
                        unsafe {
                            let (a, b) = (*p.add(i), *p.add(j));
                            *p.add(i) = m[0][0] * a + m[0][1] * b;
                            *p.add(j) = m[1][0] * a + m[1][1] * b;
                        }
                    }
                    k += run;
                }
            } else {
                for k in 0..pairs {
                    let i = inserts.expand(k);
                    let j = i | stride;
                    // SAFETY: pair indices are in bounds and disjoint.
                    unsafe {
                        let (a, b) = (*p.add(i), *p.add(j));
                        *p.add(i) = m[0][0] * a + m[0][1] * b;
                        *p.add(j) = m[1][0] * a + m[1][1] * b;
                    }
                }
            }
        }
        KernelOp::Dense2 { t0, t1, ctrl_mask, m } => {
            let (s0, s1) = (1usize << t0, 1usize << t1);
            let inserts = BitInserts::new(*ctrl_mask, s0 | s1);
            let quads = n >> inserts.width();
            for k in 0..quads {
                let i00 = inserts.expand(k);
                let (i01, i10, i11) = (i00 | s0, i00 | s1, i00 | s0 | s1);
                // SAFETY: quad indices are in bounds and disjoint across k.
                unsafe {
                    let a = [*p.add(i00), *p.add(i01), *p.add(i10), *p.add(i11)];
                    for (r, &i) in [i00, i01, i10, i11].iter().enumerate() {
                        *p.add(i) = m[r][0] * a[0] + m[r][1] * a[1] + m[r][2] * a[2] + m[r][3] * a[3];
                    }
                }
            }
        }
        KernelOp::Flip { target, ctrl_mask, m01, m10 } => {
            let stride = 1usize << target;
            let inserts = BitInserts::new(*ctrl_mask, stride);
            let pairs = n >> inserts.width();
            let pure_flip = *m01 == Complex64::ONE && *m10 == Complex64::ONE;
            for k in 0..pairs {
                let i = inserts.expand(k);
                let j = i | stride;
                // SAFETY: pair indices are in bounds and disjoint.
                unsafe {
                    if pure_flip {
                        std::ptr::swap(p.add(i), p.add(j));
                    } else {
                        let (a, b) = (*p.add(i), *p.add(j));
                        *p.add(i) = *m01 * b;
                        *p.add(j) = *m10 * a;
                    }
                }
            }
        }
        KernelOp::Diag { target, ctrl_mask, d0, d1 } => {
            let stride = 1usize << target;
            let inserts = BitInserts::new(*ctrl_mask, stride);
            let pairs = n >> inserts.width();
            for k in 0..pairs {
                let i = inserts.expand(k);
                // SAFETY: pair indices are in bounds and disjoint.
                unsafe {
                    *p.add(i) *= *d0;
                    *p.add(i | stride) *= *d1;
                }
            }
        }
        KernelOp::Phase { set_mask, clear_mask, phase } => {
            let inserts = BitInserts::new(*set_mask, *clear_mask);
            let matching = n >> inserts.width();
            for k in 0..matching {
                // SAFETY: expanded indices are in bounds and distinct.
                unsafe { *p.add(inserts.expand(k)) *= *phase };
            }
        }
        KernelOp::Scale { factor } => {
            for a in amps.iter_mut() {
                *a *= *factor;
            }
        }
        KernelOp::Swap { a, b, ctrl_mask } => {
            let (bit_a, bit_b) = (1usize << a, 1usize << b);
            let inserts = BitInserts::new(ctrl_mask | bit_a, bit_b);
            let count = n >> inserts.width();
            for k in 0..count {
                let i = inserts.expand(k);
                let j = i ^ bit_a ^ bit_b;
                // SAFETY: each pair is enumerated once, from its a=1 side.
                unsafe { std::ptr::swap(p.add(i), p.add(j)) };
            }
        }
        KernelOp::Measure { .. } | KernelOp::Reset { .. } => {
            unreachable!("non-unitary ops are never in a blockable segment")
        }
    }
}

/// Stage A of compilation: per-instruction lowering with single-qubit and
/// phase-sweep fusion, plus the swap-relabeling map.
struct Fuser {
    out: Vec<LowOp>,
    /// Accumulated global phase (from Rz lowering); global phases commute
    /// with every unitary, so they are hoisted and flushed as one
    /// [`KernelOp::Scale`] at measure/reset/barrier boundaries.
    pending_global: f64,
    /// Provenance of `pending_global` (template mode only).
    pending_global_src: Srcs,
    /// Logical→physical qubit map. An uncontrolled `Swap` updates this map
    /// instead of emitting a kernel; every later operand is relabeled
    /// through it and the residual permutation is flushed as swaps at the
    /// end of the circuit.
    loc: Vec<usize>,
    /// `Some` in template mode: every lowered unit registers an [`Atom`]
    /// and tags the ops it contributes to with the atom's id.
    atoms: Option<Vec<Atom>>,
}

impl Fuser {
    fn new(num_qubits: usize, capacity: usize, track_atoms: bool) -> Fuser {
        Fuser {
            out: Vec::with_capacity(capacity),
            pending_global: 0.0,
            pending_global_src: Srcs::new(),
            loc: (0..num_qubits).collect(),
            atoms: if track_atoms { Some(Vec::new()) } else { None },
        }
    }

    /// Register an atom (template mode) and return the one-element
    /// provenance list for the op it lowers to. Cold mode returns an empty
    /// list and drops the atom — `has_param` then stays false everywhere
    /// and fusion behaves exactly as before provenance tracking existed.
    fn add_atom(&mut self, atom: Atom, param: bool) -> Srcs {
        match &mut self.atoms {
            Some(atoms) => {
                let id = atoms.len() as u32 | if param { PARAM_ATOM } else { 0 };
                atoms.push(atom);
                vec![id]
            }
            None => Srcs::new(),
        }
    }

    fn map_mask(&self, mask: usize) -> usize {
        let mut out = 0usize;
        let mut m = mask;
        while m != 0 {
            let q = m.trailing_zeros() as usize;
            out |= 1 << self.loc[q];
            m &= m - 1;
        }
        out
    }

    /// Register a phase atom and push the angle-valued phase op carrying
    /// its provenance.
    fn lower_phase(&mut self, set_mask: usize, clear_mask: usize, theta: f64, spec: ThetaSpec) {
        let src = self.add_atom(
            Atom::Phase { set_mask, clear_mask, theta: spec },
            matches!(spec, ThetaSpec::Slot { .. }),
        );
        self.push_phase(set_mask, clear_mask, theta, src);
    }

    /// Sugar for the fixed-angle diagonal gates (Z/S/T/CZ/…).
    fn lower_const_phase(&mut self, set_mask: usize, theta: f64) {
        self.lower_phase(set_mask, 0, theta, ThetaSpec::Const(theta));
    }

    /// Lower one instruction. `slot0` is `None` for cold compilation (angles
    /// come from the instruction) and `Some(first parameter slot)` for
    /// template compilation (angles come from per-slot sentinels and every
    /// lowered unit registers an [`Atom`]).
    fn push_instruction(&mut self, inst: &Instruction, slot0: Option<u32>) {
        use GateKind::*;
        let q = &inst.qubits;
        // Parameter values driving matrix/angle computation this pass.
        let mut pv = [0.0f64; 3];
        for (k, v) in pv.iter_mut().enumerate().take(inst.params.len()) {
            *v = match slot0 {
                Some(s0) => sentinel_value(s0 as usize + k),
                None => inst.params[k],
            };
        }
        match inst.gate {
            // Diagonal gates lower to angle-valued phase ops, exactly
            // mirroring the interpreted fast path in `apply_instruction`.
            Z => self.lower_const_phase(1 << self.loc[q[0]], std::f64::consts::PI),
            S => self.lower_const_phase(1 << self.loc[q[0]], std::f64::consts::FRAC_PI_2),
            Sdg => self.lower_const_phase(1 << self.loc[q[0]], -std::f64::consts::FRAC_PI_2),
            T => self.lower_const_phase(1 << self.loc[q[0]], std::f64::consts::FRAC_PI_4),
            Tdg => self.lower_const_phase(1 << self.loc[q[0]], -std::f64::consts::FRAC_PI_4),
            Phase => {
                let set = 1 << self.loc[q[0]];
                self.lower_phase(set, 0, pv[0], theta_spec(slot0, 1.0, pv[0]));
            }
            Rz => {
                let gsrc = self.add_atom(
                    Atom::Phase {
                        set_mask: usize::MAX,
                        clear_mask: 0,
                        theta: theta_spec(slot0, -0.5, -pv[0] / 2.0),
                    },
                    slot0.is_some(),
                );
                self.pending_global += -pv[0] / 2.0;
                self.pending_global_src.extend(gsrc);
                let set = 1 << self.loc[q[0]];
                self.lower_phase(set, 0, pv[0], theta_spec(slot0, 1.0, pv[0]));
            }
            CZ => self.lower_const_phase((1 << self.loc[q[0]]) | (1 << self.loc[q[1]]), std::f64::consts::PI),
            CPhase => {
                let set = (1 << self.loc[q[0]]) | (1 << self.loc[q[1]]);
                self.lower_phase(set, 0, pv[0], theta_spec(slot0, 1.0, pv[0]));
            }
            CCPhase => {
                let set = (1 << self.loc[q[0]]) | (1 << self.loc[q[1]]) | (1 << self.loc[q[2]]);
                self.lower_phase(set, 0, pv[0], theta_spec(slot0, 1.0, pv[0]));
            }
            CRz => {
                let half = pv[0] / 2.0;
                let (cbit, tbit) = (1 << self.loc[q[0]], 1 << self.loc[q[1]]);
                self.lower_phase(cbit | tbit, 0, half, theta_spec(slot0, 0.5, half));
                self.lower_phase(cbit, tbit, -half, theta_spec(slot0, -0.5, -half));
            }
            H | X | Y | Rx | Ry | U3 => {
                let m = single_qubit_matrix(inst.gate, &pv[..inst.params.len()]).expect("single-qubit gate");
                let pslot = if inst.params.is_empty() { None } else { slot0 };
                let target = self.loc[q[0]];
                let src = self
                    .add_atom(Atom::Single { gate: inst.gate, target, ctrl_mask: 0, pslot }, pslot.is_some());
                self.push_dense(target, 0, m, src);
            }
            // Controlled single-qubit gates: the operand split (controls
            // first) comes from the instruction's own introspection.
            CX | CY | CCX => {
                let base = if inst.gate == CY { Y } else { X };
                let m = single_qubit_matrix(base, &[]).expect("single-qubit gate");
                let target = self.loc[inst.target_qubits()[0]];
                let ctrl_mask = self.map_mask(inst.control_mask());
                let src = self.add_atom(Atom::Single { gate: base, target, ctrl_mask, pslot: None }, false);
                self.push_dense(target, ctrl_mask, m, src);
            }
            Swap => {
                // Relabel instead of executing: zero kernel ops now, at
                // most one flushed swap at the end of the circuit.
                let t = inst.target_qubits();
                self.loc.swap(t[0], t[1]);
            }
            CSwap => {
                let t = inst.target_qubits();
                let (pa, pb) = (self.loc[t[0]], self.loc[t[1]]);
                let ctrl_mask = self.map_mask(inst.control_mask());
                let src = self.add_atom(Atom::Swap, false);
                self.push_boundary(LowOp::Swap { a: pa.min(pb), b: pa.max(pb), ctrl_mask, src });
            }
            Measure => self.push_hard_boundary(LowOp::Measure { qubit: q[0], loc: self.loc[q[0]] }),
            Reset => self.push_hard_boundary(LowOp::Reset { qubit: q[0], loc: self.loc[q[0]] }),
            Barrier => self.push_hard_boundary(LowOp::Barrier),
        }
    }

    /// Push an op that fusion never merges into but that unitary ops may
    /// still commute past in later scans (currently: swaps stop stage-A
    /// scans, so this is a plain push).
    fn push_boundary(&mut self, op: LowOp) {
        self.out.push(op);
    }

    /// Push a non-unitary op (or barrier): flush the accumulated global
    /// phase first so replay applies it before any RNG draw.
    fn push_hard_boundary(&mut self, op: LowOp) {
        self.flush_global();
        self.out.push(op);
    }

    fn flush_global(&mut self) {
        if self.pending_global != 0.0 || !self.pending_global_src.is_empty() {
            // Represent as an unconditional phase over zero fixed bits —
            // finalization emits it as a `Scale`.
            let theta = std::mem::take(&mut self.pending_global);
            let src = std::mem::take(&mut self.pending_global_src);
            self.out.push(LowOp::Phase { set_mask: usize::MAX, clear_mask: 0, theta, src });
        }
    }

    /// Emit the residual relabeling permutation as at most `n-1`
    /// uncontrolled swaps at the end of the op list, restoring every
    /// logical qubit to its home bit so the final state matches the
    /// interpreted executor's exactly.
    fn flush_permutation(&mut self) {
        let n = self.loc.len();
        let mut loc = self.loc.clone();
        // Physical→logical inverse of `loc`.
        let mut at = vec![0usize; n];
        for (q, &p) in loc.iter().enumerate() {
            at[p] = q;
        }
        for q in 0..n {
            let p = loc[q];
            if p != q {
                let r = at[q];
                let src = self.add_atom(Atom::Swap, false);
                self.out.push(LowOp::Swap { a: q.min(p), b: q.max(p), ctrl_mask: 0, src });
                loc[q] = q;
                at[q] = q;
                loc[r] = p;
                at[p] = r;
            }
        }
        self.loc = loc;
    }

    /// Append a dense single-qubit op, merging backward where valid.
    fn push_dense(&mut self, target: usize, ctrl_mask: usize, mut m: [[Complex64; 2]; 2], mut src: Srcs) {
        let bit = 1usize << target;
        let mut idx = self.out.len();
        let mut scanned = 0;
        while idx > 0 && scanned < FUSION_WINDOW {
            scanned += 1;
            match self.out[idx - 1] {
                LowOp::Dense { target: t2, ctrl_mask: c2, m: m2, .. } if t2 == target && c2 == ctrl_mask => {
                    // Same target, same controls: collapse to one matrix
                    // (this op applied after the existing one), then keep
                    // scanning with the merged matrix.
                    m = mat2_mul(m, m2);
                    prepend_src(&mut src, take_src(self.out.remove(idx - 1)));
                    idx -= 1;
                    continue;
                }
                LowOp::Dense { target: t2, ctrl_mask: c2, .. }
                    if t2 != target && c2 & bit == 0 && ctrl_mask & (1 << t2) == 0 =>
                {
                    // Controlled single-qubit ops commute when neither
                    // target appears in the other op's support (shared
                    // control bits are diagonal for both and don't matter).
                    idx -= 1;
                    continue;
                }
                LowOp::Phase { set_mask, clear_mask, theta, .. } => {
                    // A diagonal on exactly this target under the same
                    // controls folds into the matrix as diag(·) applied
                    // first (right multiplication).
                    if set_mask == (ctrl_mask | bit) && clear_mask == 0 {
                        let p = Complex64::from_polar_unit(theta);
                        m = mat2_mul(m, [[Complex64::ONE, Complex64::ZERO], [Complex64::ZERO, p]]);
                        prepend_src(&mut src, take_src(self.out.remove(idx - 1)));
                        idx -= 1;
                        continue;
                    }
                    if set_mask == ctrl_mask && clear_mask == bit {
                        let p = Complex64::from_polar_unit(theta);
                        m = mat2_mul(m, [[p, Complex64::ZERO], [Complex64::ZERO, Complex64::ONE]]);
                        prepend_src(&mut src, take_src(self.out.remove(idx - 1)));
                        idx -= 1;
                        continue;
                    }
                    // Otherwise hop over it only if it cannot see the
                    // target bit.
                    if phase_independent_of(set_mask, clear_mask, bit) {
                        idx -= 1;
                        continue;
                    }
                    break;
                }
                _ => break,
            }
        }
        if has_param(&src) || !is_identity2(&m) {
            self.out.insert(idx, LowOp::Dense { target, ctrl_mask, m, src });
        }
    }

    /// Append a diagonal phase op, merging backward where valid. Diagonal
    /// ops all commute, so the scan may hop over any of them.
    fn push_phase(&mut self, set_mask: usize, clear_mask: usize, theta: f64, src: Srcs) {
        let mut idx = self.out.len();
        let mut scanned = 0;
        while idx > 0 && scanned < FUSION_WINDOW {
            scanned += 1;
            match &mut self.out[idx - 1] {
                LowOp::Phase { set_mask: s2, clear_mask: c2, theta: t2, src: s2src } => {
                    if *s2 == set_mask && *c2 == clear_mask {
                        *t2 += theta;
                        s2src.extend(src);
                        return;
                    }
                    // Distinct diagonal ops commute.
                    idx -= 1;
                }
                LowOp::Dense { target, ctrl_mask, m, src: dsrc } => {
                    let bit = 1usize << *target;
                    // Fold onto the dense op as diag applied *after* it
                    // (left multiplication).
                    if set_mask == (*ctrl_mask | bit) && clear_mask == 0 {
                        let p = Complex64::from_polar_unit(theta);
                        *m = mat2_mul([[Complex64::ONE, Complex64::ZERO], [Complex64::ZERO, p]], *m);
                        dsrc.extend(src);
                        return;
                    }
                    if set_mask == *ctrl_mask && clear_mask == bit {
                        let p = Complex64::from_polar_unit(theta);
                        *m = mat2_mul([[p, Complex64::ZERO], [Complex64::ZERO, Complex64::ONE]], *m);
                        dsrc.extend(src);
                        return;
                    }
                    if phase_independent_of(set_mask, clear_mask, bit) {
                        idx -= 1;
                        continue;
                    }
                    break;
                }
                _ => break,
            }
        }
        self.out.insert(idx, LowOp::Phase { set_mask, clear_mask, theta, src });
    }

    /// Flush pending state and run the pair-fusion pass, yielding the final
    /// low-op list plus the atom table — the lowering shared by cold
    /// compilation and template building.
    fn lower(mut self) -> (Vec<LowOp>, Vec<Atom>) {
        self.flush_global();
        self.flush_permutation();
        let atoms = self.atoms.take().unwrap_or_default();
        let lowered = pair_fuse(std::mem::take(&mut self.out));
        (lowered, atoms)
    }

    /// Lower, then classify the result into the cheapest kernels, dropping
    /// identities.
    fn finalize(self) -> Vec<KernelOp> {
        let (fused, _) = self.lower();
        let mut ops = Vec::with_capacity(fused.len());
        for low in fused {
            match low {
                LowOp::Dense { target, ctrl_mask, m, .. } => {
                    if let Some(op) = classify_dense(target, ctrl_mask, m) {
                        ops.push(op);
                    }
                }
                LowOp::Dense2 { t0, t1, ctrl_mask, m, .. } => {
                    if let Some(op) = classify_dense2(t0, t1, ctrl_mask, m) {
                        ops.push(op);
                    }
                }
                LowOp::Phase { set_mask, clear_mask, theta, .. } => {
                    if theta != 0.0 {
                        let phase = Complex64::from_polar_unit(theta);
                        if set_mask == usize::MAX {
                            ops.push(KernelOp::Scale { factor: phase });
                        } else {
                            ops.push(KernelOp::Phase { set_mask, clear_mask, phase });
                        }
                    }
                }
                LowOp::Swap { a, b, ctrl_mask, .. } => ops.push(KernelOp::Swap { a, b, ctrl_mask }),
                LowOp::Measure { qubit, loc } => ops.push(KernelOp::Measure { qubit, loc }),
                LowOp::Reset { qubit, loc } => ops.push(KernelOp::Reset { qubit, loc }),
                LowOp::Barrier => {}
            }
        }
        ops
    }
}

/// Stage B of compilation: re-push the stage-A output through the
/// pair-fusion rules, collapsing runs sharing a qubit pair into `Dense2`
/// blocks and absorbing in-pair gates, diagonals and swaps into them.
struct PairFuser {
    out: Vec<LowOp>,
}

fn pair_fuse(ops: Vec<LowOp>) -> Vec<LowOp> {
    let mut fuser = PairFuser { out: Vec::with_capacity(ops.len()) };
    for op in ops {
        match op {
            LowOp::Dense { target, ctrl_mask, m, src } => fuser.push_dense(target, ctrl_mask, m, src),
            LowOp::Phase { set_mask, clear_mask, theta, src } => {
                fuser.push_phase(set_mask, clear_mask, theta, src)
            }
            LowOp::Swap { a, b, ctrl_mask, src } => fuser.push_swap(a, b, ctrl_mask, src),
            // Measure / Reset / Barrier (stage A emits no Dense2) pass
            // through; the scans above never hop them.
            other => fuser.out.push(other),
        }
    }
    fuser.out
}

impl PairFuser {
    fn push_dense(&mut self, target: usize, ctrl_mask: usize, mut m: [[Complex64; 2]; 2], mut src: Srcs) {
        let bit = 1usize << target;
        let mut idx = self.out.len();
        let mut scanned = 0;
        while idx > 0 && scanned < FUSION_WINDOW {
            scanned += 1;
            match &self.out[idx - 1] {
                LowOp::Dense2 { t0, t1, ctrl_mask: c2, .. } => {
                    let (t0, t1, c2) = (*t0, *t1, *c2);
                    let pb = (1usize << t0) | (1usize << t1);
                    if bit & pb != 0 && ctrl_mask & !pb == c2 {
                        // In-pair single (possibly controlled on the other
                        // pair qubit) with matching outer controls: absorb
                        // as applied-after (left multiplication).
                        let e = embed_pair_single(
                            usize::from(target == t1),
                            pair_s_mask(ctrl_mask & pb, t0, t1),
                            m,
                        );
                        if let LowOp::Dense2 { m: m4, src: s4, .. } = &mut self.out[idx - 1] {
                            **m4 = mat4_mul(&e, m4);
                            s4.extend(src);
                        }
                        return;
                    }
                    if bit & (pb | c2) == 0 && ctrl_mask & pb == 0 {
                        idx -= 1;
                        continue;
                    }
                    break;
                }
                LowOp::Dense { target: t2, ctrl_mask: c2, m: m2, .. } => {
                    let (t2, c2, m2) = (*t2, *c2, *m2);
                    if t2 == target && c2 == ctrl_mask {
                        m = mat2_mul(m, m2);
                        prepend_src(&mut src, take_src(self.out.remove(idx - 1)));
                        idx -= 1;
                        continue;
                    }
                    let bit2 = 1usize << t2;
                    let pb = bit | bit2;
                    if t2 != target && c2 & !pb == ctrl_mask & !pb && !(is_cheap(&m) && is_cheap(&m2)) {
                        // Pair up: equal outer controls, and at least one
                        // matrix the cheap kernels can't already beat.
                        let (t0, t1) = (target.min(t2), target.max(t2));
                        let e_new = embed_pair_single(
                            usize::from(target == t1),
                            pair_s_mask(ctrl_mask & pb, t0, t1),
                            m,
                        );
                        let e_old =
                            embed_pair_single(usize::from(t2 == t1), pair_s_mask(c2 & pb, t0, t1), m2);
                        let m4 = mat4_mul(&e_new, &e_old);
                        let mut psrc = take_src(self.out.remove(idx - 1));
                        psrc.extend(src);
                        self.insert_dense2(idx - 1, t0, t1, ctrl_mask & !pb, m4, psrc);
                        return;
                    }
                    if t2 != target && c2 & bit == 0 && ctrl_mask & bit2 == 0 {
                        idx -= 1;
                        continue;
                    }
                    break;
                }
                LowOp::Phase { set_mask, clear_mask, theta, .. } => {
                    let (s, c, th) = (*set_mask, *clear_mask, *theta);
                    if s == (ctrl_mask | bit) && c == 0 {
                        let p = Complex64::from_polar_unit(th);
                        m = mat2_mul(m, [[Complex64::ONE, Complex64::ZERO], [Complex64::ZERO, p]]);
                        prepend_src(&mut src, take_src(self.out.remove(idx - 1)));
                        idx -= 1;
                        continue;
                    }
                    if s == ctrl_mask && c == bit {
                        let p = Complex64::from_polar_unit(th);
                        m = mat2_mul(m, [[p, Complex64::ZERO], [Complex64::ZERO, Complex64::ONE]]);
                        prepend_src(&mut src, take_src(self.out.remove(idx - 1)));
                        idx -= 1;
                        continue;
                    }
                    if phase_independent_of(s, c, bit) {
                        idx -= 1;
                        continue;
                    }
                    break;
                }
                _ => break,
            }
        }
        if has_param(&src) || !is_identity2(&m) {
            self.out.insert(idx, LowOp::Dense { target, ctrl_mask, m, src });
        }
    }

    /// Insert a freshly formed pair block at `idx`, continuing the backward
    /// scan so the block keeps absorbing earlier in-pair ops.
    fn insert_dense2(
        &mut self,
        mut idx: usize,
        t0: usize,
        t1: usize,
        ctrl_mask: usize,
        mut m4: [[Complex64; 4]; 4],
        mut src: Srcs,
    ) {
        let pb = (1usize << t0) | (1usize << t1);
        let mut scanned = 0;
        while idx > 0 && scanned < FUSION_WINDOW {
            scanned += 1;
            match &self.out[idx - 1] {
                LowOp::Dense2 { t0: u0, t1: u1, ctrl_mask: c2, m: m2, .. } => {
                    if *u0 == t0 && *u1 == t1 && *c2 == ctrl_mask {
                        m4 = mat4_mul(&m4, m2);
                        prepend_src(&mut src, take_src(self.out.remove(idx - 1)));
                        idx -= 1;
                        continue;
                    }
                    let pb2 = (1usize << *u0) | (1usize << *u1);
                    if pb & (pb2 | *c2) == 0 && pb2 & ctrl_mask == 0 {
                        idx -= 1;
                        continue;
                    }
                    break;
                }
                LowOp::Dense { target, ctrl_mask: c2, m: m2, .. } => {
                    let (t2, c2, m2) = (*target, *c2, *m2);
                    let bit2 = 1usize << t2;
                    if bit2 & pb != 0 && c2 & !pb == ctrl_mask {
                        // Earlier in-pair single: absorb as applied-before
                        // (right multiplication).
                        let e = embed_pair_single(usize::from(t2 == t1), pair_s_mask(c2 & pb, t0, t1), m2);
                        m4 = mat4_mul(&m4, &e);
                        prepend_src(&mut src, take_src(self.out.remove(idx - 1)));
                        idx -= 1;
                        continue;
                    }
                    if bit2 & (pb | ctrl_mask) == 0 && c2 & pb == 0 {
                        idx -= 1;
                        continue;
                    }
                    break;
                }
                LowOp::Phase { set_mask, clear_mask, theta, .. } => {
                    let (s, c, th) = (*set_mask, *clear_mask, *theta);
                    if s != usize::MAX && s & !pb == ctrl_mask && c & !pb == 0 {
                        // Diagonal whose outer condition is exactly the
                        // block's controls: acts only inside the block's
                        // controlled subspace, so it folds in.
                        let d =
                            pair_phase_matrix(pair_s_mask(s & pb, t0, t1), pair_s_mask(c & pb, t0, t1), th);
                        m4 = mat4_mul(&m4, &d);
                        prepend_src(&mut src, take_src(self.out.remove(idx - 1)));
                        idx -= 1;
                        continue;
                    }
                    if s == usize::MAX || (s | c) & pb == 0 {
                        idx -= 1;
                        continue;
                    }
                    break;
                }
                LowOp::Swap { a, b, ctrl_mask: sc, .. } => {
                    if *a == t0 && *b == t1 && *sc == ctrl_mask {
                        m4 = mat4_mul(&m4, &swap4());
                        prepend_src(&mut src, take_src(self.out.remove(idx - 1)));
                        idx -= 1;
                        continue;
                    }
                    break;
                }
                _ => break,
            }
        }
        if has_param(&src) || m4 != identity4() {
            self.out.insert(idx, LowOp::Dense2 { t0, t1, ctrl_mask, m: Box::new(m4), src });
        }
    }

    fn push_phase(&mut self, set_mask: usize, clear_mask: usize, theta: f64, src: Srcs) {
        let mut idx = self.out.len();
        let mut scanned = 0;
        while idx > 0 && scanned < FUSION_WINDOW {
            scanned += 1;
            match &mut self.out[idx - 1] {
                LowOp::Phase { set_mask: s2, clear_mask: c2, theta: t2, src: s2src } => {
                    if *s2 == set_mask && *c2 == clear_mask {
                        *t2 += theta;
                        s2src.extend(src);
                        return;
                    }
                    idx -= 1;
                }
                LowOp::Dense { target, ctrl_mask, m, src: dsrc } => {
                    let bit = 1usize << *target;
                    if set_mask == (*ctrl_mask | bit) && clear_mask == 0 {
                        let p = Complex64::from_polar_unit(theta);
                        *m = mat2_mul([[Complex64::ONE, Complex64::ZERO], [Complex64::ZERO, p]], *m);
                        dsrc.extend(src);
                        return;
                    }
                    if set_mask == *ctrl_mask && clear_mask == bit {
                        let p = Complex64::from_polar_unit(theta);
                        *m = mat2_mul([[p, Complex64::ZERO], [Complex64::ZERO, Complex64::ONE]], *m);
                        dsrc.extend(src);
                        return;
                    }
                    if phase_independent_of(set_mask, clear_mask, bit) {
                        idx -= 1;
                        continue;
                    }
                    break;
                }
                LowOp::Dense2 { t0, t1, ctrl_mask, m, src: dsrc } => {
                    let (t0, t1, c2) = (*t0, *t1, *ctrl_mask);
                    let pb = (1usize << t0) | (1usize << t1);
                    if set_mask != usize::MAX && set_mask & !pb == c2 && clear_mask & !pb == 0 {
                        let d = pair_phase_matrix(
                            pair_s_mask(set_mask & pb, t0, t1),
                            pair_s_mask(clear_mask & pb, t0, t1),
                            theta,
                        );
                        **m = mat4_mul(&d, m);
                        dsrc.extend(src);
                        return;
                    }
                    if set_mask == usize::MAX || (set_mask | clear_mask) & pb == 0 {
                        idx -= 1;
                        continue;
                    }
                    break;
                }
                LowOp::Swap { a, b, .. } => {
                    // A phase not touching the swapped bits is invariant
                    // under the (controlled) permutation.
                    let sb = (1usize << *a) | (1usize << *b);
                    if set_mask == usize::MAX || (set_mask | clear_mask) & sb == 0 {
                        idx -= 1;
                        continue;
                    }
                    break;
                }
                _ => break,
            }
        }
        self.out.insert(idx, LowOp::Phase { set_mask, clear_mask, theta, src });
    }

    fn push_swap(&mut self, a: usize, b: usize, ctrl_mask: usize, src: Srcs) {
        let sb = (1usize << a) | (1usize << b);
        let mut idx = self.out.len();
        let mut scanned = 0;
        while idx > 0 && scanned < FUSION_WINDOW {
            scanned += 1;
            match &mut self.out[idx - 1] {
                LowOp::Dense2 { t0, t1, ctrl_mask: c2, m, src: dsrc }
                    if *t0 == a && *t1 == b && *c2 == ctrl_mask =>
                {
                    **m = mat4_mul(&swap4(), m);
                    dsrc.extend(src);
                    return;
                }
                LowOp::Swap { a: a2, b: b2, ctrl_mask: c2, .. }
                    if *a2 == a && *b2 == b && *c2 == ctrl_mask =>
                {
                    // Swap · Swap = identity (both sides are constant swap
                    // atoms, so dropping their provenance is always sound).
                    self.out.remove(idx - 1);
                    return;
                }
                LowOp::Swap { a: a2, b: b2, ctrl_mask: c2, .. } => {
                    let sup2 = (1usize << *a2) | (1usize << *b2) | *c2;
                    if (sb | ctrl_mask) & sup2 == 0 {
                        idx -= 1;
                        continue;
                    }
                    break;
                }
                LowOp::Dense { target, ctrl_mask: c2, .. } => {
                    if (1usize << *target) & (sb | ctrl_mask) == 0 && *c2 & sb == 0 {
                        idx -= 1;
                        continue;
                    }
                    break;
                }
                LowOp::Dense2 { t0, t1, ctrl_mask: c2, .. } => {
                    let pb2 = (1usize << *t0) | (1usize << *t1);
                    if pb2 & (sb | ctrl_mask) == 0 && *c2 & sb == 0 {
                        idx -= 1;
                        continue;
                    }
                    break;
                }
                LowOp::Phase { set_mask, clear_mask, .. } => {
                    if *set_mask == usize::MAX || (*set_mask | *clear_mask) & sb == 0 {
                        idx -= 1;
                        continue;
                    }
                    break;
                }
                _ => break,
            }
        }
        self.out.insert(idx, LowOp::Swap { a, b, ctrl_mask, src });
    }
}

/// Pick the cheapest kernel for a fused 2×2 matrix; `None` for an exact
/// identity (which only arises from symbolic cancellations like X·X — the
/// float products of e.g. H·H are *near*-identity and stay dense).
fn classify_dense(target: usize, ctrl_mask: usize, m: [[Complex64; 2]; 2]) -> Option<KernelOp> {
    let bit = 1usize << target;
    let diagonal = m[0][1] == Complex64::ZERO && m[1][0] == Complex64::ZERO;
    let anti_diagonal = m[0][0] == Complex64::ZERO && m[1][1] == Complex64::ZERO;
    if diagonal {
        if m[0][0] == Complex64::ONE && m[1][1] == Complex64::ONE {
            return None;
        }
        if m[0][0] == Complex64::ONE {
            return Some(KernelOp::Phase { set_mask: ctrl_mask | bit, clear_mask: 0, phase: m[1][1] });
        }
        if m[1][1] == Complex64::ONE {
            return Some(KernelOp::Phase { set_mask: ctrl_mask, clear_mask: bit, phase: m[0][0] });
        }
        return Some(KernelOp::Diag { target, ctrl_mask, d0: m[0][0], d1: m[1][1] });
    }
    if anti_diagonal {
        return Some(KernelOp::Flip { target, ctrl_mask, m01: m[0][1], m10: m[1][0] });
    }
    Some(KernelOp::Dense { target, ctrl_mask, m })
}

/// Pick the cheapest kernel for a fused 4×4 pair block: exact identities
/// drop, an exact swap permutation runs the dedicated swap kernel,
/// everything else replays through [`StateVector::apply_pair`].
fn classify_dense2(t0: usize, t1: usize, ctrl_mask: usize, m: Box<[[Complex64; 4]; 4]>) -> Option<KernelOp> {
    if *m == identity4() {
        return None;
    }
    if *m == swap4() {
        return Some(KernelOp::Swap { a: t0, b: t1, ctrl_mask });
    }
    Some(KernelOp::Dense2 { t0, t1, ctrl_mask, m })
}

/// One factor of a parameterized single-qubit group's matrix product:
/// maximal runs of constant atoms are pre-multiplied once at template
/// build, so a rebind only re-derives the parameter-dependent atoms.
#[derive(Debug, Clone)]
enum Fac2 {
    Const([[Complex64; 2]; 2]),
    Atom(u32),
}

/// One factor of a parameterized pair group's matrix product (constant
/// runs pre-multiplied into 4×4 blocks at template build).
#[derive(Debug, Clone)]
enum Fac4 {
    Const(Box<[[Complex64; 4]; 4]>),
    Atom(u32),
}

/// One op of a [`CompiledTemplate`]: constant groups are classified once
/// at template build, parameter-dependent groups stay symbolic.
#[derive(Debug, Clone)]
enum TOp {
    /// A fully-constant group — reused verbatim by every rebind.
    Fixed(KernelOp),
    /// Parameter-dependent single-qubit group: ordered factor product,
    /// classified per binding.
    Dense { target: usize, ctrl_mask: usize, factors: Vec<Fac2> },
    /// Parameter-dependent pair group.
    Dense2 { t0: usize, t1: usize, ctrl_mask: usize, factors: Vec<Fac4> },
    /// Parameter-dependent phase group: the constant part of the angle sum
    /// is folded at build, slot contributions are summed per binding —
    /// exactly as the fuser's angle-addition merges would for the bound
    /// circuit.
    Phase { set_mask: usize, clear_mask: usize, const_theta: f64, slots: Vec<(u32, f64)> },
}

/// A structure-only compilation: every fusion decision (grouping, op
/// order, classification of constant groups) made once, with
/// parameter-dependent groups kept symbolic. [`CompiledTemplate::rebind`]
/// turns it into a [`CompiledCircuit`] for a concrete angle vector without
/// re-running lowering — the basis of the structural compile cache.
///
/// Rebound plans match a cold [`CompiledCircuit::compile`] of the bound
/// circuit up to float association order (a group product is accumulated
/// in one order here and incrementally there), which stays within the
/// crate's ~1e-12 fused-vs-interpreted amplitude contract.
#[derive(Debug, Clone)]
pub struct CompiledTemplate {
    num_qubits: usize,
    source_len: usize,
    num_slots: usize,
    atoms: Vec<Atom>,
    tops: Vec<TOp>,
}

impl CompiledTemplate {
    /// Lower and fuse the *structure* of `circuit`, ignoring its bound
    /// angles. Two circuits that agree structurally (same gates, operands
    /// and parameter arity — see `qcor_circuit::wire::structurally_equal`)
    /// produce interchangeable templates.
    pub fn compile(circuit: &Circuit) -> CompiledTemplate {
        let mut fuser = Fuser::new(circuit.num_qubits(), circuit.len(), true);
        let mut slot0 = 0u32;
        for inst in circuit.instructions() {
            fuser.push_instruction(inst, Some(slot0));
            slot0 += inst.params.len() as u32;
        }
        let num_slots = slot0 as usize;
        let (lowered, atoms) = fuser.lower();

        // Collapse maximal runs of constant atoms into precomputed
        // matrices, so a rebind multiplies one matrix per constant run
        // instead of one per constant atom (constant atoms never read the
        // binding — their matrices are fixed at build).
        let fac2 = |src: &Srcs, bit: usize| -> Vec<Fac2> {
            let mut out = Vec::new();
            let mut acc: Option<[[Complex64; 2]; 2]> = None;
            for &id in src {
                if id & PARAM_ATOM != 0 {
                    if let Some(m) = acc.take() {
                        out.push(Fac2::Const(m));
                    }
                    out.push(Fac2::Atom(id));
                } else {
                    let m = atoms[id as usize].mat2(bit, &[]);
                    acc = Some(match acc {
                        Some(prev) => mat2_mul(m, prev),
                        None => m,
                    });
                }
            }
            if let Some(m) = acc {
                out.push(Fac2::Const(m));
            }
            out
        };
        let fac4 = |src: &Srcs, t0: usize, t1: usize| -> Vec<Fac4> {
            let mut out = Vec::new();
            let mut acc: Option<Box<[[Complex64; 4]; 4]>> = None;
            for &id in src {
                if id & PARAM_ATOM != 0 {
                    if let Some(m) = acc.take() {
                        out.push(Fac4::Const(m));
                    }
                    out.push(Fac4::Atom(id));
                } else {
                    let m = atoms[id as usize].mat4(t0, t1, &[]);
                    acc = Some(match acc {
                        Some(prev) => Box::new(mat4_mul(&m, &prev)),
                        None => Box::new(m),
                    });
                }
            }
            if let Some(m) = acc {
                out.push(Fac4::Const(m));
            }
            out
        };

        let mut tops = Vec::with_capacity(lowered.len());
        for low in lowered {
            match low {
                LowOp::Dense { target, ctrl_mask, m, src } => {
                    if has_param(&src) {
                        let factors = fac2(&src, 1usize << target);
                        tops.push(TOp::Dense { target, ctrl_mask, factors });
                    } else if let Some(op) = classify_dense(target, ctrl_mask, m) {
                        tops.push(TOp::Fixed(op));
                    }
                }
                LowOp::Dense2 { t0, t1, ctrl_mask, m, src } => {
                    if has_param(&src) {
                        let factors = fac4(&src, t0, t1);
                        tops.push(TOp::Dense2 { t0, t1, ctrl_mask, factors });
                    } else if let Some(op) = classify_dense2(t0, t1, ctrl_mask, m) {
                        tops.push(TOp::Fixed(op));
                    }
                }
                LowOp::Phase { set_mask, clear_mask, theta, src } => {
                    if has_param(&src) {
                        let mut const_theta = 0.0;
                        let mut slots = Vec::new();
                        for &id in &src {
                            match &atoms[(id & !PARAM_ATOM) as usize] {
                                Atom::Phase { theta: ThetaSpec::Const(c), .. } => const_theta += c,
                                Atom::Phase { theta: ThetaSpec::Slot { slot, scale }, .. } => {
                                    slots.push((*slot, *scale))
                                }
                                other => unreachable!("non-phase atom {other:?} in a phase group"),
                            }
                        }
                        tops.push(TOp::Phase { set_mask, clear_mask, const_theta, slots });
                    } else if theta != 0.0 {
                        let phase = Complex64::from_polar_unit(theta);
                        tops.push(TOp::Fixed(if set_mask == usize::MAX {
                            KernelOp::Scale { factor: phase }
                        } else {
                            KernelOp::Phase { set_mask, clear_mask, phase }
                        }));
                    }
                }
                LowOp::Swap { a, b, ctrl_mask, .. } => {
                    tops.push(TOp::Fixed(KernelOp::Swap { a, b, ctrl_mask }))
                }
                LowOp::Measure { qubit, loc } => tops.push(TOp::Fixed(KernelOp::Measure { qubit, loc })),
                LowOp::Reset { qubit, loc } => tops.push(TOp::Fixed(KernelOp::Reset { qubit, loc })),
                LowOp::Barrier => {}
            }
        }
        CompiledTemplate {
            num_qubits: circuit.num_qubits(),
            source_len: circuit.len(),
            num_slots,
            atoms,
            tops,
        }
    }

    /// Qubit count of the source structure.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of flattened parameter slots the structure expects
    /// (`Circuit::flat_params().len()` of any structurally-equal circuit).
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Bind a concrete angle vector (program-order flattened parameters,
    /// see `Circuit::flat_params`) into an executable plan. Constant
    /// groups and all fusion decisions are reused; only parameter-dependent
    /// groups are re-derived and re-classified, so binding-specific
    /// identities (a swept angle hitting 0) still drop per binding.
    pub fn rebind(&self, values: &[f64]) -> CompiledCircuit {
        assert_eq!(
            values.len(),
            self.num_slots,
            "template expects {} parameter values, got {}",
            self.num_slots,
            values.len()
        );
        let mut ops = Vec::with_capacity(self.tops.len());
        for top in &self.tops {
            match top {
                TOp::Fixed(op) => ops.push(op.clone()),
                TOp::Dense { target, ctrl_mask, factors } => {
                    let bit = 1usize << target;
                    let mut m = [[Complex64::ONE, Complex64::ZERO], [Complex64::ZERO, Complex64::ONE]];
                    for f in factors {
                        let a = match f {
                            Fac2::Const(c) => *c,
                            Fac2::Atom(id) => self.atoms[(id & !PARAM_ATOM) as usize].mat2(bit, values),
                        };
                        m = mat2_mul(a, m);
                    }
                    if let Some(op) = classify_dense(*target, *ctrl_mask, m) {
                        ops.push(op);
                    }
                }
                TOp::Dense2 { t0, t1, ctrl_mask, factors } => {
                    let pb = (1usize << t0) | (1usize << t1);
                    let mut m4 = identity4();
                    for f in factors {
                        match f {
                            Fac4::Const(c) => m4 = mat4_mul(c, &m4),
                            // Parameterized pair atoms multiply through the
                            // structure-aware kernels (an embedded single
                            // mixes one row pair, a phase scales rows)
                            // instead of a general 4×4 product.
                            Fac4::Atom(id) => match &self.atoms[(id & !PARAM_ATOM) as usize] {
                                Atom::Single { gate, target, ctrl_mask, pslot } => mul4_single_left(
                                    &mut m4,
                                    usize::from(*target == *t1),
                                    pair_s_mask(ctrl_mask & pb, *t0, *t1),
                                    Atom::single_matrix(*gate, *pslot, values),
                                ),
                                Atom::Phase { set_mask, clear_mask, theta } => mul4_phase_left(
                                    &mut m4,
                                    pair_s_mask(set_mask & pb, *t0, *t1),
                                    pair_s_mask(clear_mask & pb, *t0, *t1),
                                    theta.eval(values),
                                ),
                                Atom::Swap => unreachable!("swap atoms are constant factors"),
                            },
                        }
                    }
                    if let Some(op) = classify_dense2(*t0, *t1, *ctrl_mask, Box::new(m4)) {
                        ops.push(op);
                    }
                }
                TOp::Phase { set_mask, clear_mask, const_theta, slots } => {
                    let mut theta = *const_theta;
                    for &(slot, scale) in slots {
                        theta += scale * values[slot as usize];
                    }
                    if theta != 0.0 {
                        let phase = Complex64::from_polar_unit(theta);
                        ops.push(if *set_mask == usize::MAX {
                            KernelOp::Scale { factor: phase }
                        } else {
                            KernelOp::Phase { set_mask: *set_mask, clear_mask: *clear_mask, phase }
                        });
                    }
                }
            }
        }
        CompiledCircuit::from_ops(self.num_qubits, ops, self.source_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::run_once_interpreted;
    use qcor_circuit::library;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_states_agree(circuit: &Circuit, eps: f64) {
        let mut interp = StateVector::new(circuit.num_qubits());
        let mut fused = StateVector::new(circuit.num_qubits());
        let mut rng1 = StdRng::seed_from_u64(9);
        let mut rng2 = StdRng::seed_from_u64(9);
        let rec1 = run_once_interpreted(&mut interp, circuit, &mut rng1);
        let compiled = CompiledCircuit::compile(circuit);
        let rec2 = compiled.run_once(&mut fused, &mut rng2);
        assert_eq!(rec1, rec2, "measurement records must match");
        for (a, b) in interp.amplitudes().iter().zip(fused.amplitudes()) {
            assert!(a.approx_eq(*b, eps), "{a} vs {b}");
        }
    }

    #[test]
    fn adjacent_singles_on_same_target_fuse() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).h(0).x(1);
        let compiled = CompiledCircuit::compile(&c);
        // H·T·H collapses to one dense op, and the pair pass then absorbs
        // the X(1) flip into a single two-qubit block.
        assert_eq!(compiled.len(), 1, "{:?}", compiled.ops());
        assert!(matches!(compiled.ops(), [KernelOp::Dense2 { t0: 0, t1: 1, ctrl_mask: 0, .. }]));
        assert_states_agree(&c, 1e-12);
    }

    #[test]
    fn x_x_cancels_to_identity() {
        let mut c = Circuit::new(1);
        c.x(0).x(0);
        let compiled = CompiledCircuit::compile(&c);
        assert!(compiled.is_empty(), "{:?}", compiled.ops());
    }

    #[test]
    fn phase_runs_merge_by_mask() {
        let mut c = Circuit::new(3);
        // T(0); CZ(1,2); T(0); S(0) — the qubit-0 phases merge across the
        // commuting CZ into one phase op.
        c.t(0).cz(1, 2).t(0).s(0);
        let compiled = CompiledCircuit::compile(&c);
        assert_eq!(compiled.len(), 2, "{:?}", compiled.ops());
        assert_states_agree(&c, 1e-12);
    }

    #[test]
    fn t_tdg_cancel_exactly() {
        let mut c = Circuit::new(1);
        c.t(0).tdg(0);
        let compiled = CompiledCircuit::compile(&c);
        assert!(compiled.is_empty(), "{:?}", compiled.ops());
    }

    #[test]
    fn barrier_blocks_fusion() {
        let mut c = Circuit::new(1);
        c.t(0);
        c.push(Instruction::new(GateKind::Barrier, vec![0], vec![]));
        c.t(0);
        let compiled = CompiledCircuit::compile(&c);
        assert_eq!(compiled.len(), 2, "{:?}", compiled.ops());
    }

    #[test]
    fn measure_blocks_fusion_and_replays_identically() {
        let mut c = Circuit::new(1);
        c.h(0).measure(0).h(0).measure(0);
        let compiled = CompiledCircuit::compile(&c);
        assert_eq!(compiled.len(), 4);
        for seed in 0..20 {
            let mut a = StateVector::new(1);
            let mut b = StateVector::new(1);
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            let rec_a = run_once_interpreted(&mut a, &c, &mut r1);
            let rec_b = compiled.run_once(&mut b, &mut r2);
            assert_eq!(rec_a, rec_b, "seed {seed}");
        }
    }

    #[test]
    fn controlled_gates_keep_control_masks() {
        // Pure X/CX ladders are cheap for the flip kernel, so the pair pass
        // deliberately leaves them unpaired.
        let mut c = Circuit::new(3);
        c.cx(0, 1).ccx(0, 1, 2);
        let compiled = CompiledCircuit::compile(&c);
        assert_eq!(
            compiled.ops(),
            &[
                KernelOp::Flip { target: 1, ctrl_mask: 1, m01: Complex64::ONE, m10: Complex64::ONE },
                KernelOp::Flip { target: 2, ctrl_mask: 0b11, m01: Complex64::ONE, m10: Complex64::ONE },
            ]
        );
    }

    #[test]
    fn rz_global_phase_is_preserved() {
        let mut c = Circuit::new(2);
        c.h(0).rz(0, 0.83).rz(1, -0.21);
        assert_states_agree(&c, 1e-12);
        let compiled = CompiledCircuit::compile(&c);
        assert!(compiled.ops().iter().any(|op| matches!(op, KernelOp::Scale { .. })), "{:?}", compiled.ops());
    }

    #[test]
    fn library_kernels_replay_equivalently() {
        assert_states_agree(&library::bell_kernel(), 1e-12);
        assert_states_agree(&library::ghz_kernel(5), 1e-12);
        assert_states_agree(&library::qft(4), 1e-12);
    }

    #[test]
    fn fused_qft_is_shorter_than_source() {
        let qft = library::qft(5);
        let compiled = CompiledCircuit::compile(&qft);
        assert!(compiled.len() <= compiled.source_len());
    }

    #[test]
    fn diag_classification_uses_phase_kernel_for_s_under_control() {
        // CX-sandwiched diagonal: S(1) compiles to a Phase kernel op, not a
        // dense matrix.
        let mut c = Circuit::new(2);
        c.s(1);
        let compiled = CompiledCircuit::compile(&c);
        assert!(
            matches!(compiled.ops(), [KernelOp::Phase { set_mask: 0b10, clear_mask: 0, .. }]),
            "{:?}",
            compiled.ops()
        );
    }

    #[test]
    fn dense_commutes_over_disjoint_dense_to_fuse() {
        // H(0); H(1); H(0) — the two H(0)s fuse across the commuting H(1),
        // and the pair pass then merges the lot into one two-qubit block.
        let mut c = Circuit::new(2);
        c.h(0).h(1).h(0);
        let compiled = CompiledCircuit::compile(&c);
        assert_eq!(compiled.len(), 1, "{:?}", compiled.ops());
        assert!(matches!(compiled.ops(), [KernelOp::Dense2 { .. }]));
        assert_states_agree(&c, 1e-12);
    }

    #[test]
    fn pair_runs_fuse_into_one_dense2_block() {
        // Single-qubit runs on both qubits of a pair plus the entangling CX
        // collapse into a single 4×4 block: one sweep for five gates.
        let mut c = Circuit::new(2);
        c.h(0).t(0).h(1).s(1).cx(0, 1);
        let compiled = CompiledCircuit::compile(&c);
        assert_eq!(compiled.len(), 1, "{:?}", compiled.ops());
        assert!(matches!(compiled.ops(), [KernelOp::Dense2 { t0: 0, t1: 1, ctrl_mask: 0, .. }]));
        assert_states_agree(&c, 1e-12);
    }

    #[test]
    fn fusion_crosses_swap_by_relabeling() {
        // H(0); Swap(0,1); H(0): the swap becomes a relabeling, the second
        // H lands on physical qubit 1, both pair up, and the flushed
        // end-of-circuit swap is absorbed into the block. One op total.
        let mut c = Circuit::new(2);
        c.h(0).swap(0, 1).h(0);
        let compiled = CompiledCircuit::compile(&c);
        assert_eq!(compiled.len(), 1, "{:?}", compiled.ops());
        assert!(matches!(compiled.ops(), [KernelOp::Dense2 { t0: 0, t1: 1, ctrl_mask: 0, .. }]));
        assert_states_agree(&c, 1e-12);
    }

    #[test]
    fn swap_swap_cancels_through_relabeling() {
        let mut c = Circuit::new(2);
        c.swap(0, 1).swap(0, 1);
        let compiled = CompiledCircuit::compile(&c);
        assert!(compiled.is_empty(), "{:?}", compiled.ops());
    }

    #[test]
    fn measure_after_swap_reports_logical_qubit() {
        // X(0); Swap(0,1); Measure(0); Measure(1) — the swap is relabeled
        // away, so the measures read physical bits 1 and 0, but the shot
        // record must still report logical qubits 0 and 1.
        let mut c = Circuit::new(2);
        c.x(0).swap(0, 1).measure(0).measure(1);
        let compiled = CompiledCircuit::compile(&c);
        let mut state = StateVector::new(2);
        let mut rng = StdRng::seed_from_u64(3);
        let record = compiled.run_once(&mut state, &mut rng);
        assert_eq!(record.outcomes, vec![(0, 0), (1, 1)]);
        assert_states_agree(&c, 1e-12);
    }

    /// One sample instruction per unitary gate kind, on 3 qubits.
    fn sample_unitaries() -> Vec<Instruction> {
        use GateKind::*;
        [
            (H, vec![0], vec![]),
            (X, vec![1], vec![]),
            (Y, vec![2], vec![]),
            (Z, vec![0], vec![]),
            (S, vec![1], vec![]),
            (Sdg, vec![2], vec![]),
            (T, vec![0], vec![]),
            (Tdg, vec![1], vec![]),
            (Rx, vec![2], vec![0.3]),
            (Ry, vec![0], vec![-0.4]),
            (Rz, vec![1], vec![0.5]),
            (Phase, vec![2], vec![0.6]),
            (U3, vec![0], vec![0.1, 0.2, 0.3]),
            (CX, vec![0, 1], vec![]),
            (CY, vec![1, 2], vec![]),
            (CZ, vec![0, 2], vec![]),
            (CPhase, vec![1, 0], vec![0.7]),
            (CRz, vec![2, 1], vec![-0.8]),
            (Swap, vec![0, 2], vec![]),
            (CCX, vec![0, 1, 2], vec![]),
            (CSwap, vec![2, 0, 1], vec![]),
            (CCPhase, vec![0, 1, 2], vec![0.9]),
        ]
        .into_iter()
        .map(|(g, qs, ps)| Instruction::new(g, qs, ps))
        .collect()
    }

    #[test]
    fn is_diagonal_is_the_spec_for_phase_sweep_lowering() {
        // `GateKind::is_diagonal` and the compiler's lowering must agree:
        // exactly the diagonal gates compile to pure Phase/Scale ops (the
        // property that lets runs of them merge into phase sweeps). If a
        // new gate kind diverges between the two encodings, this fails.
        for inst in sample_unitaries() {
            let mut c = Circuit::new(3);
            c.push(inst.clone());
            let compiled = CompiledCircuit::compile(&c);
            let pure_phase =
                compiled.ops().iter().all(|op| matches!(op, KernelOp::Phase { .. } | KernelOp::Scale { .. }));
            assert_eq!(
                pure_phase,
                inst.gate.is_diagonal(),
                "{}: lowering and is_diagonal() disagree ({:?})",
                inst.gate,
                compiled.ops()
            );
        }
    }

    #[test]
    fn kernel_masks_stay_within_instruction_support() {
        // Every compiled op's qubit footprint must be contained in the
        // source instruction's `support_mask` (Scale excepted: the global
        // phase has no qubit footprint).
        for inst in sample_unitaries() {
            let support = inst.support_mask();
            let mut c = Circuit::new(3);
            c.push(inst.clone());
            for op in CompiledCircuit::compile(&c).ops() {
                let footprint = match op {
                    KernelOp::Dense { target, ctrl_mask, .. }
                    | KernelOp::Flip { target, ctrl_mask, .. }
                    | KernelOp::Diag { target, ctrl_mask, .. } => (1 << target) | ctrl_mask,
                    KernelOp::Dense2 { t0, t1, ctrl_mask, .. } => (1 << t0) | (1 << t1) | ctrl_mask,
                    KernelOp::Phase { set_mask, clear_mask, .. } => set_mask | clear_mask,
                    KernelOp::Swap { a, b, ctrl_mask } => (1 << a) | (1 << b) | ctrl_mask,
                    KernelOp::Scale { .. } => 0,
                    KernelOp::Measure { qubit, loc } | KernelOp::Reset { qubit, loc } => {
                        (1 << qubit) | (1 << loc)
                    }
                };
                assert_eq!(
                    footprint & !support,
                    0,
                    "{}: op {op:?} escapes the instruction support {support:#b}",
                    inst.gate
                );
            }
        }
    }

    #[test]
    fn swap_gates_compile_to_swap_ops() {
        let mut c = Circuit::new(3);
        c.swap(0, 1);
        c.push(Instruction::new(GateKind::CSwap, vec![2, 0, 1], vec![]));
        let compiled = CompiledCircuit::compile(&c);
        // The uncontrolled swap relabels: the CSwap's operands map through
        // it (to the same pair {0,1}), and the relabeling flushes as an
        // uncontrolled swap at the end.
        assert_eq!(
            compiled.ops(),
            &[KernelOp::Swap { a: 0, b: 1, ctrl_mask: 1 << 2 }, KernelOp::Swap { a: 0, b: 1, ctrl_mask: 0 }]
        );
        assert_states_agree(&c, 1e-12);
    }

    #[test]
    fn blocked_replay_is_bit_identical_to_unblocked() {
        // 18 qubits = the blocking threshold. Mix block-local ops (every
        // class, qubits < 15) with a high-qubit op that forces a non-local
        // segment in the middle.
        let n = CACHE_BLOCK_MIN_QUBITS;
        let mut c = Circuit::new(n);
        c.h(0).t(0).h(1).s(1).cx(0, 1); // → Dense2
        c.ry(2, 0.37); // → Dense
        c.x(3).cx(3, 4); // → Flips
        c.rz(5, 0.21).cz(5, 6); // → Phase + Scale
        c.h(17).cx(17, 2); // high-qubit: non-blockable segment
        c.swap(7, 8); // relabel + flushed swap
        c.h(7);
        let compiled = CompiledCircuit::compile(&c);
        assert!(
            compiled.ops().iter().any(|op| !is_block_local(op)),
            "test must exercise a non-blockable segment: {:?}",
            compiled.ops()
        );

        // Blocked replay (run_once engages blocking at 2^18 amplitudes).
        let mut blocked = StateVector::new(n);
        let mut rng = StdRng::seed_from_u64(11);
        compiled.run_once(&mut blocked, &mut rng);

        // Unblocked replay: the same ops through the full-state kernels.
        let mut plain = StateVector::new(n);
        let mut rng2 = StdRng::seed_from_u64(11);
        for op in compiled.ops() {
            match op {
                KernelOp::Dense { target, ctrl_mask, m } => plain.apply_single(*target, *m, *ctrl_mask),
                KernelOp::Dense2 { t0, t1, ctrl_mask, m } => plain.apply_pair(*t0, *t1, m, *ctrl_mask),
                KernelOp::Flip { target, ctrl_mask, m01, m10 } => {
                    plain.apply_antidiag(*target, *m01, *m10, *ctrl_mask)
                }
                KernelOp::Diag { target, ctrl_mask, d0, d1 } => {
                    plain.apply_diag(*target, *d0, *d1, *ctrl_mask)
                }
                KernelOp::Phase { set_mask, clear_mask, phase } => {
                    plain.mul_where(*set_mask, *clear_mask, *phase)
                }
                KernelOp::Scale { factor } => plain.scale_all(*factor),
                KernelOp::Swap { a, b, ctrl_mask } => plain.apply_swap(*a, *b, *ctrl_mask),
                KernelOp::Measure { loc, .. } => {
                    plain.measure(*loc, &mut rng2);
                }
                KernelOp::Reset { loc, .. } => plain.reset(*loc, &mut rng2),
            }
        }
        assert_eq!(blocked.amplitudes(), plain.amplitudes(), "blocked replay must be bit-identical");
    }

    /// Rebinding a template must agree with a cold compile of the bound
    /// circuit: same measurement records, amplitudes to ~1e-12 (float
    /// association in a fused group differs, exact values don't).
    fn assert_rebind_matches_cold(structure: &Circuit, bound: &Circuit) {
        let template = CompiledTemplate::compile(structure);
        let rebound = template.rebind(&bound.flat_params());
        let cold = CompiledCircuit::compile(bound);
        let mut s1 = StateVector::new(bound.num_qubits());
        let mut s2 = StateVector::new(bound.num_qubits());
        let mut r1 = StdRng::seed_from_u64(17);
        let mut r2 = StdRng::seed_from_u64(17);
        let rec1 = rebound.run_once(&mut s1, &mut r1);
        let rec2 = cold.run_once(&mut s2, &mut r2);
        assert_eq!(rec1, rec2, "rebound and cold replays must record identically");
        for (a, b) in s1.amplitudes().iter().zip(s2.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12), "{a} vs {b}");
        }
    }

    /// A parameterized structure exercising every rebind group shape:
    /// dense singles, a pair block swallowing rotations, phase sweeps, the
    /// Rz global phase, CRz's two-phase split, and a mid-circuit measure.
    fn sweep_structure(angles: &[f64; 5]) -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0).rx(0, angles[0]).rz(1, angles[1]).cx(0, 1).ry(1, angles[2]);
        c.crz(2, 0, angles[3]).t(2).cphase(1, 2, angles[4]);
        c.measure(0).h(2).measure(2);
        c
    }

    #[test]
    fn template_rebind_matches_cold_compile_across_a_sweep() {
        let structure = sweep_structure(&[0.0; 5]);
        for i in 0..8 {
            let t = i as f64 * 0.37 - 1.1;
            let bound = sweep_structure(&[t, -t, 0.5 * t, t + 0.2, t * t]);
            assert_rebind_matches_cold(&structure, &bound);
        }
    }

    #[test]
    fn template_rebind_handles_binding_specific_identities() {
        // Angles that make individual gates (or whole groups) collapse to
        // identity must drop at rebind time, not poison the template.
        let structure = sweep_structure(&[0.0; 5]);
        assert_rebind_matches_cold(&structure, &sweep_structure(&[0.0; 5]));
        assert_rebind_matches_cold(&structure, &sweep_structure(&[0.0, 1.3, 0.0, 0.0, -0.4]));
        // Opposite Rz angles on the same qubit cancel the phase group.
        let mut canceling = Circuit::new(3);
        canceling.rz(0, 0.9).rz(0, -0.9).h(1);
        let mut structure2 = Circuit::new(3);
        structure2.rz(0, 0.0).rz(0, 0.0).h(1);
        assert_rebind_matches_cold(&structure2, &canceling);
    }

    #[test]
    fn template_reuse_across_structurally_equal_circuits() {
        // One template, many bindings — the cache's core access pattern.
        let structure = sweep_structure(&[9.9, -3.0, 0.1, 2.2, 7.7]);
        let template = CompiledTemplate::compile(&structure);
        assert_eq!(template.num_slots(), 5);
        for i in 0..4 {
            let t = 0.25 + i as f64;
            let bound = sweep_structure(&[t, t, t, t, t]);
            let rebound = template.rebind(&bound.flat_params());
            let cold = CompiledCircuit::compile(&bound);
            let mut s1 = StateVector::new(3);
            let mut s2 = StateVector::new(3);
            let mut r1 = StdRng::seed_from_u64(5);
            let mut r2 = StdRng::seed_from_u64(5);
            assert_eq!(rebound.run_once(&mut s1, &mut r1), cold.run_once(&mut s2, &mut r2));
        }
    }

    #[test]
    fn template_of_constant_circuit_reuses_classified_ops() {
        // A circuit without parameters rebinds to exactly the cold plan.
        let mut c = Circuit::new(3);
        c.h(0).t(0).h(0).cx(0, 1).swap(1, 2).s(2).measure(0).measure(1).measure(2);
        let template = CompiledTemplate::compile(&c);
        assert_eq!(template.num_slots(), 0);
        let rebound = template.rebind(&[]);
        let cold = CompiledCircuit::compile(&c);
        assert_eq!(rebound.ops(), cold.ops(), "constant plans must be identical");
    }

    #[test]
    fn template_rebind_library_qft() {
        // QFT is the heaviest fusion user in the library (controlled-phase
        // ladders + swaps): rebind it at a different "angle set" by
        // checking structure-vs-itself.
        let qft = library::qft(4);
        assert_rebind_matches_cold(&qft, &qft);
    }

    #[test]
    #[should_panic(expected = "parameter values")]
    fn template_rebind_rejects_wrong_arity() {
        let structure = sweep_structure(&[0.0; 5]);
        CompiledTemplate::compile(&structure).rebind(&[1.0, 2.0]);
    }

    #[test]
    fn segments_group_block_local_runs() {
        let mut c = Circuit::new(CACHE_BLOCK_MIN_QUBITS);
        c.t(0).cz(1, 2); // two block-local phase ops (distinct masks)
        c.measure(1); // never blockable
        c.h(17); // non-local (can't hop back across the measure)
        c.measure(0);
        let compiled = CompiledCircuit::compile(&c);
        let segments = plan_segments(compiled.ops());
        assert_eq!(segments.len(), 2, "{segments:?} over {:?}", compiled.ops());
        assert_eq!(segments[0], (0..2, true), "leading phase run must be blockable: {segments:?}");
        assert!(!segments[1].1, "{segments:?}");
    }
}
