//! Compile-then-execute: lower a [`Circuit`] once into a flat list of
//! fused kernel ops, then replay that list per shot.
//!
//! The interpreted executor ([`crate::run_once_interpreted`]) re-dispatches
//! every [`Instruction`] and re-derives every gate matrix on every shot.
//! [`CompiledCircuit::compile`] pays those costs **once**:
//!
//! * every gate matrix, control mask and phase factor is precomputed into a
//!   [`KernelOp`] — replay touches no trig, no `match inst.gate`, and no
//!   allocation;
//! * **single-qubit fusion** — adjacent single-qubit unitaries on the same
//!   target with the same control mask collapse via 2×2 matrix products, and
//!   uncontrolled/same-controlled diagonal gates fold into neighbouring
//!   dense matrices;
//! * **phase-sweep fusion** — diagonal gates (Z/S/T/Rz/CZ/CPhase/CCPhase…)
//!   all commute, so runs of them are reordered freely: same-mask phases
//!   merge by angle addition and the `Rz` global phases accumulate into a
//!   single [`KernelOp::Scale`];
//! * fused matrices are **classified** into the cheapest kernel the state
//!   vector offers: anti-diagonal results run the branch-free flip kernel
//!   ([`StateVector::apply_antidiag`]), diagonal results run the phase /
//!   diagonal kernels, exact identities are dropped entirely.
//!
//! Fusion never crosses a `Measure`, `Reset` or `Barrier`: those are hard
//! scheduling points, so a compiled replay performs its RNG draws in
//! exactly the same order as the interpreted executor.
//!
//! # Determinism contract
//!
//! A compiled replay draws from the RNG exactly once per `Measure`/`Reset`,
//! in program order — identical to the interpreted path — so compiled and
//! interpreted runs of the same [`crate::ShotPlan`] consume identical RNG
//! streams and their merged [`crate::Counts`] stay inside the PR 2
//! `(seed, tasks, chunk_shots)` byte-identical contract. Fused arithmetic
//! rounds differently at the last ulp (a 2×2 product is not two sequential
//! applies), so *amplitudes* agree to ~1e-12 rather than bit-for-bit; an
//! outcome would only flip if a measurement probability and an RNG draw
//! coincided to ~1e-12, which the equivalence property tests
//! (`cross_crate_props`) assert never happens for seeded runs. The fusion
//! knob ([`crate::RunConfig::fusion`], `QCOR_GATE_FUSION`) keeps the
//! interpreted path selectable for exactly this A/B comparison.

use crate::complex::Complex64;
use crate::executor::ShotRecord;
use crate::gates::single_qubit_matrix;
use crate::state::StateVector;
use qcor_circuit::{Circuit, GateKind, Instruction};
use rand::Rng;

/// One precomputed state-vector update of a compiled circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelOp {
    /// Dense 2×2 unitary on `target`, restricted to `ctrl_mask`.
    Dense { target: usize, ctrl_mask: usize, m: [[Complex64; 2]; 2] },
    /// Anti-diagonal [[0, m01], [m10, 0]] — the X-like flip kernel.
    Flip { target: usize, ctrl_mask: usize, m01: Complex64, m10: Complex64 },
    /// diag(d0, d1) on `target` under `ctrl_mask`, both entries non-trivial.
    Diag { target: usize, ctrl_mask: usize, d0: Complex64, d1: Complex64 },
    /// Multiply amplitudes with `set_mask` bits set and `clear_mask` bits
    /// clear by a precomputed unit phase.
    Phase { set_mask: usize, clear_mask: usize, phase: Complex64 },
    /// Multiply every amplitude by `factor` (merged global phases).
    Scale { factor: Complex64 },
    /// (Controlled) swap of qubits `a` and `b`.
    Swap { a: usize, b: usize, ctrl_mask: usize },
    /// Computational-basis measurement of `qubit`.
    Measure { qubit: usize },
    /// Reset `qubit` to |0⟩.
    Reset { qubit: usize },
}

/// Intermediate form during fusion: dense matrices and *angle*-valued
/// phases (angles merge exactly by addition; the unit complex factor is
/// derived once at finalization).
#[derive(Debug, Clone)]
enum LowOp {
    Dense {
        target: usize,
        ctrl_mask: usize,
        m: [[Complex64; 2]; 2],
    },
    Phase {
        set_mask: usize,
        clear_mask: usize,
        theta: f64,
    },
    Swap {
        a: usize,
        b: usize,
        ctrl_mask: usize,
    },
    Measure {
        qubit: usize,
    },
    Reset {
        qubit: usize,
    },
    /// Hard fusion barrier (from `GateKind::Barrier`); dropped at
    /// finalization.
    Barrier,
}

/// How far backward the fusion pass searches for a merge partner while
/// hopping over commuting ops. Bounds the pass at O(len × window).
const FUSION_WINDOW: usize = 32;

fn mat_mul(a: [[Complex64; 2]; 2], b: [[Complex64; 2]; 2]) -> [[Complex64; 2]; 2] {
    let mut out = [[Complex64::ZERO; 2]; 2];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = a[i][0] * b[0][j] + a[i][1] * b[1][j];
        }
    }
    out
}

/// A circuit lowered to a flat, fused list of precomputed kernel ops.
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    num_qubits: usize,
    ops: Vec<KernelOp>,
    source_len: usize,
}

impl CompiledCircuit {
    /// Lower and fuse `circuit`. The result replays with
    /// [`CompiledCircuit::run_once`].
    pub fn compile(circuit: &Circuit) -> CompiledCircuit {
        let mut fuser = Fuser { out: Vec::with_capacity(circuit.len()), pending_global: 0.0 };
        for inst in circuit.instructions() {
            fuser.push_instruction(inst);
        }
        let ops = fuser.finalize();
        CompiledCircuit { num_qubits: circuit.num_qubits(), ops, source_len: circuit.len() }
    }

    /// Qubit count of the source circuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The fused op list, in execution order.
    pub fn ops(&self) -> &[KernelOp] {
        &self.ops
    }

    /// Number of fused kernel ops (≤ the source instruction count for any
    /// circuit without `Barrier`s, and strictly less whenever fusion fired).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when every source instruction fused away (or the source was
    /// empty).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of instructions in the source circuit.
    pub fn source_len(&self) -> usize {
        self.source_len
    }

    /// Replay the compiled ops against `state` once, recording measurement
    /// outcomes — the compiled counterpart of
    /// [`crate::run_once_interpreted`].
    pub fn run_once(&self, state: &mut StateVector, rng: &mut impl Rng) -> ShotRecord {
        assert!(
            self.num_qubits <= state.num_qubits(),
            "compiled circuit needs {} qubits but the state has {}",
            self.num_qubits,
            state.num_qubits()
        );
        let mut record = ShotRecord::default();
        for op in &self.ops {
            match *op {
                KernelOp::Dense { target, ctrl_mask, m } => state.apply_single(target, m, ctrl_mask),
                KernelOp::Flip { target, ctrl_mask, m01, m10 } => {
                    state.apply_antidiag(target, m01, m10, ctrl_mask)
                }
                KernelOp::Diag { target, ctrl_mask, d0, d1 } => state.apply_diag(target, d0, d1, ctrl_mask),
                KernelOp::Phase { set_mask, clear_mask, phase } => {
                    state.mul_where(set_mask, clear_mask, phase)
                }
                KernelOp::Scale { factor } => state.scale_all(factor),
                KernelOp::Swap { a, b, ctrl_mask } => state.apply_swap(a, b, ctrl_mask),
                KernelOp::Measure { qubit } => record.outcomes.push((qubit, state.measure(qubit, rng))),
                KernelOp::Reset { qubit } => state.reset(qubit, rng),
            }
        }
        record
    }
}

struct Fuser {
    out: Vec<LowOp>,
    /// Accumulated global phase (from Rz lowering); global phases commute
    /// with every unitary, so they are hoisted and flushed as one
    /// [`KernelOp::Scale`] at measure/reset/barrier boundaries.
    pending_global: f64,
}

impl Fuser {
    fn push_instruction(&mut self, inst: &Instruction) {
        use GateKind::*;
        let q = &inst.qubits;
        match inst.gate {
            // Diagonal gates lower to angle-valued phase ops, exactly
            // mirroring the interpreted fast path in `apply_instruction`.
            Z => self.push_phase(1 << q[0], 0, std::f64::consts::PI),
            S => self.push_phase(1 << q[0], 0, std::f64::consts::FRAC_PI_2),
            Sdg => self.push_phase(1 << q[0], 0, -std::f64::consts::FRAC_PI_2),
            T => self.push_phase(1 << q[0], 0, std::f64::consts::FRAC_PI_4),
            Tdg => self.push_phase(1 << q[0], 0, -std::f64::consts::FRAC_PI_4),
            Phase => self.push_phase(1 << q[0], 0, inst.params[0]),
            Rz => {
                self.pending_global += -inst.params[0] / 2.0;
                self.push_phase(1 << q[0], 0, inst.params[0]);
            }
            CZ => self.push_phase((1 << q[0]) | (1 << q[1]), 0, std::f64::consts::PI),
            CPhase => self.push_phase((1 << q[0]) | (1 << q[1]), 0, inst.params[0]),
            CCPhase => self.push_phase((1 << q[0]) | (1 << q[1]) | (1 << q[2]), 0, inst.params[0]),
            CRz => {
                let half = inst.params[0] / 2.0;
                self.push_phase((1 << q[0]) | (1 << q[1]), 0, half);
                self.push_phase(1 << q[0], 1 << q[1], -half);
            }
            H | X | Y | Rx | Ry | U3 => {
                let m = single_qubit_matrix(inst.gate, &inst.params).expect("single-qubit gate");
                self.push_dense(q[0], 0, m);
            }
            // Controlled single-qubit gates: the operand split (controls
            // first) comes from the instruction's own introspection.
            CX | CY | CCX => {
                let base = if inst.gate == CY { Y } else { X };
                let m = single_qubit_matrix(base, &[]).expect("single-qubit gate");
                self.push_dense(inst.target_qubits()[0], inst.control_mask(), m);
            }
            Swap | CSwap => {
                let t = inst.target_qubits();
                self.push_boundary(LowOp::Swap { a: t[0], b: t[1], ctrl_mask: inst.control_mask() });
            }
            Measure => self.push_hard_boundary(LowOp::Measure { qubit: q[0] }),
            Reset => self.push_hard_boundary(LowOp::Reset { qubit: q[0] }),
            Barrier => self.push_hard_boundary(LowOp::Barrier),
        }
    }

    /// Push an op that fusion never merges into but that unitary ops may
    /// still commute past in later scans (currently: swaps stop scans, so
    /// this is a plain push).
    fn push_boundary(&mut self, op: LowOp) {
        self.out.push(op);
    }

    /// Push a non-unitary op (or barrier): flush the accumulated global
    /// phase first so replay applies it before any RNG draw.
    fn push_hard_boundary(&mut self, op: LowOp) {
        self.flush_global();
        self.out.push(op);
    }

    fn flush_global(&mut self) {
        if self.pending_global != 0.0 {
            // Represent as an unconditional phase over zero fixed bits —
            // finalization emits it as a `Scale`.
            let theta = std::mem::take(&mut self.pending_global);
            self.out.push(LowOp::Phase { set_mask: usize::MAX, clear_mask: 0, theta });
        }
    }

    /// True when a diagonal op with the given masks is independent of
    /// `bit`: its phase factor is then identical on both halves of any
    /// amplitude pair over that bit, so it commutes with any (controlled)
    /// single-qubit op targeting the bit.
    fn phase_independent_of(set_mask: usize, clear_mask: usize, bit: usize) -> bool {
        set_mask != usize::MAX && (set_mask | clear_mask) & bit == 0
    }

    /// Append a dense single-qubit op, merging backward where valid.
    fn push_dense(&mut self, target: usize, ctrl_mask: usize, mut m: [[Complex64; 2]; 2]) {
        let bit = 1usize << target;
        let mut idx = self.out.len();
        let mut scanned = 0;
        while idx > 0 && scanned < FUSION_WINDOW {
            scanned += 1;
            match self.out[idx - 1] {
                LowOp::Dense { target: t2, ctrl_mask: c2, m: m2 } if t2 == target && c2 == ctrl_mask => {
                    // Same target, same controls: collapse to one matrix
                    // (this op applied after the existing one).
                    m = mat_mul(m, m2);
                    self.out.remove(idx - 1);
                    self.out.push(LowOp::Dense { target, ctrl_mask, m });
                    return;
                }
                LowOp::Dense { target: t2, ctrl_mask: c2, .. }
                    if t2 != target && c2 & bit == 0 && ctrl_mask & (1 << t2) == 0 =>
                {
                    // Controlled single-qubit ops commute when neither
                    // target appears in the other op's support (shared
                    // control bits are diagonal for both and don't matter).
                    idx -= 1;
                    continue;
                }
                LowOp::Phase { set_mask, clear_mask, theta } => {
                    // A diagonal on exactly this target under the same
                    // controls folds into the matrix as diag(·) applied
                    // first (right multiplication).
                    if set_mask == (ctrl_mask | bit) && clear_mask == 0 {
                        let p = Complex64::from_polar_unit(theta);
                        m = mat_mul(m, [[Complex64::ONE, Complex64::ZERO], [Complex64::ZERO, p]]);
                        self.out.remove(idx - 1);
                        idx -= 1;
                        continue;
                    }
                    if set_mask == ctrl_mask && clear_mask == bit {
                        let p = Complex64::from_polar_unit(theta);
                        m = mat_mul(m, [[p, Complex64::ZERO], [Complex64::ZERO, Complex64::ONE]]);
                        self.out.remove(idx - 1);
                        idx -= 1;
                        continue;
                    }
                    // Otherwise hop over it only if it cannot see the
                    // target bit.
                    if Self::phase_independent_of(set_mask, clear_mask, bit) {
                        idx -= 1;
                        continue;
                    }
                    break;
                }
                _ => break,
            }
        }
        self.out.insert(idx, LowOp::Dense { target, ctrl_mask, m });
    }

    /// Append a diagonal phase op, merging backward where valid. Diagonal
    /// ops all commute, so the scan may hop over any of them.
    fn push_phase(&mut self, set_mask: usize, clear_mask: usize, theta: f64) {
        let mut idx = self.out.len();
        let mut scanned = 0;
        while idx > 0 && scanned < FUSION_WINDOW {
            scanned += 1;
            match self.out[idx - 1] {
                LowOp::Phase { set_mask: s2, clear_mask: c2, theta: t2 } => {
                    if s2 == set_mask && c2 == clear_mask {
                        self.out[idx - 1] = LowOp::Phase { set_mask, clear_mask, theta: t2 + theta };
                        return;
                    }
                    // Distinct diagonal ops commute.
                    idx -= 1;
                }
                LowOp::Dense { target, ctrl_mask, m } => {
                    let bit = 1usize << target;
                    // Fold onto the dense op as diag applied *after* it
                    // (left multiplication).
                    if set_mask == (ctrl_mask | bit) && clear_mask == 0 {
                        let p = Complex64::from_polar_unit(theta);
                        let fused = mat_mul([[Complex64::ONE, Complex64::ZERO], [Complex64::ZERO, p]], m);
                        self.out[idx - 1] = LowOp::Dense { target, ctrl_mask, m: fused };
                        return;
                    }
                    if set_mask == ctrl_mask && clear_mask == bit {
                        let p = Complex64::from_polar_unit(theta);
                        let fused = mat_mul([[p, Complex64::ZERO], [Complex64::ZERO, Complex64::ONE]], m);
                        self.out[idx - 1] = LowOp::Dense { target, ctrl_mask, m: fused };
                        return;
                    }
                    if Self::phase_independent_of(set_mask, clear_mask, bit) {
                        idx -= 1;
                        continue;
                    }
                    break;
                }
                _ => break,
            }
        }
        self.out.insert(idx, LowOp::Phase { set_mask, clear_mask, theta });
    }

    /// Classify the fused low ops into the cheapest kernels, dropping
    /// identities.
    fn finalize(mut self) -> Vec<KernelOp> {
        self.flush_global();
        let mut ops = Vec::with_capacity(self.out.len());
        for low in self.out {
            match low {
                LowOp::Dense { target, ctrl_mask, m } => {
                    if let Some(op) = classify_dense(target, ctrl_mask, m) {
                        ops.push(op);
                    }
                }
                LowOp::Phase { set_mask, clear_mask, theta } => {
                    if theta != 0.0 {
                        let phase = Complex64::from_polar_unit(theta);
                        if set_mask == usize::MAX {
                            ops.push(KernelOp::Scale { factor: phase });
                        } else {
                            ops.push(KernelOp::Phase { set_mask, clear_mask, phase });
                        }
                    }
                }
                LowOp::Swap { a, b, ctrl_mask } => ops.push(KernelOp::Swap { a, b, ctrl_mask }),
                LowOp::Measure { qubit } => ops.push(KernelOp::Measure { qubit }),
                LowOp::Reset { qubit } => ops.push(KernelOp::Reset { qubit }),
                LowOp::Barrier => {}
            }
        }
        ops
    }
}

/// Pick the cheapest kernel for a fused 2×2 matrix; `None` for an exact
/// identity (which only arises from symbolic cancellations like X·X — the
/// float products of e.g. H·H are *near*-identity and stay dense).
fn classify_dense(target: usize, ctrl_mask: usize, m: [[Complex64; 2]; 2]) -> Option<KernelOp> {
    let bit = 1usize << target;
    let diagonal = m[0][1] == Complex64::ZERO && m[1][0] == Complex64::ZERO;
    let anti_diagonal = m[0][0] == Complex64::ZERO && m[1][1] == Complex64::ZERO;
    if diagonal {
        if m[0][0] == Complex64::ONE && m[1][1] == Complex64::ONE {
            return None;
        }
        if m[0][0] == Complex64::ONE {
            return Some(KernelOp::Phase { set_mask: ctrl_mask | bit, clear_mask: 0, phase: m[1][1] });
        }
        if m[1][1] == Complex64::ONE {
            return Some(KernelOp::Phase { set_mask: ctrl_mask, clear_mask: bit, phase: m[0][0] });
        }
        return Some(KernelOp::Diag { target, ctrl_mask, d0: m[0][0], d1: m[1][1] });
    }
    if anti_diagonal {
        return Some(KernelOp::Flip { target, ctrl_mask, m01: m[0][1], m10: m[1][0] });
    }
    Some(KernelOp::Dense { target, ctrl_mask, m })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::run_once_interpreted;
    use qcor_circuit::library;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_states_agree(circuit: &Circuit, eps: f64) {
        let mut interp = StateVector::new(circuit.num_qubits());
        let mut fused = StateVector::new(circuit.num_qubits());
        let mut rng1 = StdRng::seed_from_u64(9);
        let mut rng2 = StdRng::seed_from_u64(9);
        let rec1 = run_once_interpreted(&mut interp, circuit, &mut rng1);
        let compiled = CompiledCircuit::compile(circuit);
        let rec2 = compiled.run_once(&mut fused, &mut rng2);
        assert_eq!(rec1, rec2, "measurement records must match");
        for (a, b) in interp.amplitudes().iter().zip(fused.amplitudes()) {
            assert!(a.approx_eq(*b, eps), "{a} vs {b}");
        }
    }

    #[test]
    fn adjacent_singles_on_same_target_fuse() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).h(0).x(1);
        let compiled = CompiledCircuit::compile(&c);
        // H·T·H collapses to one dense op; X classifies as a flip.
        assert_eq!(compiled.len(), 2, "{:?}", compiled.ops());
        assert_states_agree(&c, 1e-12);
    }

    #[test]
    fn x_x_cancels_to_identity() {
        let mut c = Circuit::new(1);
        c.x(0).x(0);
        let compiled = CompiledCircuit::compile(&c);
        assert!(compiled.is_empty(), "{:?}", compiled.ops());
    }

    #[test]
    fn phase_runs_merge_by_mask() {
        let mut c = Circuit::new(3);
        // T(0); CZ(1,2); T(0); S(0) — the qubit-0 phases merge across the
        // commuting CZ into one phase op.
        c.t(0).cz(1, 2).t(0).s(0);
        let compiled = CompiledCircuit::compile(&c);
        assert_eq!(compiled.len(), 2, "{:?}", compiled.ops());
        assert_states_agree(&c, 1e-12);
    }

    #[test]
    fn t_tdg_cancel_exactly() {
        let mut c = Circuit::new(1);
        c.t(0).tdg(0);
        let compiled = CompiledCircuit::compile(&c);
        assert!(compiled.is_empty(), "{:?}", compiled.ops());
    }

    #[test]
    fn barrier_blocks_fusion() {
        let mut c = Circuit::new(1);
        c.t(0);
        c.push(Instruction::new(GateKind::Barrier, vec![0], vec![]));
        c.t(0);
        let compiled = CompiledCircuit::compile(&c);
        assert_eq!(compiled.len(), 2, "{:?}", compiled.ops());
    }

    #[test]
    fn measure_blocks_fusion_and_replays_identically() {
        let mut c = Circuit::new(1);
        c.h(0).measure(0).h(0).measure(0);
        let compiled = CompiledCircuit::compile(&c);
        assert_eq!(compiled.len(), 4);
        for seed in 0..20 {
            let mut a = StateVector::new(1);
            let mut b = StateVector::new(1);
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            let rec_a = run_once_interpreted(&mut a, &c, &mut r1);
            let rec_b = compiled.run_once(&mut b, &mut r2);
            assert_eq!(rec_a, rec_b, "seed {seed}");
        }
    }

    #[test]
    fn controlled_gates_keep_control_masks() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).ccx(0, 1, 2);
        let compiled = CompiledCircuit::compile(&c);
        assert_eq!(
            compiled.ops(),
            &[
                KernelOp::Flip { target: 1, ctrl_mask: 1, m01: Complex64::ONE, m10: Complex64::ONE },
                KernelOp::Flip { target: 2, ctrl_mask: 0b11, m01: Complex64::ONE, m10: Complex64::ONE },
            ]
        );
    }

    #[test]
    fn rz_global_phase_is_preserved() {
        let mut c = Circuit::new(2);
        c.h(0).rz(0, 0.83).rz(1, -0.21);
        assert_states_agree(&c, 1e-12);
        let compiled = CompiledCircuit::compile(&c);
        assert!(compiled.ops().iter().any(|op| matches!(op, KernelOp::Scale { .. })), "{:?}", compiled.ops());
    }

    #[test]
    fn library_kernels_replay_equivalently() {
        assert_states_agree(&library::bell_kernel(), 1e-12);
        assert_states_agree(&library::ghz_kernel(5), 1e-12);
        assert_states_agree(&library::qft(4), 1e-12);
    }

    #[test]
    fn fused_qft_is_shorter_than_source() {
        let qft = library::qft(5);
        let compiled = CompiledCircuit::compile(&qft);
        assert!(compiled.len() <= compiled.source_len());
    }

    #[test]
    fn diag_classification_uses_phase_kernel_for_s_under_control() {
        // CX-sandwiched diagonal: S(1) compiles to a Phase kernel op, not a
        // dense matrix.
        let mut c = Circuit::new(2);
        c.s(1);
        let compiled = CompiledCircuit::compile(&c);
        assert!(
            matches!(compiled.ops(), [KernelOp::Phase { set_mask: 0b10, clear_mask: 0, .. }]),
            "{:?}",
            compiled.ops()
        );
    }

    #[test]
    fn dense_commutes_over_disjoint_dense_to_fuse() {
        // H(0); H(1); H(0) — the two H(0)s fuse across the commuting H(1).
        let mut c = Circuit::new(2);
        c.h(0).h(1).h(0);
        let compiled = CompiledCircuit::compile(&c);
        assert_eq!(compiled.len(), 2, "{:?}", compiled.ops());
        assert_states_agree(&c, 1e-12);
    }

    /// One sample instruction per unitary gate kind, on 3 qubits.
    fn sample_unitaries() -> Vec<Instruction> {
        use GateKind::*;
        [
            (H, vec![0], vec![]),
            (X, vec![1], vec![]),
            (Y, vec![2], vec![]),
            (Z, vec![0], vec![]),
            (S, vec![1], vec![]),
            (Sdg, vec![2], vec![]),
            (T, vec![0], vec![]),
            (Tdg, vec![1], vec![]),
            (Rx, vec![2], vec![0.3]),
            (Ry, vec![0], vec![-0.4]),
            (Rz, vec![1], vec![0.5]),
            (Phase, vec![2], vec![0.6]),
            (U3, vec![0], vec![0.1, 0.2, 0.3]),
            (CX, vec![0, 1], vec![]),
            (CY, vec![1, 2], vec![]),
            (CZ, vec![0, 2], vec![]),
            (CPhase, vec![1, 0], vec![0.7]),
            (CRz, vec![2, 1], vec![-0.8]),
            (Swap, vec![0, 2], vec![]),
            (CCX, vec![0, 1, 2], vec![]),
            (CSwap, vec![2, 0, 1], vec![]),
            (CCPhase, vec![0, 1, 2], vec![0.9]),
        ]
        .into_iter()
        .map(|(g, qs, ps)| Instruction::new(g, qs, ps))
        .collect()
    }

    #[test]
    fn is_diagonal_is_the_spec_for_phase_sweep_lowering() {
        // `GateKind::is_diagonal` and the compiler's lowering must agree:
        // exactly the diagonal gates compile to pure Phase/Scale ops (the
        // property that lets runs of them merge into phase sweeps). If a
        // new gate kind diverges between the two encodings, this fails.
        for inst in sample_unitaries() {
            let mut c = Circuit::new(3);
            c.push(inst.clone());
            let compiled = CompiledCircuit::compile(&c);
            let pure_phase =
                compiled.ops().iter().all(|op| matches!(op, KernelOp::Phase { .. } | KernelOp::Scale { .. }));
            assert_eq!(
                pure_phase,
                inst.gate.is_diagonal(),
                "{}: lowering and is_diagonal() disagree ({:?})",
                inst.gate,
                compiled.ops()
            );
        }
    }

    #[test]
    fn kernel_masks_stay_within_instruction_support() {
        // Every compiled op's qubit footprint must be contained in the
        // source instruction's `support_mask` (Scale excepted: the global
        // phase has no qubit footprint).
        for inst in sample_unitaries() {
            let support = inst.support_mask();
            let mut c = Circuit::new(3);
            c.push(inst.clone());
            for op in CompiledCircuit::compile(&c).ops() {
                let footprint = match *op {
                    KernelOp::Dense { target, ctrl_mask, .. }
                    | KernelOp::Flip { target, ctrl_mask, .. }
                    | KernelOp::Diag { target, ctrl_mask, .. } => (1 << target) | ctrl_mask,
                    KernelOp::Phase { set_mask, clear_mask, .. } => set_mask | clear_mask,
                    KernelOp::Swap { a, b, ctrl_mask } => (1 << a) | (1 << b) | ctrl_mask,
                    KernelOp::Scale { .. } => 0,
                    KernelOp::Measure { qubit } | KernelOp::Reset { qubit } => 1 << qubit,
                };
                assert_eq!(
                    footprint & !support,
                    0,
                    "{}: op {op:?} escapes the instruction support {support:#b}",
                    inst.gate
                );
            }
        }
    }

    #[test]
    fn swap_gates_compile_to_swap_ops() {
        let mut c = Circuit::new(3);
        c.swap(0, 1);
        c.push(Instruction::new(GateKind::CSwap, vec![2, 0, 1], vec![]));
        let compiled = CompiledCircuit::compile(&c);
        assert_eq!(
            compiled.ops(),
            &[KernelOp::Swap { a: 0, b: 1, ctrl_mask: 0 }, KernelOp::Swap { a: 0, b: 1, ctrl_mask: 1 << 2 },]
        );
        assert_states_agree(&c, 1e-12);
    }
}
