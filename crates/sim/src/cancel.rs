//! Cooperative cancellation for long-running sweeps.
//!
//! A [`CancelToken`] is a shared flag an executor checks at safe points —
//! the shot scheduler ([`crate::executor::run_shots_planned`]) checks it at
//! **chunk boundaries**, so a cancelled sweep stops before starting its
//! next chunk job and returns the counts of the chunks that already
//! finished. Because every chunk samples from its own derived RNG stream
//! ([`crate::executor::derive_stream_seed`]), the merged counts of the
//! completed prefix are bit-identical to what an uncancelled run would
//! have produced for those chunks — cancellation never corrupts results,
//! it only truncates them.
//!
//! The token travels through a thread-local: an execution layer (e.g. the
//! `qcor-core` execution service) installs the task's token with
//! [`set_thread_cancel_token`] around the task body, and the executor picks
//! it up with [`thread_cancel_token`] on the submitting thread before
//! fanning chunk jobs out to pool workers. Code inside a task can poll
//! [`cancel_requested`] directly at its own safe points.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Cloning shares the flag; setting it is
/// sticky (there is no un-cancel).
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation: every holder of this token (or a clone)
    /// observes `is_cancelled() == true` from now on.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

thread_local! {
    /// The token of the task the current thread is executing, if any.
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Install `token` as the current thread's cancellation token, returning
/// the previous one so nested scopes can restore it.
pub fn set_thread_cancel_token(token: Option<CancelToken>) -> Option<CancelToken> {
    CURRENT.with(|current| current.replace(token))
}

/// The current thread's cancellation token, if one is installed.
pub fn thread_cancel_token() -> Option<CancelToken> {
    CURRENT.with(|current| current.borrow().clone())
}

/// Whether the current thread's task has been asked to stop. `false` when
/// no token is installed. A cancellation checkpoint for task code.
pub fn cancel_requested() -> bool {
    CURRENT.with(|current| current.borrow().as_ref().is_some_and(CancelToken::is_cancelled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_is_sticky_and_shared() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        assert!(clone.is_cancelled());
    }

    #[test]
    fn thread_install_and_restore() {
        assert!(thread_cancel_token().is_none());
        assert!(!cancel_requested());
        let token = CancelToken::new();
        let previous = set_thread_cancel_token(Some(token.clone()));
        assert!(previous.is_none());
        assert!(!cancel_requested());
        token.cancel();
        assert!(cancel_requested());
        let restored = set_thread_cancel_token(previous);
        assert!(restored.is_some_and(|t| t.is_cancelled()));
        assert!(thread_cancel_token().is_none());
    }
}
