//! Single-precision compiled replay — the `precision=f32` backend mode.
//!
//! [`StateVector32`] holds `Complex32` amplitudes (half the bytes per
//! amplitude of the f64 path, so twice the state fits in each cache level
//! and unit-stride sweeps move twice the amplitudes per cache line), and
//! [`CompiledCircuit32`] replays a [`CompiledCircuit`]'s fused kernel ops
//! against it. The mode is **compiled-replay-only**: circuits are always
//! compiled (fused, classified) in f64 by [`crate::compile`], and the fused
//! matrices are narrowed to f32 **once per plan** by
//! [`CompiledCircuit32::narrow`] — there is no f32 interpreter and no f32
//! compile-time arithmetic, so fusion algebra never loses precision.
//!
//! # Accuracy contract
//!
//! Amplitudes after an f32 replay agree with the f64 replay to ~1e-4
//! (component-wise) on circuits of a few hundred fused ops; f32 has ~7
//! significant decimal digits and kernel sweeps accumulate roundoff
//! linearly in circuit depth. Probability reductions (measurement,
//! [`StateVector32::prob_one`]) accumulate in **f64** so collapse
//! renormalization does not compound single-precision sums.
//!
//! # Determinism
//!
//! The replay draws from the caller's RNG exactly like the f64 path: one
//! `rng.gen::<f64>()` per `Measure`/`Reset`, in program order. Draw *count
//! and order* therefore match the f64 executor for the same compiled
//! circuit, but sampled outcomes may differ near probability boundaries
//! (the f32 probabilities differ from the f64 ones in the last ~1e-7).
//! Fixed-seed f32 runs are byte-identical to each other.
//!
//! # Scope
//!
//! `StateVector32` is sequential-only: its sweeps run on the calling
//! thread (no pool work-sharing) and it has no cache-blocked segment
//! replay. The mode targets shot-chunked sampling, where each chunk owns a
//! private state and parallelism comes from running chunks concurrently.

use crate::compile::{CompiledCircuit, KernelOp};
use crate::complex::{Complex32, Complex64};
use crate::executor::ShotRecord;
use crate::state::BitInserts;
use crate::stats::{record_iterations, KernelClass};
use rand::Rng;

/// Narrow a 2×2 complex matrix component-wise.
fn mat2_32(m: &[[Complex64; 2]; 2]) -> [[Complex32; 2]; 2] {
    [
        [Complex32::from_c64(m[0][0]), Complex32::from_c64(m[0][1])],
        [Complex32::from_c64(m[1][0]), Complex32::from_c64(m[1][1])],
    ]
}

/// Narrow a 4×4 complex matrix component-wise.
fn mat4_32(m: &[[Complex64; 4]; 4]) -> [[Complex32; 4]; 4] {
    let mut out = [[Complex32::ZERO; 4]; 4];
    for (row, src) in out.iter_mut().zip(m.iter()) {
        for (dst, &z) in row.iter_mut().zip(src.iter()) {
            *dst = Complex32::from_c64(z);
        }
    }
    out
}

/// A [`KernelOp`] with its matrix data narrowed to f32. Variants mirror
/// [`KernelOp`] exactly; see [`crate::compile`] for the classification.
#[derive(Debug, Clone, PartialEq)]
enum Op32 {
    Dense { target: usize, ctrl_mask: usize, m: [[Complex32; 2]; 2] },
    Dense2 { t0: usize, t1: usize, ctrl_mask: usize, m: Box<[[Complex32; 4]; 4]> },
    Flip { target: usize, ctrl_mask: usize, m01: Complex32, m10: Complex32 },
    Diag { target: usize, ctrl_mask: usize, d0: Complex32, d1: Complex32 },
    Phase { set_mask: usize, clear_mask: usize, phase: Complex32 },
    Scale { factor: Complex32 },
    Swap { a: usize, b: usize, ctrl_mask: usize },
    Measure { qubit: usize, loc: usize },
    Reset { loc: usize },
}

/// A compiled circuit narrowed for single-precision replay.
///
/// Built once per [`crate::ShotPlan`] from the f64 [`CompiledCircuit`];
/// replayed per shot with [`CompiledCircuit32::run_once`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledCircuit32 {
    num_qubits: usize,
    ops: Vec<Op32>,
}

impl CompiledCircuit32 {
    /// Narrow every fused kernel op of `compiled` to f32.
    pub fn narrow(compiled: &CompiledCircuit) -> CompiledCircuit32 {
        let ops = compiled
            .ops()
            .iter()
            .map(|op| match op {
                KernelOp::Dense { target, ctrl_mask, m } => {
                    Op32::Dense { target: *target, ctrl_mask: *ctrl_mask, m: mat2_32(m) }
                }
                KernelOp::Dense2 { t0, t1, ctrl_mask, m } => {
                    Op32::Dense2 { t0: *t0, t1: *t1, ctrl_mask: *ctrl_mask, m: Box::new(mat4_32(m)) }
                }
                KernelOp::Flip { target, ctrl_mask, m01, m10 } => Op32::Flip {
                    target: *target,
                    ctrl_mask: *ctrl_mask,
                    m01: Complex32::from_c64(*m01),
                    m10: Complex32::from_c64(*m10),
                },
                KernelOp::Diag { target, ctrl_mask, d0, d1 } => Op32::Diag {
                    target: *target,
                    ctrl_mask: *ctrl_mask,
                    d0: Complex32::from_c64(*d0),
                    d1: Complex32::from_c64(*d1),
                },
                KernelOp::Phase { set_mask, clear_mask, phase } => Op32::Phase {
                    set_mask: *set_mask,
                    clear_mask: *clear_mask,
                    phase: Complex32::from_c64(*phase),
                },
                KernelOp::Scale { factor } => Op32::Scale { factor: Complex32::from_c64(*factor) },
                KernelOp::Swap { a, b, ctrl_mask } => Op32::Swap { a: *a, b: *b, ctrl_mask: *ctrl_mask },
                KernelOp::Measure { qubit, loc } => Op32::Measure { qubit: *qubit, loc: *loc },
                KernelOp::Reset { qubit: _, loc } => Op32::Reset { loc: *loc },
            })
            .collect();
        CompiledCircuit32 { num_qubits: compiled.num_qubits(), ops }
    }

    /// Qubits of the source circuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of narrowed kernel ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the circuit compiled to zero ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Replay the narrowed op list once against `state`, drawing
    /// measurement outcomes from `rng` (one `f64` draw per
    /// `Measure`/`Reset`, in program order — the same stream discipline as
    /// the f64 replay).
    pub fn run_once(&self, state: &mut StateVector32, rng: &mut impl Rng) -> ShotRecord {
        assert!(
            self.num_qubits <= state.num_qubits(),
            "circuit needs {} qubits but the state has {}",
            self.num_qubits,
            state.num_qubits()
        );
        let mut record = ShotRecord::default();
        for op in &self.ops {
            match op {
                Op32::Dense { target, ctrl_mask, m } => state.apply_single(*target, *m, *ctrl_mask),
                Op32::Dense2 { t0, t1, ctrl_mask, m } => state.apply_pair(*t0, *t1, m, *ctrl_mask),
                Op32::Flip { target, ctrl_mask, m01, m10 } => {
                    state.apply_antidiag(*target, *m01, *m10, *ctrl_mask)
                }
                Op32::Diag { target, ctrl_mask, d0, d1 } => state.apply_diag(*target, *d0, *d1, *ctrl_mask),
                Op32::Phase { set_mask, clear_mask, phase } => {
                    state.mul_where(*set_mask, *clear_mask, *phase)
                }
                Op32::Scale { factor } => state.scale_all(*factor),
                Op32::Swap { a, b, ctrl_mask } => state.apply_swap(*a, *b, *ctrl_mask),
                Op32::Measure { qubit, loc } => {
                    record.outcomes.push((*qubit, state.measure(*loc, rng)));
                }
                Op32::Reset { loc } => state.reset(*loc, rng),
            }
        }
        record
    }
}

/// A single-precision state vector: `2^n` `Complex32` amplitudes plus the
/// sequential update kernels the f32 replay needs. Index convention is the
/// same little-endian layout as [`crate::StateVector`].
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector32 {
    num_qubits: usize,
    amps: Vec<Complex32>,
}

impl StateVector32 {
    /// |0…0⟩ on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> StateVector32 {
        assert!(num_qubits <= 30, "state vector limited to 30 qubits");
        let mut amps = vec![Complex32::ZERO; 1usize << num_qubits];
        amps[0] = Complex32::ONE;
        StateVector32 { num_qubits, amps }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The amplitude slice (little-endian basis order).
    pub fn amplitudes(&self) -> &[Complex32] {
        &self.amps
    }

    /// Return to |0…0⟩ without reallocating.
    pub fn reset_to_zero(&mut self) {
        self.amps.fill(Complex32::ZERO);
        self.amps[0] = Complex32::ONE;
    }

    /// |amp|² of each basis state, accumulated per-amplitude in f64.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr_f64()).collect()
    }

    fn apply_single(&mut self, t: usize, m: [[Complex32; 2]; 2], ctrl_mask: usize) {
        debug_assert!(t < self.num_qubits);
        let stride = 1usize << t;
        let inserts = BitInserts::new(ctrl_mask, stride);
        let pairs = self.amps.len() >> inserts.width();
        record_iterations(KernelClass::Dense, pairs);
        for k in 0..pairs {
            let i = inserts.expand(k);
            let j = i | stride;
            let (a, b) = (self.amps[i], self.amps[j]);
            self.amps[i] = m[0][0] * a + m[0][1] * b;
            self.amps[j] = m[1][0] * a + m[1][1] * b;
        }
    }

    fn apply_pair(&mut self, t0: usize, t1: usize, m: &[[Complex32; 4]; 4], ctrl_mask: usize) {
        assert!(t0 < t1, "pair must be ordered low-to-high");
        debug_assert!(t1 < self.num_qubits);
        let (s0, s1) = (1usize << t0, 1usize << t1);
        let inserts = BitInserts::new(ctrl_mask, s0 | s1);
        let quads = self.amps.len() >> inserts.width();
        record_iterations(KernelClass::Dense2, quads);
        for k in 0..quads {
            let i00 = inserts.expand(k);
            let (i01, i10, i11) = (i00 | s0, i00 | s1, i00 | s0 | s1);
            let a = [self.amps[i00], self.amps[i01], self.amps[i10], self.amps[i11]];
            for (r, &i) in [i00, i01, i10, i11].iter().enumerate() {
                self.amps[i] = m[r][0] * a[0] + m[r][1] * a[1] + m[r][2] * a[2] + m[r][3] * a[3];
            }
        }
    }

    fn apply_antidiag(&mut self, t: usize, m01: Complex32, m10: Complex32, ctrl_mask: usize) {
        debug_assert!(t < self.num_qubits);
        let stride = 1usize << t;
        let inserts = BitInserts::new(ctrl_mask, stride);
        let pairs = self.amps.len() >> inserts.width();
        record_iterations(KernelClass::Flip, pairs);
        let pure_flip = m01 == Complex32::ONE && m10 == Complex32::ONE;
        for k in 0..pairs {
            let i = inserts.expand(k);
            let j = i | stride;
            if pure_flip {
                self.amps.swap(i, j);
            } else {
                let (a, b) = (self.amps[i], self.amps[j]);
                self.amps[i] = m01 * b;
                self.amps[j] = m10 * a;
            }
        }
    }

    fn apply_diag(&mut self, t: usize, d0: Complex32, d1: Complex32, ctrl_mask: usize) {
        debug_assert!(t < self.num_qubits);
        let stride = 1usize << t;
        let inserts = BitInserts::new(ctrl_mask, stride);
        let pairs = self.amps.len() >> inserts.width();
        record_iterations(KernelClass::Diag, pairs);
        for k in 0..pairs {
            let i = inserts.expand(k);
            self.amps[i] *= d0;
            self.amps[i | stride] *= d1;
        }
    }

    fn mul_where(&mut self, set_mask: usize, clear_mask: usize, z: Complex32) {
        debug_assert_eq!(set_mask & clear_mask, 0);
        let inserts = BitInserts::new(set_mask, clear_mask);
        let matching = self.amps.len() >> inserts.width();
        record_iterations(KernelClass::Phase, matching);
        for k in 0..matching {
            let i = inserts.expand(k);
            self.amps[i] *= z;
        }
    }

    fn scale_all(&mut self, factor: Complex32) {
        record_iterations(KernelClass::Scale, self.amps.len());
        for a in &mut self.amps {
            *a *= factor;
        }
    }

    fn apply_swap(&mut self, a: usize, b: usize, ctrl_mask: usize) {
        debug_assert!(a < b && b < self.num_qubits);
        let (bit_a, bit_b) = (1usize << a, 1usize << b);
        let inserts = BitInserts::new(ctrl_mask | bit_a, bit_b);
        let pairs = self.amps.len() >> inserts.width();
        record_iterations(KernelClass::Swap, pairs);
        for k in 0..pairs {
            let i = inserts.expand(k);
            let j = i ^ bit_a ^ bit_b;
            self.amps.swap(i, j);
        }
    }

    /// Probability of measuring |1⟩ on qubit `q`, accumulated in f64.
    pub fn prob_one(&self, q: usize) -> f64 {
        let bit = 1usize << q;
        let mut acc = 0.0f64;
        for (i, a) in self.amps.iter().enumerate() {
            if i & bit != 0 {
                acc += a.norm_sqr_f64();
            }
        }
        acc
    }

    /// Measure qubit `q`: one `f64` draw, collapse, renormalize. The draw
    /// shape matches [`crate::StateVector::measure`] so f32 and f64 replays
    /// of the same compiled circuit consume identical RNG streams.
    pub fn measure(&mut self, q: usize, rng: &mut impl Rng) -> u8 {
        let p1 = self.prob_one(q).clamp(0.0, 1.0);
        let outcome = if rng.gen::<f64>() < p1 { 1u8 } else { 0u8 };
        self.collapse(q, outcome, if outcome == 1 { p1 } else { 1.0 - p1 });
        outcome
    }

    fn collapse(&mut self, q: usize, outcome: u8, prob: f64) {
        assert!(prob > 0.0, "cannot collapse onto a zero-probability outcome");
        let bit = 1usize << q;
        let keep_set = outcome == 1;
        let scale = (1.0 / prob.sqrt()) as f32;
        for (i, a) in self.amps.iter_mut().enumerate() {
            if (i & bit != 0) == keep_set {
                *a = *a * scale;
            } else {
                *a = Complex32::ZERO;
            }
        }
    }

    /// Reset qubit `q` to |0⟩ (measure, flip on 1) — same draw discipline
    /// as [`crate::StateVector::reset`].
    pub fn reset(&mut self, q: usize, rng: &mut impl Rng) {
        if self.measure(q, rng) == 1 {
            self.apply_antidiag(q, Complex32::ONE, Complex32::ONE, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateVector;
    use qcor_circuit::{library, Circuit};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Max component-wise |f32 − f64| over all amplitudes.
    fn max_amp_err(s32: &StateVector32, s64: &StateVector) -> f64 {
        s32.amplitudes()
            .iter()
            .zip(s64.amplitudes())
            .map(|(a, b)| {
                let d = a.to_c64();
                (d.re - b.re).abs().max((d.im - b.im).abs())
            })
            .fold(0.0, f64::max)
    }

    fn replay_both(circuit: &Circuit, seed: u64) -> (StateVector32, StateVector) {
        let compiled = CompiledCircuit::compile(circuit);
        let narrowed = CompiledCircuit32::narrow(&compiled);
        let mut s32 = StateVector32::new(circuit.num_qubits());
        let mut s64 = StateVector::new(circuit.num_qubits());
        narrowed.run_once(&mut s32, &mut StdRng::seed_from_u64(seed));
        compiled.run_once(&mut s64, &mut StdRng::seed_from_u64(seed));
        (s32, s64)
    }

    #[test]
    fn bell_replay_matches_f64_to_1e_4() {
        let (s32, s64) = replay_both(&library::bell_kernel(), 0);
        assert!(max_amp_err(&s32, &s64) < 1e-4);
    }

    #[test]
    fn qft_replay_matches_f64_to_1e_4() {
        let mut c = Circuit::new(5);
        for q in 0..5 {
            c.x(q);
        }
        c.extend(&library::qft(5));
        let (s32, s64) = replay_both(&c, 0);
        assert!(max_amp_err(&s32, &s64) < 1e-4, "err={}", max_amp_err(&s32, &s64));
    }

    #[test]
    fn mixed_kernel_classes_match_f64() {
        // Exercises Dense2 (fused runs), Flip, Diag, Phase, Swap, Scale
        // (global Rz phase), and mid-circuit Measure/Reset.
        let mut c = Circuit::new(4);
        c.h(0).t(0).h(0).s(0); // Dense2 candidates on (0, ...)
        c.cx(0, 1).x(2).cz(1, 2);
        c.rz(3, 0.7).swap(1, 3);
        c.measure(0);
        c.reset(2);
        c.h(3).cphase(3, 0, 1.1);
        let (s32, s64) = replay_both(&c, 42);
        assert!(max_amp_err(&s32, &s64) < 1e-4, "err={}", max_amp_err(&s32, &s64));
    }

    #[test]
    fn measurement_draw_order_matches_f64_path() {
        // A circuit with deterministic outcomes: both precisions must
        // report the same outcome sequence for the same seed.
        let mut c = Circuit::new(3);
        c.x(0).measure(0).reset(0).measure(0).x(2).measure(2);
        let compiled = CompiledCircuit::compile(&c);
        let narrowed = CompiledCircuit32::narrow(&compiled);
        for seed in 0..20 {
            let mut s32 = StateVector32::new(3);
            let mut s64 = StateVector::new(3);
            let r32 = narrowed.run_once(&mut s32, &mut StdRng::seed_from_u64(seed));
            let r64 = compiled.run_once(&mut s64, &mut StdRng::seed_from_u64(seed));
            assert_eq!(r32, r64, "seed {seed}");
        }
    }

    #[test]
    fn fixed_seed_f32_replay_is_reproducible() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).h(2).measure_all();
        let compiled = CompiledCircuit::compile(&c);
        let narrowed = CompiledCircuit32::narrow(&compiled);
        let run = |seed| {
            let mut s = StateVector32::new(3);
            narrowed.run_once(&mut s, &mut StdRng::seed_from_u64(seed))
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn norm_is_preserved_through_collapse() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2).measure(1);
        let (s32, _) = replay_both(&c, 3);
        let total: f64 = s32.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-5, "norm {total}");
    }

    #[test]
    fn narrow_preserves_op_count() {
        let compiled = CompiledCircuit::compile(&library::ghz_kernel(5));
        let narrowed = CompiledCircuit32::narrow(&compiled);
        assert_eq!(narrowed.len(), compiled.len());
        assert!(!narrowed.is_empty());
        assert_eq!(narrowed.num_qubits(), 5);
    }
}
