//! Per-thread kernel instrumentation counters.
//!
//! The control-aware state-vector kernels enumerate only the amplitude
//! indices that satisfy their control masks, so a CX visits 2× fewer and a
//! CCX 4× fewer indices than a full scan. That claim is load-bearing for
//! the `gatefuse_guard` perf gate, so every kernel reports the exact number
//! of loop iterations it executes to a counter that the guard (and the
//! unit tests) can reset and read.
//!
//! The counter is **thread-local** and recorded once per kernel invocation
//! on the thread that *issued* the kernel (before any work-sharing), which
//! makes it race-free against concurrently running tests and free of
//! atomic contention; the cost of one `Cell` add per kernel call is
//! unmeasurable next to the amplitude loop, so the instrumentation is
//! compiled in unconditionally rather than hidden behind a feature gate.
//! To audit a multi-threaded run, read the counter on the thread that
//! drives the kernels (chunked shot plans record on whichever worker runs
//! the chunk — drive the plan through a 1-thread pool, or call
//! [`crate::run_once`] directly, when exact totals matter).

use std::cell::Cell;

thread_local! {
    static KERNEL_ITERS: Cell<u64> = const { Cell::new(0) };
}

/// Record `n` loop iterations executed by a state-vector kernel.
#[inline]
pub(crate) fn record_iterations(n: usize) {
    KERNEL_ITERS.with(|c| c.set(c.get() + n as u64));
}

/// Total loop iterations issued by state-vector update kernels from this
/// thread since the last [`reset_kernel_iterations`].
pub fn kernel_iterations() -> u64 {
    KERNEL_ITERS.with(Cell::get)
}

/// Reset this thread's kernel iteration counter to zero.
pub fn reset_kernel_iterations() {
    KERNEL_ITERS.with(|c| c.set(0));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        reset_kernel_iterations();
        record_iterations(3);
        record_iterations(4);
        assert_eq!(kernel_iterations(), 7);
        reset_kernel_iterations();
        record_iterations(1);
        assert_eq!(kernel_iterations(), 1);
    }

    #[test]
    fn counter_is_thread_local() {
        reset_kernel_iterations();
        record_iterations(5);
        let other = std::thread::spawn(kernel_iterations).join().unwrap();
        assert_eq!(other, 0, "another thread's counter must be independent");
        assert_eq!(kernel_iterations(), 5);
    }
}
