//! Per-thread kernel instrumentation counters.
//!
//! The control-aware state-vector kernels enumerate only the amplitude
//! indices that satisfy their control masks, so a CX visits 2× fewer and a
//! CCX 4× fewer indices than a full scan, and a fused two-qubit block
//! (`Dense2`) visits `2^(n-2-c)` quads instead of two full pair sweeps.
//! That claim is load-bearing for the `gatefuse_guard` perf gate, so every
//! kernel reports the exact number of loop iterations it executes — both
//! to a grand total and to a per-kernel-class bucket — so fusion
//! regressions are observable as counter shifts, not just as timing noise.
//!
//! The counters are **thread-local** and recorded once per kernel
//! invocation on the thread that *issued* the kernel (before any
//! work-sharing), which makes them race-free against concurrently running
//! tests and free of atomic contention; the cost of two `Cell` adds per
//! kernel call is unmeasurable next to the amplitude loop, so the
//! instrumentation is compiled in unconditionally rather than hidden
//! behind a feature gate. To audit a multi-threaded run, read the counters
//! on the thread that drives the kernels (chunked shot plans record on
//! whichever worker runs the chunk — drive the plan through a 1-thread
//! pool, or call [`crate::run_once`] directly, when exact totals matter).

use std::cell::Cell;

/// The kernel families the compiled executor dispatches to, in the order
/// they are reported by [`kernel_iteration_breakdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelClass {
    /// General 2×2 matrix kernel ([`crate::StateVector::apply_single`]).
    Dense,
    /// Fused 4×4 two-qubit block kernel ([`crate::StateVector::apply_pair`]).
    Dense2,
    /// Anti-diagonal 2×2 kernel (X/Y-like; swaps pair halves).
    Flip,
    /// Diagonal 2×2 kernel (no pair mixing).
    Diag,
    /// Masked phase multiply (diagonal over many qubits at once).
    Phase,
    /// Qubit transposition kernel.
    Swap,
    /// Global scalar multiply.
    Scale,
    /// General index permutation (scratch-based).
    Perm,
}

/// All kernel classes, in reporting order.
pub const KERNEL_CLASSES: [KernelClass; 8] = [
    KernelClass::Dense,
    KernelClass::Dense2,
    KernelClass::Flip,
    KernelClass::Diag,
    KernelClass::Phase,
    KernelClass::Swap,
    KernelClass::Scale,
    KernelClass::Perm,
];

impl KernelClass {
    /// Stable lowercase label, used by the bench guards' JSON output.
    pub fn label(self) -> &'static str {
        match self {
            KernelClass::Dense => "dense",
            KernelClass::Dense2 => "dense2",
            KernelClass::Flip => "flip",
            KernelClass::Diag => "diag",
            KernelClass::Phase => "phase",
            KernelClass::Swap => "swap",
            KernelClass::Scale => "scale",
            KernelClass::Perm => "perm",
        }
    }
}

thread_local! {
    static KERNEL_ITERS: Cell<u64> = const { Cell::new(0) };
    static CLASS_ITERS: [Cell<u64>; 8] = const {
        [
            Cell::new(0),
            Cell::new(0),
            Cell::new(0),
            Cell::new(0),
            Cell::new(0),
            Cell::new(0),
            Cell::new(0),
            Cell::new(0),
        ]
    };
}

/// Record `n` loop iterations executed by a state-vector kernel of `class`.
#[inline]
pub(crate) fn record_iterations(class: KernelClass, n: usize) {
    KERNEL_ITERS.with(|c| c.set(c.get() + n as u64));
    CLASS_ITERS.with(|cs| {
        let c = &cs[class as usize];
        c.set(c.get() + n as u64);
    });
}

/// Total loop iterations issued by state-vector update kernels from this
/// thread since the last [`reset_kernel_iterations`].
pub fn kernel_iterations() -> u64 {
    KERNEL_ITERS.with(Cell::get)
}

/// Loop iterations issued by kernels of one class from this thread since
/// the last [`reset_kernel_iterations`].
pub fn kernel_class_iterations(class: KernelClass) -> u64 {
    CLASS_ITERS.with(|cs| cs[class as usize].get())
}

/// Per-class iteration counts `(class, iterations)` for every kernel
/// class, in [`KERNEL_CLASSES`] order. The sum equals
/// [`kernel_iterations`].
pub fn kernel_iteration_breakdown() -> [(KernelClass, u64); 8] {
    CLASS_ITERS.with(|cs| {
        let mut out = [(KernelClass::Dense, 0u64); 8];
        for (slot, class) in out.iter_mut().zip(KERNEL_CLASSES) {
            *slot = (class, cs[class as usize].get());
        }
        out
    })
}

/// Reset this thread's kernel iteration counters (total and per-class) to
/// zero.
pub fn reset_kernel_iterations() {
    KERNEL_ITERS.with(|c| c.set(0));
    CLASS_ITERS.with(|cs| {
        for c in cs {
            c.set(0);
        }
    });
}

// Compile-cache hit/miss counters. Unlike the kernel iteration counters
// these are **process-global atomics**: compilations are rare (once per
// circuit structure, not per shot or per amplitude) so contention is nil,
// and cache lookups issued from pool worker threads must still be visible
// to the test/bench thread reading the ratio.
use std::sync::atomic::{AtomicU64, Ordering};

static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

pub(crate) fn record_cache_hit() {
    CACHE_HITS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_cache_miss() {
    CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
}

/// Process-wide compile-cache hits since the last
/// [`reset_compile_cache_stats`] — lookups that found a structurally equal
/// template and skipped lowering.
pub fn compile_cache_hits() -> u64 {
    CACHE_HITS.load(Ordering::Relaxed)
}

/// Process-wide compile-cache misses since the last
/// [`reset_compile_cache_stats`] — lookups that had to build a template.
pub fn compile_cache_misses() -> u64 {
    CACHE_MISSES.load(Ordering::Relaxed)
}

/// Zero the compile-cache hit/miss counters (they are process-global;
/// tests touching them serialize through the cache's own lock or run
/// single-threaded assertions on deltas).
pub fn reset_compile_cache_stats() {
    CACHE_HITS.store(0, Ordering::Relaxed);
    CACHE_MISSES.store(0, Ordering::Relaxed);
}

// Amplitude-shard counters. Process-global atomics like the cache
// counters: shard jobs are submitted from pool worker threads (chunked
// shot plans) as well as the driving thread, and one add per kernel sweep
// is noise next to the amplitude loop it describes.

static SHARD_JOBS: AtomicU64 = AtomicU64::new(0);
static SHARD_EXCHANGES: AtomicU64 = AtomicU64::new(0);

pub(crate) fn record_shard_jobs(n: u64) {
    SHARD_JOBS.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn record_shard_exchange() {
    SHARD_EXCHANGES.fetch_add(1, Ordering::Relaxed);
}

/// Process-wide number of amplitude-shard jobs submitted to the pool by
/// sharded kernel sweeps since the last [`reset_shard_stats`].
pub fn shard_jobs_launched() -> u64 {
    SHARD_JOBS.load(Ordering::Relaxed)
}

/// Process-wide number of sharded pair sweeps whose pair stride spanned at
/// least one shard of the raw amplitude space — the sweeps where a shard
/// job owns both halves of each pair it updates (the pairwise-exchange
/// step) instead of a purely local index range. Since the last
/// [`reset_shard_stats`].
pub fn shard_exchange_steps() -> u64 {
    SHARD_EXCHANGES.load(Ordering::Relaxed)
}

/// Zero the amplitude-shard counters. The pool-level steal counter lives
/// in `qcor_pool::batch_steal_count` and is reset separately.
pub fn reset_shard_stats() {
    SHARD_JOBS.store(0, Ordering::Relaxed);
    SHARD_EXCHANGES.store(0, Ordering::Relaxed);
}

// Shot-plan counter. One ShotPlan execution = one call into the batched
// scheduler core; process-global like the cache counters so plans issued
// from worker threads (e.g. grouped Pauli estimation inside an objective
// evaluation) are visible to the asserting thread. Backing the grouped-VQE
// "one plan per commuting group" guard in `noisy_guard`.

static SHOT_PLANS: AtomicU64 = AtomicU64::new(0);

pub(crate) fn record_shot_plan() {
    SHOT_PLANS.fetch_add(1, Ordering::Relaxed);
}

/// Process-wide number of shot plans executed by the batched scheduler
/// since the last [`reset_shot_plan_stats`] (empty plans — zero shots —
/// are not counted).
pub fn shot_plans_issued() -> u64 {
    SHOT_PLANS.load(Ordering::Relaxed)
}

/// Zero the shot-plan counter.
pub fn reset_shot_plan_stats() {
    SHOT_PLANS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        reset_kernel_iterations();
        record_iterations(KernelClass::Dense, 3);
        record_iterations(KernelClass::Flip, 4);
        assert_eq!(kernel_iterations(), 7);
        reset_kernel_iterations();
        record_iterations(KernelClass::Dense, 1);
        assert_eq!(kernel_iterations(), 1);
    }

    #[test]
    fn counter_is_thread_local() {
        reset_kernel_iterations();
        record_iterations(KernelClass::Dense2, 5);
        let other = std::thread::spawn(kernel_iterations).join().unwrap();
        assert_eq!(other, 0, "another thread's counter must be independent");
        assert_eq!(kernel_iterations(), 5);
    }

    #[test]
    fn per_class_buckets_partition_the_total() {
        reset_kernel_iterations();
        record_iterations(KernelClass::Dense, 2);
        record_iterations(KernelClass::Dense2, 8);
        record_iterations(KernelClass::Dense2, 8);
        record_iterations(KernelClass::Swap, 1);
        assert_eq!(kernel_class_iterations(KernelClass::Dense2), 16);
        assert_eq!(kernel_class_iterations(KernelClass::Swap), 1);
        assert_eq!(kernel_class_iterations(KernelClass::Phase), 0);
        let breakdown = kernel_iteration_breakdown();
        let sum: u64 = breakdown.iter().map(|&(_, n)| n).sum();
        assert_eq!(sum, kernel_iterations());
        assert_eq!(breakdown[1], (KernelClass::Dense2, 16));
    }

    #[test]
    fn labels_are_stable_and_distinct() {
        let labels: Vec<_> = KERNEL_CLASSES.iter().map(|c| c.label()).collect();
        assert_eq!(labels, ["dense", "dense2", "flip", "diag", "phase", "swap", "scale", "perm"]);
    }
}
