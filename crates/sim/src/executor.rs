//! Circuit execution: single shots, repeated sampling, and the batched
//! shot scheduler.
//!
//! The per-shot loop mirrors how QCOR's `QppAccelerator` services a kernel
//! invocation with `shots` repetitions; the measurement record format
//! matches the `AcceleratorBuffer` counts of paper Listing 2 (a map from
//! bitstring to occurrence count).
//!
//! # The batched shot scheduler
//!
//! Repeated sampling is scheduled through a [`ShotPlan`]: the `shots`
//! repetitions are partitioned into contiguous **chunks**, and each chunk
//! becomes one work item on the run's shared [`ThreadPool`]
//! (via [`ThreadPool::submit_batch`]). This replaces the original design —
//! per-shot pool dispatch inside every amplitude loop, and one OS thread
//! plus a *private* pool per shot task — whose fork/join overhead dominated
//! small kernels (a Bell kernel at 512 shots ran ~100× slower on a 2-thread
//! pool than on 1 thread).
//!
//! **Chunk sizing** ([`Granularity::Auto`]) is adaptive: the estimated cost
//! of one shot (`instruction count × 2^qubits` amplitude updates) is
//! compared against a fixed per-dispatch cost budget, and shots are grouped
//! until a chunk is expensive enough to amortize its dispatch. Small
//! kernels therefore run in a handful of chunks (or one, inline on the
//! calling thread, paying **zero** dispatch cost); large state vectors fall
//! back to a single work item whose amplitude loops are work-shared over
//! the pool (the paper's inner simulator-level parallelism), because at
//! that size per-gate work-sharing beats shot-level chunking.
//!
//! **RNG stream derivation**: every chunk seeds its own `StdRng` with
//! [`derive_stream_seed`]`(base_seed, chunk_index)`. Chunk 0 reuses the
//! base seed unchanged, so a single-chunk run is byte-identical to the
//! pre-scheduler sequential executor.
//!
//! **Determinism contract**: for a fixed `(seed, tasks, chunk_shots)` the
//! chunk partition and every chunk's RNG stream are fully determined, and
//! counts merge by commutative addition — so on chunked plans the merged
//! [`Counts`] are byte-identical across runs and across pool sizes,
//! regardless of which worker executes which chunk (chunk states simulate
//! on a private sequential pool, so no floating-point reduction order is
//! in play). Changing the partition (different `chunk_shots`, `tasks`, or
//! heuristic inputs) changes which stream each shot draws from, so counts
//! differ in detail while the sampled distribution is identical.
//!
//! The single-work-item *inner-parallel* path (large states, or
//! [`Granularity::Sequential`] with one task) historically fell outside
//! the byte-identical guarantee because its work-shared measurement
//! reductions folded partial probability sums in scheduling order. Since
//! the reductions moved onto the **ordered** reduce
//! ([`qcor_pool::ThreadPool::parallel_reduce_ordered`]) — a fixed chunk
//! partition folded in a fixed order, independent of the pool size — the
//! inner-parallel path's sums are bit-identical on any team, and the
//! byte-identical contract extends to it as well.
//!
//! # Compile-then-execute
//!
//! Each call compiles the circuit **once per plan** into a
//! [`CompiledCircuit`] (gate fusion, precomputed matrices and control
//! masks — see [`crate::compile`]) and replays the fused op list per shot;
//! per-shot instruction dispatch and matrix re-derivation are gone.
//! [`RunConfig::fusion`] / `QCOR_GATE_FUSION` select the legacy
//! interpreted executor for A/B comparison; compiled and interpreted runs
//! consume identical RNG streams (same draw count and order), so seeded
//! counts agree between them.
//!
//! # Precision
//!
//! [`RunConfig::precision`] / `QCOR_PRECISION` select the amplitude
//! precision. The default [`Precision::F64`] path is everything described
//! above. [`Precision::F32`] replays the compiled op list against a
//! single-precision [`StateVector32`] (see [`crate::fp32`]): the circuit
//! is still compiled in f64 and the fused matrices are narrowed once per
//! plan, the mode is **compiled-replay-only** (the `fusion` setting is
//! ignored — there is no f32 interpreter), and states are sequential-only
//! (shot chunks carry the parallelism). Amplitudes agree with the f64
//! path to ~1e-4; RNG draw count and order match exactly, but sampled
//! counts may differ near probability boundaries.
//!
//! # Amplitude sharding
//!
//! [`RunConfig::amp_shards`] / `QCOR_AMP_SHARDS` select **amplitude-sharded
//! kernel dispatch** (see [`StateVector::set_amp_shards`]): every kernel
//! sweep is split into exactly `s` contiguous compressed-index ranges
//! submitted to the pool as batch jobs. Because the shard boundaries are a
//! pure function of the shard count — never of the pool size — and each
//! shard job owns both halves of every amplitude pair it updates (the
//! pairwise-exchange step for high targets), sharded amplitudes are
//! bit-identical to the sequential sweep on any pool size. The default
//! [`AmpShards::Auto`] engages only on states of at least
//! `2^CACHE_BLOCK_MIN_QUBITS` amplitudes with a multi-thread pool; a fixed
//! shard count engages at any size (the property tests exploit this).
//! When sharding engages, shot-chunk states share the run's pool instead of
//! a private sequential pool, so chunk jobs can use leftover pool capacity
//! for their amplitude loops. [`Precision::F32`] states are
//! sequential-only and ignore the setting.
//!
//! # Shot-process sharding
//!
//! [`crate::shard`] partitions a run's chunk schedule across OS processes:
//! shard `s` of `p` owns exactly the chunks with `index % p == s` of the
//! **same** [`ShotPlan`], with the same derived seeds — so per-shard counts
//! merge (by addition) into counts byte-identical to a single-process run.
//! `run_shots_owned` is the executor-side entry point for one shard.
//!
//! Bitstring convention: the leftmost character is the outcome of the
//! lowest-indexed *measured* qubit.

use crate::cancel::CancelToken;
use crate::compile::CompiledCircuit;
use crate::fp32::{CompiledCircuit32, StateVector32};
use crate::gates::apply_instruction;
use crate::state::StateVector;
use qcor_circuit::{Circuit, GateKind};
use qcor_pool::ThreadPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::Arc;

/// Occurrence counts per measured bitstring, ordered for stable printing.
pub type Counts = BTreeMap<String, usize>;

/// The measurement record of a single shot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShotRecord {
    /// `(qubit, outcome)` in program order. A re-measured qubit appears
    /// multiple times; the last entry wins for the bitstring.
    pub outcomes: Vec<(usize, u8)>,
}

impl ShotRecord {
    /// Final outcome per measured qubit, sorted by qubit index, rendered as
    /// a bitstring (lowest qubit leftmost).
    pub fn bitstring(&self) -> String {
        let mut last: BTreeMap<usize, u8> = BTreeMap::new();
        for &(q, b) in &self.outcomes {
            last.insert(q, b);
        }
        last.values().map(|b| char::from(b'0' + b)).collect()
    }

    /// Interpret the outcomes of the given qubits (little-endian: first
    /// entry of `qubits` is the least significant bit) as an integer,
    /// using each qubit's final outcome. Unmeasured qubits read 0.
    pub fn value_of(&self, qubits: &[usize]) -> u64 {
        let mut last: BTreeMap<usize, u8> = BTreeMap::new();
        for &(q, b) in &self.outcomes {
            last.insert(q, b);
        }
        let mut v = 0u64;
        for (pos, q) in qubits.iter().enumerate() {
            if last.get(q).copied().unwrap_or(0) == 1 {
                v |= 1 << pos;
            }
        }
        v
    }
}

/// Run `circuit` once against `state`, recording measurement outcomes.
///
/// Honors the process-wide fusion default (`QCOR_GATE_FUSION`): by default
/// the circuit is compiled (gate fusion + kernel classification, see
/// [`CompiledCircuit`]) and replayed; with fusion disabled this is
/// [`run_once_interpreted`]. Callers running the same circuit repeatedly
/// should compile once and call [`CompiledCircuit::run_once`] per shot —
/// that is what the shot scheduler does.
pub fn run_once(state: &mut StateVector, circuit: &Circuit, rng: &mut impl Rng) -> ShotRecord {
    if fusion_env_default() {
        compile_with_env_cache(circuit).run_once(state, rng)
    } else {
        run_once_interpreted(state, circuit, rng)
    }
}

/// Compile honoring the process-wide compile-cache default
/// (`QCOR_COMPILE_CACHE`, enabled unless set off) — the path for callers
/// without a [`RunConfig`] such as [`run_once`] and [`exact_distribution`].
/// `run_once` in particular sits in per-shot hot loops (semiclassical QPE
/// re-invokes a freshly built circuit per shot), exactly the sweep shape
/// the structural cache accelerates.
fn compile_with_env_cache(circuit: &Circuit) -> CompiledCircuit {
    if crate::cache::compile_cache_env_default() {
        crate::cache::compile_cached(circuit)
    } else {
        CompiledCircuit::compile(circuit)
    }
}

/// Run `circuit` once by interpreting each instruction in turn — the
/// pre-compilation executor, kept selectable (`QCOR_GATE_FUSION=0`,
/// [`RunConfig::fusion`]) as the A/B baseline the `gatefuse_guard` CI gate
/// and the fused-vs-unfused equivalence tests compare against.
pub fn run_once_interpreted(state: &mut StateVector, circuit: &Circuit, rng: &mut impl Rng) -> ShotRecord {
    assert!(
        circuit.num_qubits() <= state.num_qubits(),
        "circuit needs {} qubits but the state has {}",
        circuit.num_qubits(),
        state.num_qubits()
    );
    let mut record = ShotRecord::default();
    for inst in circuit.instructions() {
        if let Some(bit) = apply_instruction(state, inst, rng) {
            record.outcomes.push((inst.qubits[0], bit));
        }
    }
    record
}

/// Resolve the process-wide gate-fusion default from `QCOR_GATE_FUSION`.
/// Unset means **enabled**; `0`/`false`/`off` disable, `1`/`true`/`on`
/// enable, anything else panics loudly (misconfiguration should never
/// silently change which executor benchmarks measure).
///
/// The variable is read and parsed **once** per process: `run_once` sits
/// in per-shot hot loops (Shor's semiclassical QPE, QAOA sampling), and a
/// mid-process env change flipping the executor would break the
/// documented process-wide-default semantics anyway.
pub fn fusion_env_default() -> bool {
    static DEFAULT: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("QCOR_GATE_FUSION") {
        Err(_) => true,
        Ok(v) => parse_fusion_token(&v).unwrap_or_else(|| {
            panic!("invalid QCOR_GATE_FUSION value {v:?}: expected 0/1/true/false/on/off")
        }),
    })
}

/// Parse one gate-fusion token — the single vocabulary shared by the
/// `QCOR_GATE_FUSION` environment variable and the qpp backend's string
/// `fusion` param, so the two can never drift apart. `None` = unrecognized.
pub fn parse_fusion_token(s: &str) -> Option<bool> {
    match s.trim().to_ascii_lowercase().as_str() {
        "" | "1" | "true" | "on" => Some(true),
        "0" | "false" | "off" => Some(false),
        _ => None,
    }
}

/// Amplitude precision of the state vectors a run simulates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Double precision (`Complex64` amplitudes) — the full executor:
    /// compiled or interpreted, pool work-sharing, cache-blocked replay.
    #[default]
    F64,
    /// Single precision (`Complex32` amplitudes, [`crate::fp32`]):
    /// compiled-replay-only and sequential per state; halves the bytes per
    /// amplitude. Amplitudes match the f64 path to ~1e-4.
    F32,
}

/// Resolve the process-wide precision default from `QCOR_PRECISION`.
/// Unset means **f64**; recognized tokens are those of
/// [`parse_precision_token`]; anything else panics loudly
/// (misconfiguration should never silently change what benchmarks
/// measure). Read and parsed once per process, like
/// [`fusion_env_default`].
pub fn precision_env_default() -> Precision {
    static DEFAULT: std::sync::OnceLock<Precision> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("QCOR_PRECISION") {
        Err(_) => Precision::F64,
        Ok(v) => parse_precision_token(&v).unwrap_or_else(|| {
            panic!("invalid QCOR_PRECISION value {v:?}: expected f32/f64/single/double/32/64")
        }),
    })
}

/// Parse one precision token — the single vocabulary shared by the
/// `QCOR_PRECISION` environment variable and the qpp backend's string
/// `precision` param, so the two can never drift apart (the same
/// discipline as [`parse_fusion_token`]). `None` = unrecognized.
pub fn parse_precision_token(s: &str) -> Option<Precision> {
    match s.trim().to_ascii_lowercase().as_str() {
        "" | "f64" | "double" | "64" => Some(Precision::F64),
        "f32" | "single" | "32" => Some(Precision::F32),
        _ => None,
    }
}

/// Amplitude-sharded kernel dispatch policy (see the
/// [module docs](self) and [`StateVector::set_amp_shards`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AmpShards {
    /// Shard into one job per pool thread, but only on states of at least
    /// `2^CACHE_BLOCK_MIN_QUBITS` amplitudes with a multi-thread pool —
    /// below that the classic `parallel_for` dispatch (or a sequential
    /// sweep) costs less than the batch bookkeeping.
    #[default]
    Auto,
    /// Never shard: the classic dispatch only.
    Off,
    /// Always split every sweep into exactly `n` shard jobs, regardless of
    /// state size or pool width (`n < 2` degenerates to [`AmpShards::Off`]).
    /// Used by the property tests to exercise the sharded kernels on small
    /// states, and to pin a shard count independent of the pool.
    Fixed(usize),
}

impl AmpShards {
    /// Resolve the number of shard jobs per kernel sweep for a state of
    /// `amps` amplitudes on a pool of `pool_threads` threads.
    /// `None` = sharding off (classic dispatch).
    pub fn shard_count(self, amps: usize, pool_threads: usize) -> Option<usize> {
        match self {
            AmpShards::Off => None,
            AmpShards::Fixed(n) => (n >= 2).then_some(n),
            AmpShards::Auto => (pool_threads > 1
                && amps >= (1usize << crate::compile::CACHE_BLOCK_MIN_QUBITS))
                .then_some(pool_threads),
        }
    }
}

/// Resolve the process-wide amplitude-sharding default from
/// `QCOR_AMP_SHARDS`. Unset means [`AmpShards::Auto`]; recognized tokens
/// are those of [`parse_amp_shards_token`]; anything else panics loudly
/// (misconfiguration should never silently change what benchmarks
/// measure). Read and parsed once per process, like
/// [`fusion_env_default`].
pub fn amp_shards_env_default() -> AmpShards {
    static DEFAULT: std::sync::OnceLock<AmpShards> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("QCOR_AMP_SHARDS") {
        Err(_) => AmpShards::Auto,
        Ok(v) => parse_amp_shards_token(&v).unwrap_or_else(|| {
            panic!("invalid QCOR_AMP_SHARDS value {v:?}: expected auto/off/<shard count>")
        }),
    })
}

/// Parse one amplitude-sharding token — the single vocabulary shared by
/// the `QCOR_AMP_SHARDS` environment variable and the qpp backend's string
/// `amp-shards` param, so the two can never drift apart (the same
/// discipline as [`parse_fusion_token`]). `None` = unrecognized.
pub fn parse_amp_shards_token(s: &str) -> Option<AmpShards> {
    let t = s.trim().to_ascii_lowercase();
    match t.as_str() {
        "" | "auto" | "on" | "true" => Some(AmpShards::Auto),
        "off" | "false" | "0" => Some(AmpShards::Off),
        _ => t.parse::<usize>().ok().map(AmpShards::Fixed),
    }
}

/// Chunk-sizing policy of the batched shot scheduler (see the
/// [module docs](self) for the full description).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Granularity {
    /// Adaptive: group shots until one chunk's estimated simulation cost
    /// (`instructions × 2^qubits` amplitude updates per shot) amortizes a
    /// pool dispatch; large states use a single inner-parallel work item.
    #[default]
    Auto,
    /// Opt out of adaptive chunking. In a single-task run all shots run
    /// sequentially on the calling thread with amplitude loops work-shared
    /// over the pool — the pre-scheduler behavior, kept for A/B
    /// benchmarking. When task-level parallelism is requested explicitly
    /// ([`run_shots_task_parallel`] / [`ShotPlan::for_tasks`] with
    /// `tasks > 1`), the task split still applies: the run becomes exactly
    /// one chunk per task (the legacy task-parallel shape), each with its
    /// own derived RNG stream.
    Sequential,
}

/// Configuration for repeated sampling.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Number of repetitions.
    pub shots: usize,
    /// RNG seed (`None` = entropy from the OS).
    pub seed: Option<u64>,
    /// Minimum loop length before kernels use the pool (see
    /// [`StateVector::set_par_threshold`]).
    pub par_threshold: usize,
    /// Explicit shots-per-chunk override (`None` = derive the chunk size
    /// from `granularity`). Part of the determinism tuple: fixed
    /// `(seed, tasks, chunk_shots)` reproduces merged counts exactly.
    pub chunk_shots: Option<usize>,
    /// Chunk-sizing policy used when `chunk_shots` is `None`.
    pub granularity: Granularity,
    /// Gate fusion: compile the circuit once per [`ShotPlan`] (fused kernel
    /// ops, precomputed matrices/masks — see [`CompiledCircuit`]) and
    /// replay it per shot, instead of re-interpreting every instruction.
    /// `None` defers to the `QCOR_GATE_FUSION` environment default
    /// (enabled); `Some(false)` forces the interpreted executor for A/B
    /// comparison. Ignored under [`Precision::F32`], which is
    /// compiled-replay-only.
    pub fusion: Option<bool>,
    /// Amplitude precision. `None` defers to the `QCOR_PRECISION`
    /// environment default (f64); `Some(Precision::F32)` selects the
    /// single-precision compiled replay (see [`crate::fp32`]).
    pub precision: Option<Precision>,
    /// Structural compile cache: look the circuit's structure up in the
    /// process-wide template cache and only re-bind angles on a hit (see
    /// [`crate::cache`]). `None` defers to the `QCOR_COMPILE_CACHE`
    /// environment default (enabled); `Some(false)` forces a cold compile
    /// per plan. Irrelevant when the interpreted executor runs (fusion
    /// off, f64).
    pub compile_cache: Option<bool>,
    /// Amplitude-sharded kernel dispatch (see [`AmpShards`] and the
    /// [module docs](self)). `None` defers to the `QCOR_AMP_SHARDS`
    /// environment default ([`AmpShards::Auto`]). Ignored under
    /// [`Precision::F32`], whose states are sequential-only.
    pub amp_shards: Option<AmpShards>,
}

impl RunConfig {
    /// Resolve the effective fusion setting ([`RunConfig::fusion`], falling
    /// back to [`fusion_env_default`]).
    pub fn fusion_enabled(&self) -> bool {
        self.fusion.unwrap_or_else(fusion_env_default)
    }

    /// Resolve the effective precision ([`RunConfig::precision`], falling
    /// back to [`precision_env_default`]).
    pub fn precision_resolved(&self) -> Precision {
        self.precision.unwrap_or_else(precision_env_default)
    }

    /// Resolve the effective compile-cache setting
    /// ([`RunConfig::compile_cache`], falling back to
    /// [`crate::cache::compile_cache_env_default`]).
    pub fn compile_cache_enabled(&self) -> bool {
        self.compile_cache.unwrap_or_else(crate::cache::compile_cache_env_default)
    }

    /// Resolve the effective amplitude-sharding policy
    /// ([`RunConfig::amp_shards`], falling back to
    /// [`amp_shards_env_default`]).
    pub fn amp_shards_resolved(&self) -> AmpShards {
        self.amp_shards.unwrap_or_else(amp_shards_env_default)
    }

    /// Compile honoring the resolved compile-cache setting.
    fn compile(&self, circuit: &Circuit) -> CompiledCircuit {
        if self.compile_cache_enabled() {
            crate::cache::compile_cached(circuit)
        } else {
            CompiledCircuit::compile(circuit)
        }
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            shots: 1024,
            seed: None,
            par_threshold: 2,
            chunk_shots: None,
            granularity: Granularity::Auto,
            fusion: None,
            precision: None,
            compile_cache: None,
            amp_shards: None,
        }
    }
}

/// Derive the RNG seed of chunk `index` from a run's base seed.
///
/// Chunk 0 reuses the base seed unchanged (a single-chunk run is
/// byte-identical to the pre-scheduler sequential executor); later chunks
/// are offset by multiples of the 64-bit golden ratio so `StdRng`'s
/// SplitMix64 seed expansion decorrelates their streams.
pub fn derive_stream_seed(base: u64, index: usize) -> u64 {
    base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64))
}

/// Estimated cost budget (in amplitude updates) one chunk should reach to
/// amortize the pool message + worker wakeup that dispatching it costs.
/// A dispatch is ~1–10 µs; an amplitude update a few ns, so 2^18 updates
/// keep dispatch overhead well under 1% of chunk runtime.
const TARGET_CHUNK_AMP_OPS: u64 = 1 << 18;

/// States with at least this many amplitudes stop being shot-chunked: a
/// single gate's loop is then long enough that work-sharing the amplitude
/// loops over the pool (the paper's inner simulator level) beats running
/// whole shots on different workers.
const INNER_PAR_MIN_AMPS: u64 = 1 << 14;

/// Estimated simulation cost of one shot, in amplitude updates.
fn shot_cost(circuit: &Circuit) -> u64 {
    (circuit.len().max(1) as u64).saturating_mul(1u64 << circuit.num_qubits())
}

/// A partition of `shots` repetitions into contiguous chunks, plus the
/// decision whether amplitude loops work-share over the run's pool.
///
/// The plan is a pure function of `(circuit, config, tasks)` — never of the
/// pool size — which is what makes seeded counts invariant under the pool
/// actually used to execute it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShotPlan {
    shots: usize,
    chunk_shots: usize,
    inner_parallel: bool,
}

impl ShotPlan {
    /// Plan a single-task run (see [`ShotPlan::for_tasks`]).
    pub fn for_circuit(circuit: &Circuit, config: &RunConfig) -> ShotPlan {
        Self::for_tasks(circuit, config, 1)
    }

    /// Plan a run that should expose at least `tasks`-way shot-level
    /// parallelism: the chunk size is capped at `ceil(shots / tasks)`.
    ///
    /// `tasks` is clamped to `shots` first, so over-subscribed requests
    /// (`tasks > shots`) never produce empty chunks.
    pub fn for_tasks(circuit: &Circuit, config: &RunConfig, tasks: usize) -> ShotPlan {
        let shots = config.shots;
        let tasks = tasks.max(1).min(shots.max(1));
        let per_task = shots.div_ceil(tasks).max(1);
        let amps = 1u64 << circuit.num_qubits();
        let requested = match (config.chunk_shots, config.granularity) {
            (Some(k), _) => k.max(1),
            (None, Granularity::Sequential) => shots.max(1),
            (None, Granularity::Auto) => {
                if amps >= INNER_PAR_MIN_AMPS {
                    // One work item per task; amplitude loops carry the
                    // parallelism when the whole run stays on the caller.
                    shots.max(1)
                } else {
                    (TARGET_CHUNK_AMP_OPS / shot_cost(circuit)).max(1) as usize
                }
            }
        };
        let chunk_shots = requested.min(per_task).max(1);
        // Work-sharing amplitude loops only pays off when the whole run is
        // one work item on the calling thread; chunk jobs executing on pool
        // workers run their loops inline anyway (nested parallelism).
        let inner_parallel = config.chunk_shots.is_none()
            && chunk_shots >= shots.max(1)
            && (config.granularity == Granularity::Sequential || amps >= INNER_PAR_MIN_AMPS);
        ShotPlan { shots, chunk_shots, inner_parallel }
    }

    /// A plan with an explicit chunk size and no inner parallelism —
    /// the partition used by the property tests.
    pub fn with_chunk_shots(shots: usize, chunk_shots: usize) -> ShotPlan {
        ShotPlan { shots, chunk_shots: chunk_shots.max(1), inner_parallel: false }
    }

    /// Total shots covered by the plan.
    pub fn shots(&self) -> usize {
        self.shots
    }

    /// Shots per chunk (the final chunk may be shorter).
    pub fn chunk_shots(&self) -> usize {
        self.chunk_shots
    }

    /// Number of chunks in the partition. Zero shots → zero chunks: an
    /// over-subscribed or empty request never creates empty work items.
    pub fn num_chunks(&self) -> usize {
        self.shots.div_ceil(self.chunk_shots)
    }

    /// Whether the plan runs as one work item with amplitude loops
    /// work-shared over the pool (the paper's inner simulator level).
    pub fn inner_parallel(&self) -> bool {
        self.inner_parallel
    }

    /// The contiguous shot ranges of the partition, in order. Together the
    /// ranges cover `0..shots` exactly once and none is empty.
    pub fn chunks(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        let (shots, chunk) = (self.shots, self.chunk_shots);
        (0..shots).step_by(chunk).map(move |lo| lo..(lo + chunk).min(shots))
    }
}

/// The executor a shot plan replays per shot: the circuit compiled once
/// into fused kernel ops (f64 or narrowed-to-f32), the interpreted
/// per-instruction dispatcher (fusion off, f64 only), or the noisy
/// trajectory sampler (noise channels lowered once via
/// [`crate::noise::compile_noisy`], Kraus branches drawn per shot; always
/// compiled f64 — fusion/precision knobs do not apply).
enum ShotExec<'c> {
    Compiled(CompiledCircuit),
    CompiledF32(CompiledCircuit32),
    Interpreted(&'c Circuit),
    Trajectory { plan: crate::noise::NoisyCompiled, readout: f64 },
}

/// The per-chunk simulation state matching a [`ShotExec`]'s precision.
enum ChunkState {
    F64(StateVector),
    F32(StateVector32),
}

impl ChunkState {
    fn reset_to_zero(&mut self) {
        match self {
            ChunkState::F64(s) => s.reset_to_zero(),
            ChunkState::F32(s) => s.reset_to_zero(),
        }
    }
}

impl ShotExec<'_> {
    fn for_config<'c>(circuit: &'c Circuit, config: &RunConfig) -> ShotExec<'c> {
        match config.precision_resolved() {
            // f32 is compiled-replay-only: there is no f32 interpreter, so
            // the fusion setting does not apply.
            Precision::F32 => ShotExec::CompiledF32(CompiledCircuit32::narrow(&config.compile(circuit))),
            Precision::F64 if config.fusion_enabled() => ShotExec::Compiled(config.compile(circuit)),
            Precision::F64 => ShotExec::Interpreted(circuit),
        }
    }

    /// Allocate a chunk's private state of the matching precision.
    /// `pool` work-shares f64 amplitude loops; `amp_shards` turns on
    /// amplitude-sharded dispatch ([`StateVector::set_amp_shards`]). f32
    /// states are sequential-only, so neither applies there.
    fn make_state(
        &self,
        num_qubits: usize,
        pool: Option<Arc<ThreadPool>>,
        par_threshold: usize,
        amp_shards: Option<usize>,
    ) -> ChunkState {
        match self {
            ShotExec::CompiledF32(_) => ChunkState::F32(StateVector32::new(num_qubits)),
            _ => {
                let mut state = match pool {
                    Some(pool) => StateVector::with_pool(num_qubits, pool),
                    None => StateVector::new(num_qubits),
                };
                state.set_par_threshold(par_threshold);
                state.set_amp_shards(amp_shards);
                ChunkState::F64(state)
            }
        }
    }

    fn run_once(&self, state: &mut ChunkState, rng: &mut impl Rng) -> ShotRecord {
        match (self, state) {
            (ShotExec::Compiled(compiled), ChunkState::F64(s)) => compiled.run_once(s, rng),
            (ShotExec::Interpreted(circuit), ChunkState::F64(s)) => run_once_interpreted(s, circuit, rng),
            (ShotExec::CompiledF32(compiled), ChunkState::F32(s)) => compiled.run_once(s, rng),
            (ShotExec::Trajectory { plan, readout }, ChunkState::F64(s)) => {
                crate::noise::run_trajectory_once(plan, *readout, s, rng)
            }
            _ => unreachable!("chunk state precision always matches its executor"),
        }
    }
}

/// Run `shots` repetitions of `exec` against `state`, drawing from `rng`,
/// accumulating bitstring counts into `counts`.
fn sample_into(
    state: &mut ChunkState,
    exec: &ShotExec<'_>,
    rng: &mut StdRng,
    shots: usize,
    counts: &mut Counts,
) {
    for shot in 0..shots {
        if shot > 0 {
            state.reset_to_zero();
        }
        let record = exec.run_once(state, rng);
        *counts.entry(record.bitstring()).or_insert(0) += 1;
    }
}

/// Execute `circuit` for `config.shots` repetitions through the batched
/// shot scheduler (see the [module docs](self)) and accumulate the counts
/// of the measured bitstrings.
///
/// The [`ShotPlan`] partitions the shots into chunks, each chunk runs as
/// one work item on `pool` with its own derived RNG stream and a private
/// sequential state vector, and the per-chunk counts are merged. Plans
/// that resolve to a single chunk (small kernels) run inline on the
/// calling thread with zero dispatch cost; large states run as a single
/// work item whose amplitude loops are work-shared over `pool`.
///
/// Re-running the full circuit per shot (rather than sampling a final
/// distribution) keeps the workload faithful to the paper's evaluation,
/// where per-kernel simulation work × shots is what the simulator threads
/// parallelize, and is required anyway once circuits contain mid-circuit
/// measurement or reset.
pub fn run_shots(circuit: &Circuit, pool: Arc<ThreadPool>, config: &RunConfig) -> Counts {
    let plan = ShotPlan::for_circuit(circuit, config);
    run_shots_planned(circuit, pool, config, &plan)
}

/// Execute an explicit [`ShotPlan`] (the scheduler core behind
/// [`run_shots`] and [`run_shots_task_parallel`]).
///
/// Honors the calling thread's cooperative [`CancelToken`]
/// ([`crate::cancel::thread_cancel_token`], installed by execution layers
/// such as the `qcor-core` execution service around task bodies): chunk
/// jobs check the token at their start, so a cancelled sweep stops at the
/// next chunk boundary and returns only the completed chunks' merged
/// counts. Use [`run_shots_cancellable`] to pass a token explicitly and
/// observe how far the sweep got.
pub fn run_shots_planned(
    circuit: &Circuit,
    pool: Arc<ThreadPool>,
    config: &RunConfig,
    plan: &ShotPlan,
) -> Counts {
    let token = crate::cancel::thread_cancel_token();
    run_shots_with_token(circuit, pool, config, plan, token.as_ref()).counts
}

/// The outcome of a cancellable sweep: the merged counts of every chunk
/// that ran, plus how far the plan got. Chunks sample independent derived
/// RNG streams ([`derive_stream_seed`]), so `counts` is bit-identical to
/// the first `completed_chunks` chunks of an uncancelled run with the same
/// `(seed, tasks, chunk_shots)` — cancellation truncates, never corrupts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShotRun {
    /// Merged counts of the completed chunks.
    pub counts: Counts,
    /// How many chunk jobs ran to completion.
    pub completed_chunks: usize,
    /// How many chunk jobs the plan resolved to.
    pub total_chunks: usize,
    /// Whether any chunk job was skipped because the token was cancelled
    /// (`completed_chunks < total_chunks`).
    pub cancelled: bool,
}

/// [`run_shots_planned`] with an explicit [`CancelToken`]: the sweep stops
/// at the first chunk boundary after `token.cancel()` and reports the
/// completed prefix.
pub fn run_shots_cancellable(
    circuit: &Circuit,
    pool: Arc<ThreadPool>,
    config: &RunConfig,
    plan: &ShotPlan,
    token: &CancelToken,
) -> ShotRun {
    run_shots_with_token(circuit, pool, config, plan, Some(token))
}

/// Execute one process shard of a plan: only the chunks with
/// `index % procs == shard` run, on the **same** chunk partition and
/// derived seeds as the full plan — so summing the counts of all `procs`
/// shards reproduces a single-process run byte-for-byte (see
/// [`crate::shard`]). Inner-parallel plans are forced onto the chunk path
/// so every shard sees the same chunk indexing; chunk 0 keeps the base
/// seed and amplitudes are pool-size-invariant, so the counts still match.
pub(crate) fn run_shots_owned(
    circuit: &Circuit,
    pool: Arc<ThreadPool>,
    config: &RunConfig,
    plan: &ShotPlan,
    shard: usize,
    procs: usize,
) -> Counts {
    assert!(procs >= 1 && shard < procs, "shard {shard} out of range for {procs} procs");
    run_shots_core(circuit, pool, config, plan, None, Some((shard, procs)), None).counts
}

fn run_shots_with_token(
    circuit: &Circuit,
    pool: Arc<ThreadPool>,
    config: &RunConfig,
    plan: &ShotPlan,
    token: Option<&CancelToken>,
) -> ShotRun {
    run_shots_core(circuit, pool, config, plan, token, None, None)
}

/// Execute `circuit` under `noise` as trajectory sampling on the batched
/// shot scheduler: channels are lowered once ([`crate::noise::compile_noisy`],
/// through the compile cache when enabled) and every shot replays the
/// compiled plan, drawing its Kraus branches, measurement outcomes, and
/// readout flips (per-bit flip probability `readout`) from its chunk's
/// derived RNG stream. Inherits the scheduler's determinism contract: for
/// a fixed `(seed, tasks, chunk_shots)` the merged counts are
/// byte-identical on any pool size.
pub fn run_noisy_shots(
    circuit: &Circuit,
    noise: &crate::density::NoiseModel,
    readout: f64,
    pool: Arc<ThreadPool>,
    config: &RunConfig,
) -> Counts {
    let plan = ShotPlan::for_circuit(circuit, config);
    run_noisy_shots_planned(circuit, noise, readout, pool, config, &plan)
}

/// [`run_noisy_shots`] with an explicit [`ShotPlan`]. Honors the calling
/// thread's cooperative [`CancelToken`] like [`run_shots_planned`].
pub fn run_noisy_shots_planned(
    circuit: &Circuit,
    noise: &crate::density::NoiseModel,
    readout: f64,
    pool: Arc<ThreadPool>,
    config: &RunConfig,
    plan: &ShotPlan,
) -> Counts {
    let token = crate::cancel::thread_cancel_token();
    run_shots_core(circuit, pool, config, plan, token.as_ref(), None, Some((noise, readout))).counts
}

fn run_shots_core(
    circuit: &Circuit,
    pool: Arc<ThreadPool>,
    config: &RunConfig,
    plan: &ShotPlan,
    token: Option<&CancelToken>,
    owner: Option<(usize, usize)>,
    noisy: Option<(&crate::density::NoiseModel, f64)>,
) -> ShotRun {
    let mut merged = Counts::new();
    if plan.shots() == 0 {
        return ShotRun { counts: merged, completed_chunks: 0, total_chunks: 0, cancelled: false };
    }
    crate::stats::record_shot_plan();
    let base_seed = match config.seed {
        Some(s) => s,
        None => StdRng::from_entropy().gen(),
    };
    let amps = 1usize << circuit.num_qubits();
    let shards = config.amp_shards_resolved().shard_count(amps, pool.num_threads());
    // Compile once per plan; every chunk replays the same fused op list.
    let exec = match noisy {
        Some((noise, readout)) => ShotExec::Trajectory {
            plan: crate::noise::compile_noisy(circuit, noise, config.compile_cache_enabled()),
            readout,
        },
        None => ShotExec::for_config(circuit, config),
    };
    if plan.inner_parallel() && owner.is_none() {
        // Single work item: the only checkpoint is before it starts.
        if token.is_some_and(CancelToken::is_cancelled) {
            return ShotRun { counts: merged, completed_chunks: 0, total_chunks: 1, cancelled: true };
        }
        let mut state = exec.make_state(circuit.num_qubits(), Some(pool), config.par_threshold, shards);
        let mut rng = StdRng::seed_from_u64(base_seed);
        sample_into(&mut state, &exec, &mut rng, plan.shots(), &mut merged);
        return ShotRun { counts: merged, completed_chunks: 1, total_chunks: 1, cancelled: false };
    }
    let par_threshold = config.par_threshold;
    // Sharded runs hand each chunk the shared pool so its amplitude loops
    // can use leftover pool capacity through the sharded batch dispatch;
    // unsharded chunks keep their classic private sequential states.
    let chunk_pool = shards.map(|_| Arc::clone(&pool));
    let exec = &exec;
    let jobs: Vec<_> = plan
        .chunks()
        .enumerate()
        .filter(|(index, _)| owner.is_none_or(|(shard, procs)| index % procs == shard))
        .map(|(index, span)| {
            let seed = derive_stream_seed(base_seed, index);
            let token = token.cloned();
            let chunk_pool = chunk_pool.clone();
            move || {
                // Cooperative cancellation checkpoint: a cancelled sweep
                // skips every chunk that has not started yet.
                if token.is_some_and(|t| t.is_cancelled()) {
                    return None;
                }
                let mut state = exec.make_state(circuit.num_qubits(), chunk_pool, par_threshold, shards);
                let mut rng = StdRng::seed_from_u64(seed);
                let mut counts = Counts::new();
                sample_into(&mut state, exec, &mut rng, span.len(), &mut counts);
                Some(counts)
            }
        })
        .collect();
    let total_chunks = jobs.len();
    let mut completed_chunks = 0usize;
    for partial in pool.submit_batch(jobs).into_iter().flatten() {
        completed_chunks += 1;
        for (bits, count) in partial {
            *merged.entry(bits).or_insert(0) += count;
        }
    }
    ShotRun { counts: merged, completed_chunks, total_chunks, cancelled: completed_chunks < total_chunks }
}

/// Shot-level parallelism (paper §II): expose at least `tasks`-way
/// parallelism over `config.shots` repetitions on **one shared pool** of
/// `tasks × threads_per_task` threads, and merge the counts.
///
/// Unlike the original design (one OS thread plus a private pool per
/// task), tasks are chunks of a [`ShotPlan`] executed as work items on the
/// shared pool — over-subscribed requests (`tasks > shots`) are clamped so
/// no empty task ever allocates a state vector, and each chunk derives its
/// RNG stream from `config.seed` and its chunk index, so merged counts are
/// byte-identical across runs for a fixed `(seed, tasks, chunk_shots)`.
/// For a fixed seed the merged counts differ from the single-task sequence
/// (shots are partitioned differently), while the underlying distribution
/// is identical.
///
/// `threads_per_task` sizes the shared pool; extra threads let more chunks
/// run concurrently (a chunk's own amplitude loops run inline on its
/// worker).
pub fn run_shots_task_parallel(
    circuit: &Circuit,
    tasks: usize,
    threads_per_task: usize,
    config: &RunConfig,
) -> Counts {
    assert!(tasks >= 1);
    let effective_tasks = tasks.min(config.shots).max(1);
    let team = effective_tasks.saturating_mul(threads_per_task.max(1));
    let pool = Arc::new(ThreadPool::new(team));
    let plan = ShotPlan::for_tasks(circuit, config, tasks);
    run_shots_planned(circuit, pool, config, &plan)
}

/// Exact output distribution of a measurement-free prefix: strips terminal
/// measurements, evolves once (compiled when the process-wide fusion
/// default is on), and returns the probability of each basis state. Errors
/// if a non-terminal measurement or reset is present.
pub fn exact_distribution(circuit: &Circuit, pool: Arc<ThreadPool>) -> Result<Vec<f64>, String> {
    let mut prefix = Circuit::new(circuit.num_qubits());
    let mut seen_measure = false;
    for inst in circuit.instructions() {
        match inst.gate {
            GateKind::Measure => seen_measure = true,
            GateKind::Barrier => {}
            GateKind::Reset => return Err("exact_distribution cannot handle reset".to_string()),
            _ if seen_measure => {
                return Err("exact_distribution requires measurements to be terminal".to_string())
            }
            _ => {
                prefix.push(inst.clone());
            }
        }
    }
    let mut state = StateVector::with_pool(circuit.num_qubits(), pool);
    let mut rng = StdRng::seed_from_u64(0);
    if fusion_env_default() {
        compile_with_env_cache(&prefix).run_once(&mut state, &mut rng);
    } else {
        run_once_interpreted(&mut state, &prefix, &mut rng);
    }
    Ok(state.probabilities())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcor_circuit::library;

    fn seq_pool() -> Arc<ThreadPool> {
        Arc::new(ThreadPool::new(1))
    }

    #[test]
    fn bell_counts_only_00_and_11() {
        let circuit = library::bell_kernel();
        let config = RunConfig { shots: 1024, seed: Some(1), ..Default::default() };
        let counts = run_shots(&circuit, seq_pool(), &config);
        let total: usize = counts.values().sum();
        assert_eq!(total, 1024);
        assert!(counts.keys().all(|k| k == "00" || k == "11"), "{counts:?}");
        // Both outcomes should appear with roughly equal frequency.
        let c00 = counts.get("00").copied().unwrap_or(0) as f64;
        assert!((c00 / 1024.0 - 0.5).abs() < 0.1, "{counts:?}");
    }

    #[test]
    fn ghz_counts_are_all_zero_or_all_one() {
        let circuit = library::ghz_kernel(4);
        let config = RunConfig { shots: 256, seed: Some(2), ..Default::default() };
        let counts = run_shots(&circuit, seq_pool(), &config);
        assert!(counts.keys().all(|k| k == "0000" || k == "1111"), "{counts:?}");
    }

    #[test]
    fn deterministic_with_fixed_seed() {
        let circuit = library::bell_kernel();
        let config = RunConfig { shots: 128, seed: Some(7), ..Default::default() };
        let a = run_shots(&circuit, seq_pool(), &config);
        let b = run_shots(&circuit, seq_pool(), &config);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_pool_preserves_distribution() {
        let circuit = library::bell_kernel();
        let pool = Arc::new(ThreadPool::new(4));
        let config = RunConfig { shots: 512, seed: Some(3), ..Default::default() };
        let counts = run_shots(&circuit, pool, &config);
        assert!(counts.keys().all(|k| k == "00" || k == "11"), "{counts:?}");
        assert_eq!(counts.values().sum::<usize>(), 512);
    }

    #[test]
    fn exact_distribution_of_bell() {
        let circuit = library::bell_kernel();
        let p = exact_distribution(&circuit, seq_pool()).unwrap();
        assert!((p[0b00] - 0.5).abs() < 1e-12);
        assert!((p[0b11] - 0.5).abs() < 1e-12);
        assert!(p[0b01].abs() < 1e-12);
        assert!(p[0b10].abs() < 1e-12);
    }

    #[test]
    fn exact_distribution_rejects_mid_circuit_measurement() {
        let mut c = Circuit::new(1);
        c.measure(0).h(0);
        assert!(exact_distribution(&c, seq_pool()).is_err());
    }

    #[test]
    fn shot_record_value_of_is_little_endian() {
        let rec = ShotRecord { outcomes: vec![(0, 1), (1, 0), (2, 1)] };
        assert_eq!(rec.value_of(&[0, 1, 2]), 0b101);
        assert_eq!(rec.value_of(&[2, 1, 0]), 0b101u64.reverse_bits() >> 61);
        assert_eq!(rec.bitstring(), "101");
    }

    #[test]
    fn remeasured_qubit_uses_last_outcome() {
        // X then measure gives 1; reset-like X·X then measure gives 0 —
        // simulate by measuring twice around an X.
        let mut c = Circuit::new(1);
        c.x(0).measure(0).x(0).measure(0);
        let mut state = StateVector::new(1);
        let mut rng = StdRng::seed_from_u64(0);
        let rec = run_once(&mut state, &c, &mut rng);
        assert_eq!(rec.outcomes, vec![(0, 1), (0, 0)]);
        assert_eq!(rec.bitstring(), "0");
    }

    #[test]
    fn shot_parallel_conserves_total_and_distribution() {
        let circuit = library::bell_kernel();
        let config = RunConfig { shots: 1000, seed: Some(5), ..Default::default() };
        for tasks in [1, 2, 3, 7] {
            let counts = run_shots_task_parallel(&circuit, tasks, 1, &config);
            assert_eq!(counts.values().sum::<usize>(), 1000, "tasks={tasks}");
            assert!(counts.keys().all(|k| k == "00" || k == "11"), "tasks={tasks}: {counts:?}");
            let p00 = counts.get("00").copied().unwrap_or(0) as f64 / 1000.0;
            assert!((p00 - 0.5).abs() < 0.1, "tasks={tasks}: p00={p00}");
        }
    }

    #[test]
    fn shot_parallel_uneven_split() {
        let circuit = library::bell_kernel();
        let config = RunConfig { shots: 10, seed: Some(6), ..Default::default() };
        let counts = run_shots_task_parallel(&circuit, 3, 1, &config);
        assert_eq!(counts.values().sum::<usize>(), 10);
    }

    #[test]
    fn derive_stream_seed_keeps_chunk_zero_identity() {
        assert_eq!(derive_stream_seed(42, 0), 42);
        assert_ne!(derive_stream_seed(42, 1), derive_stream_seed(42, 2));
    }

    #[test]
    fn auto_plan_runs_small_kernel_in_one_inline_chunk() {
        // Bell at 512 shots costs ~16 amplitude updates per shot — far below
        // the dispatch budget, so the plan must collapse to a single chunk
        // with no amplitude-loop work-sharing (the 100×-overhead fix).
        let circuit = library::bell_kernel();
        let config = RunConfig { shots: 512, seed: Some(1), ..Default::default() };
        let plan = ShotPlan::for_circuit(&circuit, &config);
        assert_eq!(plan.num_chunks(), 1);
        assert!(!plan.inner_parallel());
    }

    #[test]
    fn auto_plan_uses_inner_parallelism_for_large_states() {
        let mut circuit = Circuit::new(15);
        for q in 0..15 {
            circuit.h(q);
        }
        let config = RunConfig { shots: 16, seed: Some(1), ..Default::default() };
        let plan = ShotPlan::for_circuit(&circuit, &config);
        assert!(plan.inner_parallel());
        assert_eq!(plan.num_chunks(), 1);
        // Asking for task-level parallelism overrides the single work item.
        let plan2 = ShotPlan::for_tasks(&circuit, &config, 4);
        assert!(!plan2.inner_parallel());
        assert_eq!(plan2.num_chunks(), 4);
    }

    #[test]
    fn sequential_granularity_preserves_legacy_path() {
        let circuit = library::bell_kernel();
        let config = RunConfig {
            shots: 64,
            seed: Some(9),
            granularity: Granularity::Sequential,
            ..Default::default()
        };
        let plan = ShotPlan::for_circuit(&circuit, &config);
        assert!(plan.inner_parallel());
        assert_eq!(plan.num_chunks(), 1);
        // Single-chunk runs reuse the base seed, so the scheduler output is
        // byte-identical to the legacy sequential executor.
        let auto =
            run_shots(&circuit, seq_pool(), &RunConfig { granularity: Granularity::Auto, ..config.clone() });
        let seq = run_shots(&circuit, seq_pool(), &config);
        assert_eq!(auto, seq);
    }

    #[test]
    fn explicit_chunk_shots_is_honored() {
        let circuit = library::bell_kernel();
        let config = RunConfig { shots: 100, seed: Some(3), chunk_shots: Some(7), ..Default::default() };
        let plan = ShotPlan::for_circuit(&circuit, &config);
        assert_eq!(plan.chunk_shots(), 7);
        assert_eq!(plan.num_chunks(), 15);
        let spans: Vec<_> = plan.chunks().collect();
        assert_eq!(spans.first().unwrap().clone(), 0..7);
        assert_eq!(spans.last().unwrap().clone(), 98..100);
        assert_eq!(spans.iter().map(|s| s.len()).sum::<usize>(), 100);
    }

    #[test]
    fn oversubscribed_tasks_never_create_empty_work() {
        // The pre-scheduler executor spawned `tasks` OS threads each with a
        // pool and a full state vector even when a task had zero shots.
        // The plan must clamp instead.
        let circuit = library::bell_kernel();
        let config = RunConfig { shots: 3, seed: Some(4), ..Default::default() };
        let plan = ShotPlan::for_tasks(&circuit, &config, 64);
        assert!(plan.num_chunks() <= 3, "at most one chunk per shot, got {}", plan.num_chunks());
        assert!(plan.chunks().all(|s| !s.is_empty()));
        let counts = run_shots_task_parallel(&circuit, 64, 1, &config);
        assert_eq!(counts.values().sum::<usize>(), 3);
    }

    #[test]
    fn zero_shots_zero_chunks() {
        let circuit = library::bell_kernel();
        let config = RunConfig { shots: 0, seed: Some(1), ..Default::default() };
        let plan = ShotPlan::for_tasks(&circuit, &config, 8);
        assert_eq!(plan.num_chunks(), 0);
        assert_eq!(plan.chunks().count(), 0);
        assert!(run_shots_task_parallel(&circuit, 8, 1, &config).is_empty());
    }

    #[test]
    fn fixed_schedule_is_reproducible_across_runs_and_pools() {
        let circuit = library::bell_kernel();
        for (shots, tasks, chunk) in [(1000, 3, Some(16)), (10, 3, None), (5, 7, Some(2))] {
            let config = RunConfig { shots, seed: Some(11), chunk_shots: chunk, ..Default::default() };
            let a = run_shots_task_parallel(&circuit, tasks, 1, &config);
            let b = run_shots_task_parallel(&circuit, tasks, 2, &config);
            let c = run_shots_task_parallel(&circuit, tasks, 1, &config);
            assert_eq!(a, b, "thread count must not change the schedule's counts");
            assert_eq!(a, c, "re-running a fixed (seed, tasks, chunk_shots) must be identical");
        }
    }

    #[test]
    fn precision_tokens_parse_like_the_env_var() {
        for t in ["f64", "F64", " double ", "64", ""] {
            assert_eq!(parse_precision_token(t), Some(Precision::F64), "{t:?}");
        }
        for t in ["f32", "Single", "32"] {
            assert_eq!(parse_precision_token(t), Some(Precision::F32), "{t:?}");
        }
        for t in ["f16", "half", "yes", "1"] {
            assert_eq!(parse_precision_token(t), None, "{t:?}");
        }
    }

    #[test]
    fn f32_run_samples_the_same_distribution() {
        let circuit = library::bell_kernel();
        let config =
            RunConfig { shots: 1024, seed: Some(1), precision: Some(Precision::F32), ..Default::default() };
        let counts = run_shots(&circuit, seq_pool(), &config);
        assert_eq!(counts.values().sum::<usize>(), 1024);
        assert!(counts.keys().all(|k| k == "00" || k == "11"), "{counts:?}");
        let c00 = counts.get("00").copied().unwrap_or(0) as f64;
        assert!((c00 / 1024.0 - 0.5).abs() < 0.1, "{counts:?}");
    }

    #[test]
    fn f32_fixed_seed_is_reproducible_across_pools_and_chunks() {
        let circuit = library::ghz_kernel(4);
        for chunk in [None, Some(16)] {
            let config = RunConfig {
                shots: 200,
                seed: Some(5),
                chunk_shots: chunk,
                precision: Some(Precision::F32),
                ..Default::default()
            };
            let a = run_shots(&circuit, seq_pool(), &config);
            let b = run_shots(&circuit, Arc::new(ThreadPool::new(4)), &config);
            assert_eq!(a, b, "chunk={chunk:?}");
            assert_eq!(a.values().sum::<usize>(), 200);
        }
    }

    #[test]
    fn f32_inner_parallel_plan_still_runs_sequential_state() {
        // A 15-qubit circuit plans as one inner-parallel work item; the
        // f32 state ignores the pool (sequential-only) but the run must
        // still complete and conserve shots.
        let mut circuit = Circuit::new(15);
        for q in 0..15 {
            circuit.h(q);
        }
        circuit.measure_all();
        let config =
            RunConfig { shots: 8, seed: Some(2), precision: Some(Precision::F32), ..Default::default() };
        assert!(ShotPlan::for_circuit(&circuit, &config).inner_parallel());
        let counts = run_shots(&circuit, Arc::new(ThreadPool::new(2)), &config);
        assert_eq!(counts.values().sum::<usize>(), 8);
    }

    #[test]
    fn qft_matches_dft_matrix() {
        // QFT|x⟩ amplitudes must equal e^{2πi x y / M} / √M for each y.
        use crate::complex::Complex64;
        let n = 3;
        let m_size = 1usize << n;
        for x in 0..m_size {
            let mut prep = Circuit::new(n);
            for q in 0..n {
                if x >> q & 1 == 1 {
                    prep.x(q);
                }
            }
            let mut full = prep.clone();
            full.extend(&library::qft(n));
            let mut state = StateVector::new(n);
            let mut rng = StdRng::seed_from_u64(0);
            run_once(&mut state, &full, &mut rng);
            let scale = 1.0 / (m_size as f64).sqrt();
            for y in 0..m_size {
                let angle = std::f64::consts::TAU * (x as f64) * (y as f64) / m_size as f64;
                let expect = Complex64::from_polar(scale, angle);
                assert!(
                    state.amp(y).approx_eq(expect, 1e-10),
                    "x={x} y={y}: got {} expected {}",
                    state.amp(y),
                    expect
                );
            }
        }
    }

    #[test]
    fn precancelled_token_skips_every_chunk() {
        let circuit = library::bell_kernel();
        let config = RunConfig { shots: 64, seed: Some(5), ..Default::default() };
        let plan = ShotPlan::with_chunk_shots(64, 8);
        let token = CancelToken::new();
        token.cancel();
        let run = run_shots_cancellable(&circuit, seq_pool(), &config, &plan, &token);
        assert_eq!((run.completed_chunks, run.total_chunks), (0, 8));
        assert!(run.cancelled);
        assert!(run.counts.is_empty());
    }

    #[test]
    fn mid_run_cancel_keeps_the_completed_prefix_deterministic() {
        // Cancel from another thread while the sweep runs on a 1-thread
        // pool (chunks start strictly in plan order, so the completed set
        // is always a prefix). Whatever prefix completes, its merged
        // counts must be byte-identical to re-running exactly those chunks
        // on their derived RNG streams — cancellation truncates, never
        // corrupts.
        let circuit = library::ghz_kernel(10);
        let base = 11u64;
        let config = RunConfig { shots: 256, seed: Some(base), ..Default::default() };
        let plan = ShotPlan::with_chunk_shots(256, 8);
        let token = CancelToken::new();
        let remote = token.clone();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            remote.cancel();
        });
        let run = run_shots_cancellable(&circuit, seq_pool(), &config, &plan, &token);
        canceller.join().unwrap();
        assert_eq!(run.total_chunks, 32);
        assert_eq!(run.cancelled, run.completed_chunks < run.total_chunks);
        let mut expected = Counts::new();
        for (index, span) in plan.chunks().enumerate().take(run.completed_chunks) {
            let chunk_cfg = RunConfig {
                shots: span.len(),
                seed: Some(derive_stream_seed(base, index)),
                ..Default::default()
            };
            let chunk_plan = ShotPlan::with_chunk_shots(span.len(), span.len());
            for (bits, n) in run_shots_planned(&circuit, seq_pool(), &chunk_cfg, &chunk_plan) {
                *expected.entry(bits).or_insert(0) += n;
            }
        }
        assert_eq!(run.counts, expected);
        assert_eq!(run.counts.values().sum::<usize>(), run.completed_chunks * 8);
    }

    #[test]
    fn run_shots_planned_honors_the_thread_token() {
        // The implicit path: a token installed on the calling thread (as
        // the execution service does around task bodies) is picked up by
        // `run_shots_planned` without any signature change.
        let circuit = library::bell_kernel();
        let config = RunConfig { shots: 64, seed: Some(9), ..Default::default() };
        let plan = ShotPlan::with_chunk_shots(64, 8);
        let token = CancelToken::new();
        token.cancel();
        let previous = crate::cancel::set_thread_cancel_token(Some(token));
        let counts = run_shots_planned(&circuit, seq_pool(), &config, &plan);
        crate::cancel::set_thread_cancel_token(previous);
        assert!(counts.is_empty(), "a cancelled thread token must stop the sweep at chunk 0");
    }
}
