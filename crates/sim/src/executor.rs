//! Circuit execution: single shots and repeated sampling.
//!
//! The per-shot loop mirrors how QCOR's `QppAccelerator` services a kernel
//! invocation with `shots` repetitions; the measurement record format
//! matches the `AcceleratorBuffer` counts of paper Listing 2 (a map from
//! bitstring to occurrence count).
//!
//! Bitstring convention: the leftmost character is the outcome of the
//! lowest-indexed *measured* qubit.

use crate::gates::apply_instruction;
use crate::state::StateVector;
use qcor_circuit::{Circuit, GateKind};
use qcor_pool::ThreadPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Occurrence counts per measured bitstring, ordered for stable printing.
pub type Counts = BTreeMap<String, usize>;

/// The measurement record of a single shot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShotRecord {
    /// `(qubit, outcome)` in program order. A re-measured qubit appears
    /// multiple times; the last entry wins for the bitstring.
    pub outcomes: Vec<(usize, u8)>,
}

impl ShotRecord {
    /// Final outcome per measured qubit, sorted by qubit index, rendered as
    /// a bitstring (lowest qubit leftmost).
    pub fn bitstring(&self) -> String {
        let mut last: BTreeMap<usize, u8> = BTreeMap::new();
        for &(q, b) in &self.outcomes {
            last.insert(q, b);
        }
        last.values().map(|b| char::from(b'0' + b)).collect()
    }

    /// Interpret the outcomes of the given qubits (little-endian: first
    /// entry of `qubits` is the least significant bit) as an integer,
    /// using each qubit's final outcome. Unmeasured qubits read 0.
    pub fn value_of(&self, qubits: &[usize]) -> u64 {
        let mut last: BTreeMap<usize, u8> = BTreeMap::new();
        for &(q, b) in &self.outcomes {
            last.insert(q, b);
        }
        let mut v = 0u64;
        for (pos, q) in qubits.iter().enumerate() {
            if last.get(q).copied().unwrap_or(0) == 1 {
                v |= 1 << pos;
            }
        }
        v
    }
}

/// Run `circuit` once against `state`, recording measurement outcomes.
pub fn run_once(state: &mut StateVector, circuit: &Circuit, rng: &mut impl Rng) -> ShotRecord {
    assert!(
        circuit.num_qubits() <= state.num_qubits(),
        "circuit needs {} qubits but the state has {}",
        circuit.num_qubits(),
        state.num_qubits()
    );
    let mut record = ShotRecord::default();
    for inst in circuit.instructions() {
        if let Some(bit) = apply_instruction(state, inst, rng) {
            record.outcomes.push((inst.qubits[0], bit));
        }
    }
    record
}

/// Configuration for repeated sampling.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Number of repetitions.
    pub shots: usize,
    /// RNG seed (`None` = entropy from the OS).
    pub seed: Option<u64>,
    /// Minimum loop length before kernels use the pool (see
    /// [`StateVector::set_par_threshold`]).
    pub par_threshold: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig { shots: 1024, seed: None, par_threshold: 2 }
    }
}

/// Execute `circuit` for `config.shots` repetitions on a state backed by
/// `pool`, re-preparing |0...0⟩ before each shot, and accumulate the counts
/// of the measured bitstrings.
///
/// Re-running the full circuit per shot (rather than sampling a final
/// distribution) keeps the workload faithful to the paper's evaluation,
/// where per-kernel simulation work × shots is what the simulator threads
/// parallelize, and is required anyway once circuits contain mid-circuit
/// measurement or reset.
pub fn run_shots(circuit: &Circuit, pool: Arc<ThreadPool>, config: &RunConfig) -> Counts {
    let mut rng = match config.seed {
        Some(s) => StdRng::seed_from_u64(s),
        None => StdRng::from_entropy(),
    };
    let mut state = StateVector::with_pool(circuit.num_qubits(), pool);
    state.set_par_threshold(config.par_threshold);
    let mut counts = Counts::new();
    for shot in 0..config.shots {
        if shot > 0 {
            state.reset_to_zero();
        }
        let record = run_once(&mut state, circuit, &mut rng);
        let key = record.bitstring();
        *counts.entry(key).or_insert(0) += 1;
    }
    counts
}

/// Shot-level parallelism (paper §II): split `config.shots` across
/// `tasks` OS threads, each with its **own state vector and pool** of
/// `threads_per_task` simulator threads, and merge the counts.
///
/// Each task derives its RNG stream from `config.seed` and its task index,
/// so results are reproducible but statistically independent across tasks.
/// Note that for a fixed seed the merged counts differ from the
/// single-task sequence (shots are partitioned differently), while the
/// underlying distribution is identical.
pub fn run_shots_task_parallel(
    circuit: &Circuit,
    tasks: usize,
    threads_per_task: usize,
    config: &RunConfig,
) -> Counts {
    assert!(tasks >= 1);
    if tasks == 1 {
        let pool = Arc::new(ThreadPool::new(threads_per_task));
        return run_shots(circuit, pool, config);
    }
    let base = config.shots / tasks;
    let remainder = config.shots % tasks;
    let handles: Vec<_> = (0..tasks)
        .map(|t| {
            let circuit = circuit.clone();
            let shots = base + usize::from(t < remainder);
            let seed =
                config.seed.map(|s| s.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64 + 1)));
            let par_threshold = config.par_threshold;
            std::thread::spawn(move || {
                let pool = Arc::new(ThreadPool::new(threads_per_task));
                run_shots(&circuit, pool, &RunConfig { shots, seed, par_threshold })
            })
        })
        .collect();
    let mut merged = Counts::new();
    for h in handles {
        for (bits, count) in h.join().expect("shot task panicked") {
            *merged.entry(bits).or_insert(0) += count;
        }
    }
    merged
}

/// Exact output distribution of a measurement-free prefix: strips terminal
/// measurements, evolves once, and returns the probability of each basis
/// state. Errors if a non-terminal measurement or reset is present.
pub fn exact_distribution(circuit: &Circuit, pool: Arc<ThreadPool>) -> Result<Vec<f64>, String> {
    let mut state = StateVector::with_pool(circuit.num_qubits(), pool);
    let mut rng = StdRng::seed_from_u64(0);
    let mut seen_measure = false;
    for inst in circuit.instructions() {
        match inst.gate {
            GateKind::Measure => seen_measure = true,
            GateKind::Barrier => {}
            GateKind::Reset => return Err("exact_distribution cannot handle reset".to_string()),
            _ if seen_measure => {
                return Err("exact_distribution requires measurements to be terminal".to_string())
            }
            _ => {
                apply_instruction(&mut state, inst, &mut rng);
            }
        }
    }
    Ok(state.probabilities())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcor_circuit::library;

    fn seq_pool() -> Arc<ThreadPool> {
        Arc::new(ThreadPool::new(1))
    }

    #[test]
    fn bell_counts_only_00_and_11() {
        let circuit = library::bell_kernel();
        let config = RunConfig { shots: 1024, seed: Some(1), ..Default::default() };
        let counts = run_shots(&circuit, seq_pool(), &config);
        let total: usize = counts.values().sum();
        assert_eq!(total, 1024);
        assert!(counts.keys().all(|k| k == "00" || k == "11"), "{counts:?}");
        // Both outcomes should appear with roughly equal frequency.
        let c00 = counts.get("00").copied().unwrap_or(0) as f64;
        assert!((c00 / 1024.0 - 0.5).abs() < 0.1, "{counts:?}");
    }

    #[test]
    fn ghz_counts_are_all_zero_or_all_one() {
        let circuit = library::ghz_kernel(4);
        let config = RunConfig { shots: 256, seed: Some(2), ..Default::default() };
        let counts = run_shots(&circuit, seq_pool(), &config);
        assert!(counts.keys().all(|k| k == "0000" || k == "1111"), "{counts:?}");
    }

    #[test]
    fn deterministic_with_fixed_seed() {
        let circuit = library::bell_kernel();
        let config = RunConfig { shots: 128, seed: Some(7), ..Default::default() };
        let a = run_shots(&circuit, seq_pool(), &config);
        let b = run_shots(&circuit, seq_pool(), &config);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_pool_preserves_distribution() {
        let circuit = library::bell_kernel();
        let pool = Arc::new(ThreadPool::new(4));
        let config = RunConfig { shots: 512, seed: Some(3), ..Default::default() };
        let counts = run_shots(&circuit, pool, &config);
        assert!(counts.keys().all(|k| k == "00" || k == "11"), "{counts:?}");
        assert_eq!(counts.values().sum::<usize>(), 512);
    }

    #[test]
    fn exact_distribution_of_bell() {
        let circuit = library::bell_kernel();
        let p = exact_distribution(&circuit, seq_pool()).unwrap();
        assert!((p[0b00] - 0.5).abs() < 1e-12);
        assert!((p[0b11] - 0.5).abs() < 1e-12);
        assert!(p[0b01].abs() < 1e-12);
        assert!(p[0b10].abs() < 1e-12);
    }

    #[test]
    fn exact_distribution_rejects_mid_circuit_measurement() {
        let mut c = Circuit::new(1);
        c.measure(0).h(0);
        assert!(exact_distribution(&c, seq_pool()).is_err());
    }

    #[test]
    fn shot_record_value_of_is_little_endian() {
        let rec = ShotRecord { outcomes: vec![(0, 1), (1, 0), (2, 1)] };
        assert_eq!(rec.value_of(&[0, 1, 2]), 0b101);
        assert_eq!(rec.value_of(&[2, 1, 0]), 0b101u64.reverse_bits() >> 61);
        assert_eq!(rec.bitstring(), "101");
    }

    #[test]
    fn remeasured_qubit_uses_last_outcome() {
        // X then measure gives 1; reset-like X·X then measure gives 0 —
        // simulate by measuring twice around an X.
        let mut c = Circuit::new(1);
        c.x(0).measure(0).x(0).measure(0);
        let mut state = StateVector::new(1);
        let mut rng = StdRng::seed_from_u64(0);
        let rec = run_once(&mut state, &c, &mut rng);
        assert_eq!(rec.outcomes, vec![(0, 1), (0, 0)]);
        assert_eq!(rec.bitstring(), "0");
    }

    #[test]
    fn shot_parallel_conserves_total_and_distribution() {
        let circuit = library::bell_kernel();
        let config = RunConfig { shots: 1000, seed: Some(5), ..Default::default() };
        for tasks in [1, 2, 3, 7] {
            let counts = run_shots_task_parallel(&circuit, tasks, 1, &config);
            assert_eq!(counts.values().sum::<usize>(), 1000, "tasks={tasks}");
            assert!(counts.keys().all(|k| k == "00" || k == "11"), "tasks={tasks}: {counts:?}");
            let p00 = counts.get("00").copied().unwrap_or(0) as f64 / 1000.0;
            assert!((p00 - 0.5).abs() < 0.1, "tasks={tasks}: p00={p00}");
        }
    }

    #[test]
    fn shot_parallel_uneven_split() {
        let circuit = library::bell_kernel();
        let config = RunConfig { shots: 10, seed: Some(6), ..Default::default() };
        let counts = run_shots_task_parallel(&circuit, 3, 1, &config);
        assert_eq!(counts.values().sum::<usize>(), 10);
    }

    #[test]
    fn qft_matches_dft_matrix() {
        // QFT|x⟩ amplitudes must equal e^{2πi x y / M} / √M for each y.
        use crate::complex::Complex64;
        let n = 3;
        let m_size = 1usize << n;
        for x in 0..m_size {
            let mut prep = Circuit::new(n);
            for q in 0..n {
                if x >> q & 1 == 1 {
                    prep.x(q);
                }
            }
            let mut full = prep.clone();
            full.extend(&library::qft(n));
            let mut state = StateVector::new(n);
            let mut rng = StdRng::seed_from_u64(0);
            run_once(&mut state, &full, &mut rng);
            let scale = 1.0 / (m_size as f64).sqrt();
            for y in 0..m_size {
                let angle = std::f64::consts::TAU * (x as f64) * (y as f64) / m_size as f64;
                let expect = Complex64::from_polar(scale, angle);
                assert!(
                    state.amp(y).approx_eq(expect, 1e-10),
                    "x={x} y={y}: got {} expected {}",
                    state.amp(y),
                    expect
                );
            }
        }
    }
}
