//! Property tests: the Pauli sum algebra must satisfy ring axioms, the
//! parser must round-trip generated expressions, and expectations must be
//! consistent with the operator algebra.

use proptest::prelude::*;
use qcor_pauli::{Pauli, PauliString, PauliSum};
use qcor_sim::c64;

fn pauli_strategy() -> impl Strategy<Value = Pauli> {
    prop_oneof![Just(Pauli::X), Just(Pauli::Y), Just(Pauli::Z)]
}

fn string_strategy() -> impl Strategy<Value = PauliString> {
    prop::collection::btree_map(0usize..4, pauli_strategy(), 0..4).prop_map(PauliString::from_pairs)
}

fn sum_strategy() -> impl Strategy<Value = PauliSum> {
    prop::collection::vec((-3.0f64..3.0, string_strategy()), 0..5).prop_map(|terms| {
        let mut h = PauliSum::zero();
        for (coeff, s) in terms {
            h.add_term(c64(coeff, 0.0), s);
        }
        h
    })
}

fn sums_equal(a: &PauliSum, b: &PauliSum) -> bool {
    let diff = a.clone() - b.clone();
    diff.terms().iter().all(|(c, _)| c.norm_sqr() < 1e-18)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn addition_commutes(a in sum_strategy(), b in sum_strategy()) {
        prop_assert!(sums_equal(&(a.clone() + b.clone()), &(b + a)));
    }

    #[test]
    fn multiplication_associates(a in sum_strategy(), b in sum_strategy(), c in sum_strategy()) {
        let left = (a.clone() * b.clone()) * c.clone();
        let right = a * (b * c);
        prop_assert!(sums_equal(&left, &right));
    }

    #[test]
    fn multiplication_distributes(a in sum_strategy(), b in sum_strategy(), c in sum_strategy()) {
        let left = a.clone() * (b.clone() + c.clone());
        let right = a.clone() * b + a * c;
        prop_assert!(sums_equal(&left, &right));
    }

    #[test]
    fn string_squares_to_identity(s in string_strategy()) {
        let (phase, sq) = s.compose(&s);
        prop_assert!(sq.is_identity());
        prop_assert!(phase.approx_eq(c64(1.0, 0.0), 1e-12));
    }

    #[test]
    fn composition_phases_are_fourth_roots(a in string_strategy(), b in string_strategy()) {
        let (phase, _) = a.compose(&b);
        // phase ∈ {1, i, −1, −i}
        prop_assert!((phase.norm() - 1.0).abs() < 1e-12);
        let quad = phase * phase * phase * phase;
        prop_assert!(quad.approx_eq(c64(1.0, 0.0), 1e-9));
    }

    #[test]
    fn display_parses_back(s in string_strategy()) {
        prop_assume!(!s.is_identity());
        let text = format!("1 {s}");
        let parsed = PauliSum::parse(&text).unwrap();
        prop_assert!(parsed.coefficient(&s).approx_eq(c64(1.0, 0.0), 1e-12));
    }

    #[test]
    fn hermitian_squares_have_nonnegative_expectation(a in sum_strategy(), seed in 0u64..200) {
        // ⟨ψ|A†A|ψ⟩ ≥ 0 for any state; with real coefficients A† = A, so
        // ⟨A²⟩ ≥ 0 on a random circuit state.
        use rand::{Rng, SeedableRng};
        let square = a.clone() * a;
        let n = square.num_qubits().max(1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut circuit = qcor_circuit::Circuit::new(n);
        for q in 0..n {
            circuit.ry(q, rng.gen_range(-3.0..3.0));
            circuit.rz(q, rng.gen_range(-3.0..3.0));
        }
        for q in 0..n.saturating_sub(1) {
            circuit.cx(q, q + 1);
        }
        let mut state = qcor_sim::StateVector::new(n);
        qcor_sim::run_once(&mut state, &circuit, &mut rng);
        let e = qcor_pauli::expectation::exact(&state, &square);
        prop_assert!(e >= -1e-9, "⟨A²⟩ = {e}");
    }
}
