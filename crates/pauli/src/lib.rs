//! # qcor-pauli — Pauli operator algebra and expectation estimation
//!
//! QCOR programs build Hamiltonians as algebraic expressions over Pauli
//! operators — the paper's VQE example (Listing 3) constructs the Deuteron
//! Hamiltonian as
//!
//! ```text
//! 5.907 - 2.1433 X(0)X(1) - 2.1433 Y(0)Y(1) + 0.21829 Z(0) - 6.125 Z(1)
//! ```
//!
//! This crate provides that layer:
//!
//! * [`Pauli`] / [`PauliString`] / [`PauliSum`] — the operator algebra
//!   (sums of weighted Pauli strings, with full product/phase tracking),
//! * [`PauliSum::parse`] — a parser for the textual form above (both
//!   `X0X1` and `X(0) * X(1)` spellings),
//! * [`expectation`] — ⟨ψ|H|ψ⟩ either exactly from a state vector or
//!   estimated from measured counts with basis-change circuits,
//! * [`grouping`] — qubit-wise-commuting term grouping so one measured
//!   circuit serves several terms,
//! * [`deuteron_hamiltonian`] — the paper's example Hamiltonian.

pub mod expectation;
pub mod grouping;
mod ops;

pub use ops::{Pauli, PauliString, PauliSum};

/// The 2-qubit Deuteron Hamiltonian of paper Listing 3.
pub fn deuteron_hamiltonian() -> PauliSum {
    PauliSum::parse("5.907 - 2.1433 X0X1 - 2.1433 Y0Y1 + .21829 Z0 - 6.125 Z1")
        .expect("static Hamiltonian text is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deuteron_has_five_terms() {
        let h = deuteron_hamiltonian();
        assert_eq!(h.terms().len(), 5);
        assert_eq!(h.num_qubits(), 2);
    }
}
