//! Expectation values ⟨ψ|H|ψ⟩: exact (from the state vector) and estimated
//! (from measured counts via basis-change circuits).

use crate::grouping::group_qubit_wise;
use crate::ops::{Pauli, PauliString, PauliSum};
use qcor_circuit::Circuit;
use qcor_sim::{c64, Complex64};
use qcor_sim::{gates, Counts, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Exact ⟨ψ|P|ψ⟩ for a single Pauli string.
pub fn exact_term(state: &StateVector, term: &PauliString) -> Complex64 {
    if term.is_identity() {
        return c64(state.norm_sqr(), 0.0);
    }
    // Apply the string to a copy and take the inner product.
    let mut transformed = StateVector::from_amplitudes(state.amplitudes().to_vec());
    let mut rng = StdRng::seed_from_u64(0); // unused: Paulis are unitary
    for (q, p) in term.factors() {
        let kind = match p {
            Pauli::X => qcor_circuit::GateKind::X,
            Pauli::Y => qcor_circuit::GateKind::Y,
            Pauli::Z => qcor_circuit::GateKind::Z,
        };
        let inst = qcor_circuit::Instruction::new(kind, vec![q], vec![]);
        gates::apply_instruction(&mut transformed, &inst, &mut rng);
    }
    state.inner_product(&transformed)
}

/// Exact ⟨ψ|H|ψ⟩. The imaginary part (zero for Hermitian `h`) is dropped.
pub fn exact(state: &StateVector, h: &PauliSum) -> f64 {
    let mut acc = Complex64::ZERO;
    for (coeff, term) in h.terms() {
        acc += coeff * exact_term(state, &term);
    }
    acc.re
}

/// The basis-change circuit measuring every qubit in `basis`'s support:
/// X → H, Y → S† then H, Z → nothing; then a measurement per supported
/// qubit.
pub fn measurement_circuit(basis: &PauliString, num_qubits: usize) -> Circuit {
    let mut c = Circuit::new(num_qubits);
    for (q, p) in basis.factors() {
        match p {
            Pauli::X => {
                c.h(q);
            }
            Pauli::Y => {
                c.sdg(q).h(q);
            }
            Pauli::Z => {}
        }
    }
    for (q, _) in basis.factors() {
        c.measure(q);
    }
    c
}

/// Estimate ⟨P⟩ for `term` from counts measured in a basis covering it.
/// `measured_qubits` lists the measured qubits ascending — the bitstring
/// convention of the executor (lowest measured qubit leftmost).
pub fn term_from_counts(term: &PauliString, counts: &Counts, measured_qubits: &[usize]) -> f64 {
    if term.is_identity() {
        return 1.0;
    }
    let positions: Vec<usize> = term
        .support()
        .iter()
        .map(|q| {
            measured_qubits
                .iter()
                .position(|m| m == q)
                .expect("term support must be covered by the measured qubits")
        })
        .collect();
    let mut total = 0usize;
    let mut acc = 0.0f64;
    for (bits, &count) in counts {
        let ones = positions.iter().filter(|&&p| bits.as_bytes().get(p).copied() == Some(b'1')).count();
        let sign = if ones % 2 == 0 { 1.0 } else { -1.0 };
        acc += sign * count as f64;
        total += count;
    }
    if total == 0 {
        0.0
    } else {
        acc / total as f64
    }
}

/// Estimate ⟨ψ|H|ψ⟩ by sampling: for each qubit-wise-commuting group, the
/// state-prep circuit `prep` (no measurements) is extended with the group's
/// basis change and measured through `run`, which executes a circuit and
/// returns counts. The number of `run` invocations equals the number of
/// groups.
pub fn estimate_with<F>(h: &PauliSum, prep: &Circuit, mut run: F) -> f64
where
    F: FnMut(&Circuit) -> Counts,
{
    let grouped = group_qubit_wise(h);
    let n = prep.num_qubits().max(h.num_qubits());
    let mut energy = grouped.constant;
    for group in &grouped.groups {
        let mut circuit = Circuit::new(n);
        circuit.extend(prep);
        circuit.extend(&measurement_circuit(&group.basis, n));
        let counts = run(&circuit);
        let measured = group.basis.support();
        for (coeff, term) in &group.terms {
            energy += coeff.re * term_from_counts(term, &counts, &measured);
        }
    }
    energy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deuteron_hamiltonian;
    use qcor_pool::ThreadPool;
    use qcor_sim::{run_shots, RunConfig};
    use std::sync::Arc;

    fn prepare(c: &Circuit) -> StateVector {
        let mut state = StateVector::new(c.num_qubits());
        let mut rng = StdRng::seed_from_u64(0);
        qcor_sim::run_once(&mut state, c, &mut rng);
        state
    }

    #[test]
    fn z_expectation_on_basis_states() {
        let zero = prepare(&Circuit::new(1));
        assert!((exact(&zero, &PauliSum::z(0)) - 1.0).abs() < 1e-12);
        let mut flip = Circuit::new(1);
        flip.x(0);
        let one = prepare(&flip);
        assert!((exact(&one, &PauliSum::z(0)) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_expectation_on_plus_state() {
        let mut c = Circuit::new(1);
        c.h(0);
        let plus = prepare(&c);
        assert!((exact(&plus, &PauliSum::x(0)) - 1.0).abs() < 1e-12);
        assert!(exact(&plus, &PauliSum::z(0)).abs() < 1e-12);
    }

    #[test]
    fn y_expectation_on_i_state() {
        // |+i⟩ = S H |0⟩ has ⟨Y⟩ = +1.
        let mut c = Circuit::new(1);
        c.h(0).s(0);
        let state = prepare(&c);
        assert!((exact(&state, &PauliSum::y(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_state_correlations() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let bell = prepare(&c);
        let zz = PauliSum::z(0) * PauliSum::z(1);
        let xx = PauliSum::x(0) * PauliSum::x(1);
        let yy = PauliSum::y(0) * PauliSum::y(1);
        assert!((exact(&bell, &zz) - 1.0).abs() < 1e-12);
        assert!((exact(&bell, &xx) - 1.0).abs() < 1e-12);
        assert!((exact(&bell, &yy) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn deuteron_ansatz_energy_matches_reference() {
        // The paper's VQE ansatz: X(q0); Ry(q1, θ); CX(q1, q0).
        // Analytically E(θ) = 5.907 − 6.125/2·(1−cosθ) + 0.21829/2·(1+cosθ)... — instead
        // of re-deriving, pin the known optimum: E(0.594) ≈ −1.7487.
        let mut c = Circuit::new(2);
        c.x(0).ry(1, 0.594).cx(1, 0);
        let state = prepare(&c);
        let e = exact(&state, &deuteron_hamiltonian());
        assert!((e - (-1.7487)).abs() < 5e-3, "E = {e}");
    }

    #[test]
    fn measurement_circuit_rotates_bases() {
        let term = PauliString::from_pairs([(0, Pauli::X), (1, Pauli::Y)]);
        let mc = measurement_circuit(&term, 2);
        // One H for X, S†+H for Y, then two measurements.
        assert_eq!(mc.len(), 5);
        assert_eq!(mc.measured_qubits(), vec![0, 1]);
    }

    #[test]
    fn sampled_estimate_approaches_exact_value() {
        let h = deuteron_hamiltonian();
        let mut prep = Circuit::new(2);
        prep.x(0).ry(1, 0.594).cx(1, 0);
        let pool = Arc::new(ThreadPool::new(1));
        let mut seed = 1000u64;
        let estimated = estimate_with(&h, &prep, |circuit| {
            seed += 1;
            run_shots(
                circuit,
                Arc::clone(&pool),
                &RunConfig { shots: 20_000, seed: Some(seed), ..RunConfig::default() },
            )
        });
        let exact_e = exact(&prepare(&prep), &h);
        assert!((estimated - exact_e).abs() < 0.15, "sampled {estimated} vs exact {exact_e}");
    }

    #[test]
    fn term_from_counts_parity() {
        let mut counts = Counts::new();
        counts.insert("00".into(), 600);
        counts.insert("11".into(), 400);
        let zz = PauliString::from_pairs([(0, Pauli::Z), (1, Pauli::Z)]);
        // Both outcomes have even parity → ⟨ZZ⟩ = 1.
        assert!((term_from_counts(&zz, &counts, &[0, 1]) - 1.0).abs() < 1e-12);
        let z1 = PauliString::single(1, Pauli::Z);
        // ⟨Z1⟩ = 0.6·(+1) + 0.4·(−1) = 0.2
        assert!((term_from_counts(&z1, &counts, &[0, 1]) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn identity_term_is_one() {
        let counts = Counts::new();
        assert_eq!(term_from_counts(&PauliString::identity(), &counts, &[]), 1.0);
    }
}
