//! Pauli strings and weighted sums, with ring arithmetic.

use qcor_sim::{c64, Complex64};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A single-qubit Pauli operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Pauli {
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

impl Pauli {
    /// Multiply two single-qubit Paulis: returns `(phase, result)` where
    /// `result = None` means identity (e.g. X·X = I).
    fn mul(self, other: Pauli) -> (Complex64, Option<Pauli>) {
        use Pauli::*;
        if self == other {
            return (Complex64::ONE, None);
        }
        // XY = iZ, YZ = iX, ZX = iY (cyclic); reversed order gives −i.
        let (phase, out) = match (self, other) {
            (X, Y) => (Complex64::I, Z),
            (Y, Z) => (Complex64::I, X),
            (Z, X) => (Complex64::I, Y),
            (Y, X) => (-Complex64::I, Z),
            (Z, Y) => (-Complex64::I, X),
            (X, Z) => (-Complex64::I, Y),
            _ => unreachable!("equal operators handled above"),
        };
        (phase, Some(out))
    }

    /// Letter for display.
    pub fn letter(self) -> char {
        match self {
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        }
    }
}

/// A tensor product of single-qubit Paulis over a sparse set of qubits
/// (identity elsewhere). The empty string is the identity operator.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct PauliString {
    factors: BTreeMap<usize, Pauli>,
}

impl PauliString {
    /// The identity.
    pub fn identity() -> Self {
        Self::default()
    }

    /// A single-qubit Pauli.
    pub fn single(qubit: usize, p: Pauli) -> Self {
        let mut factors = BTreeMap::new();
        factors.insert(qubit, p);
        PauliString { factors }
    }

    /// Build from `(qubit, Pauli)` pairs. Panics on duplicate qubits.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (usize, Pauli)>) -> Self {
        let mut factors = BTreeMap::new();
        for (q, p) in pairs {
            assert!(factors.insert(q, p).is_none(), "duplicate qubit {q} in Pauli string");
        }
        PauliString { factors }
    }

    /// The non-identity factors, ascending by qubit.
    pub fn factors(&self) -> impl Iterator<Item = (usize, Pauli)> + '_ {
        self.factors.iter().map(|(&q, &p)| (q, p))
    }

    /// Pauli acting on `qubit`, if not identity there.
    pub fn on(&self, qubit: usize) -> Option<Pauli> {
        self.factors.get(&qubit).copied()
    }

    /// Number of non-identity factors (the string's weight).
    pub fn weight(&self) -> usize {
        self.factors.len()
    }

    /// True for the identity operator.
    pub fn is_identity(&self) -> bool {
        self.factors.is_empty()
    }

    /// Qubits acted on (the support), ascending.
    pub fn support(&self) -> Vec<usize> {
        self.factors.keys().copied().collect()
    }

    /// Smallest register size containing the support.
    pub fn num_qubits(&self) -> usize {
        self.factors.keys().next_back().map(|&q| q + 1).unwrap_or(0)
    }

    /// Product of two strings: `(phase, string)`.
    pub fn compose(&self, other: &PauliString) -> (Complex64, PauliString) {
        let mut phase = Complex64::ONE;
        let mut factors = self.factors.clone();
        for (&q, &p) in &other.factors {
            match factors.remove(&q) {
                None => {
                    factors.insert(q, p);
                }
                Some(mine) => {
                    let (ph, out) = mine.mul(p);
                    phase *= ph;
                    if let Some(out) = out {
                        factors.insert(q, out);
                    }
                }
            }
        }
        (phase, PauliString { factors })
    }

    /// True when the two strings commute qubit-wise (equal or identity at
    /// every shared qubit) — the condition for simultaneous measurement in
    /// a single rotated basis.
    pub fn qubit_wise_commutes(&self, other: &PauliString) -> bool {
        self.factors.iter().all(|(q, p)| other.factors.get(q).is_none_or(|op| op == p))
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.factors.is_empty() {
            return write!(f, "I");
        }
        for (q, p) in &self.factors {
            write!(f, "{}{}", p.letter(), q)?;
        }
        Ok(())
    }
}

/// A weighted sum of Pauli strings: Σ cᵢ·Pᵢ, the Hamiltonian representation.
///
/// Arithmetic is supported through operator overloads:
///
/// ```
/// use qcor_pauli::PauliSum;
/// let x0 = PauliSum::x(0);
/// let x1 = PauliSum::x(1);
/// let h = PauliSum::constant(5.907) - (x0 * x1) * 2.1433;
/// assert_eq!(h.terms().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PauliSum {
    /// Terms keyed by string, coefficients combined.
    terms: BTreeMap<PauliString, Complex64>,
}

impl PauliSum {
    /// The zero operator.
    pub fn zero() -> Self {
        Self::default()
    }

    /// A scalar multiple of the identity.
    pub fn constant(c: f64) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(PauliString::identity(), c64(c, 0.0));
        PauliSum { terms }
    }

    /// X on `qubit`.
    pub fn x(qubit: usize) -> Self {
        Self::from_string(PauliString::single(qubit, Pauli::X))
    }

    /// Y on `qubit`.
    pub fn y(qubit: usize) -> Self {
        Self::from_string(PauliString::single(qubit, Pauli::Y))
    }

    /// Z on `qubit`.
    pub fn z(qubit: usize) -> Self {
        Self::from_string(PauliString::single(qubit, Pauli::Z))
    }

    /// A unit-coefficient single-string operator.
    pub fn from_string(s: PauliString) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(s, Complex64::ONE);
        PauliSum { terms }
    }

    /// Add a term with the given coefficient, combining like strings and
    /// pruning (near-)zero results.
    pub fn add_term(&mut self, coeff: Complex64, string: PauliString) {
        let entry = self.terms.entry(string.clone()).or_insert(Complex64::ZERO);
        *entry += coeff;
        if entry.norm_sqr() < 1e-24 {
            self.terms.remove(&string);
        }
    }

    /// The terms, ascending by string.
    pub fn terms(&self) -> Vec<(Complex64, PauliString)> {
        self.terms.iter().map(|(s, &c)| (c, s.clone())).collect()
    }

    /// Coefficient of `string` (zero when absent).
    pub fn coefficient(&self, string: &PauliString) -> Complex64 {
        self.terms.get(string).copied().unwrap_or(Complex64::ZERO)
    }

    /// Smallest register size containing every term's support.
    pub fn num_qubits(&self) -> usize {
        self.terms.keys().map(PauliString::num_qubits).max().unwrap_or(0)
    }

    /// True when every coefficient is (numerically) real — a Hermitian
    /// operator in this representation.
    pub fn is_hermitian(&self) -> bool {
        self.terms.values().all(|c| c.im.abs() < 1e-12)
    }

    /// Parse textual Hamiltonians. Accepted grammar (whitespace-insensitive):
    ///
    /// ```text
    /// sum    := [sign] term (sign term)*
    /// term   := factor (['*'] factor)*
    /// factor := NUMBER | PAULI
    /// PAULI  := [XYZ] (INDEX | '(' INDEX ')')
    /// ```
    pub fn parse(src: &str) -> Result<Self, String> {
        let mut p = SumParser { src: src.as_bytes(), pos: 0 };
        p.parse_sum()
    }
}

impl Add for PauliSum {
    type Output = PauliSum;
    fn add(mut self, rhs: PauliSum) -> PauliSum {
        for (s, c) in rhs.terms {
            self.add_term(c, s);
        }
        self
    }
}

impl Sub for PauliSum {
    type Output = PauliSum;
    fn sub(self, rhs: PauliSum) -> PauliSum {
        self + (-rhs)
    }
}

impl Neg for PauliSum {
    type Output = PauliSum;
    fn neg(mut self) -> PauliSum {
        for c in self.terms.values_mut() {
            *c = -*c;
        }
        self
    }
}

impl Mul for PauliSum {
    type Output = PauliSum;
    fn mul(self, rhs: PauliSum) -> PauliSum {
        let mut out = PauliSum::zero();
        for (ls, lc) in &self.terms {
            for (rs, rc) in &rhs.terms {
                let (phase, s) = ls.compose(rs);
                out.add_term(*lc * *rc * phase, s);
            }
        }
        out
    }
}

impl Mul<f64> for PauliSum {
    type Output = PauliSum;
    fn mul(mut self, rhs: f64) -> PauliSum {
        for c in self.terms.values_mut() {
            *c = c.scale(rhs);
        }
        self.terms.retain(|_, c| c.norm_sqr() >= 1e-24);
        self
    }
}

impl fmt::Display for PauliSum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        let mut first = true;
        for (s, c) in &self.terms {
            if first {
                write!(f, "{c} {s}")?;
            } else {
                write!(f, " + {c} {s}")?;
            }
            first = false;
        }
        Ok(())
    }
}

struct SumParser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> SumParser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn parse_sum(&mut self) -> Result<PauliSum, String> {
        let mut out = PauliSum::zero();
        let mut sign = match self.peek() {
            Some(b'-') => {
                self.pos += 1;
                -1.0
            }
            Some(b'+') => {
                self.pos += 1;
                1.0
            }
            Some(_) => 1.0,
            None => return Err("empty Hamiltonian expression".to_string()),
        };
        loop {
            let (coeff, string) = self.parse_term()?;
            out.add_term(coeff.scale(sign), string);
            match self.peek() {
                Some(b'+') => {
                    self.pos += 1;
                    sign = 1.0;
                }
                Some(b'-') => {
                    self.pos += 1;
                    sign = -1.0;
                }
                Some(other) => return Err(format!("unexpected character `{}`", other as char)),
                None => return Ok(out),
            }
        }
    }

    fn parse_term(&mut self) -> Result<(Complex64, PauliString), String> {
        let mut coeff = Complex64::ONE;
        let mut string = PauliString::identity();
        let mut any = false;
        loop {
            match self.peek() {
                Some(b'*') => {
                    if !any {
                        return Err("term cannot start with `*`".to_string());
                    }
                    self.pos += 1;
                }
                Some(c) if c.is_ascii_digit() || c == b'.' => {
                    coeff = coeff.scale(self.parse_number()?);
                    any = true;
                }
                Some(c) if matches!(c.to_ascii_uppercase(), b'X' | b'Y' | b'Z') => {
                    let (q, p) = self.parse_pauli()?;
                    let (phase, composed) = string.compose(&PauliString::single(q, p));
                    coeff *= phase;
                    string = composed;
                    any = true;
                }
                _ => {
                    if !any {
                        return Err("expected a coefficient or Pauli operator".to_string());
                    }
                    return Ok((coeff, string));
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            let exp_sign =
                (c == b'+' || c == b'-') && self.pos > start && matches!(self.src[self.pos - 1], b'e' | b'E');
            if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || exp_sign {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        text.parse::<f64>().map_err(|e| format!("bad number `{text}`: {e}"))
    }

    fn parse_pauli(&mut self) -> Result<(usize, Pauli), String> {
        self.skip_ws();
        let p = match self.src[self.pos].to_ascii_uppercase() {
            b'X' => Pauli::X,
            b'Y' => Pauli::Y,
            b'Z' => Pauli::Z,
            other => return Err(format!("expected Pauli letter, found `{}`", other as char)),
        };
        self.pos += 1;
        let parens = self.peek() == Some(b'(');
        if parens {
            self.pos += 1;
        }
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err("Pauli operator needs a qubit index".to_string());
        }
        let q: usize = std::str::from_utf8(&self.src[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|e| format!("bad qubit index: {e}"))?;
        if parens {
            if self.peek() != Some(b')') {
                return Err("missing `)` after qubit index".to_string());
            }
            self.pos += 1;
        }
        Ok((q, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_qubit_products() {
        let (ph, r) = Pauli::X.mul(Pauli::Y);
        assert_eq!(r, Some(Pauli::Z));
        assert!(ph.approx_eq(Complex64::I, 1e-15));
        let (ph, r) = Pauli::Y.mul(Pauli::X);
        assert_eq!(r, Some(Pauli::Z));
        assert!(ph.approx_eq(-Complex64::I, 1e-15));
        let (ph, r) = Pauli::Z.mul(Pauli::Z);
        assert_eq!(r, None);
        assert!(ph.approx_eq(Complex64::ONE, 1e-15));
    }

    #[test]
    fn string_composition_tracks_phase() {
        let x0 = PauliString::single(0, Pauli::X);
        let y0 = PauliString::single(0, Pauli::Y);
        let (phase, z0) = x0.compose(&y0);
        assert_eq!(z0, PauliString::single(0, Pauli::Z));
        assert!(phase.approx_eq(Complex64::I, 1e-15));
    }

    #[test]
    fn disjoint_strings_tensor() {
        let x0 = PauliString::single(0, Pauli::X);
        let z3 = PauliString::single(3, Pauli::Z);
        let (phase, both) = x0.compose(&z3);
        assert!(phase.approx_eq(Complex64::ONE, 1e-15));
        assert_eq!(both.weight(), 2);
        assert_eq!(both.support(), vec![0, 3]);
        assert_eq!(both.num_qubits(), 4);
    }

    #[test]
    fn sum_combines_like_terms() {
        let h = PauliSum::x(0) + PauliSum::x(0);
        assert_eq!(h.terms().len(), 1);
        assert!(h.coefficient(&PauliString::single(0, Pauli::X)).approx_eq(c64(2.0, 0.0), 1e-15));
        let zero = PauliSum::x(0) - PauliSum::x(0);
        assert!(zero.terms().is_empty());
    }

    #[test]
    fn product_of_sums_expands() {
        // (X0 + Z0)(X0 - Z0) = I - XZ + ZX - I = -iY + iY... compute:
        // X·X = I, X·(−Z) = −XZ = −(−iY) = iY, Z·X = iY... wait signs.
        // Just verify against a hand-computed case: (X0)(Z0) = −i Y0.
        let xz = PauliSum::x(0) * PauliSum::z(0);
        let y = PauliString::single(0, Pauli::Y);
        assert!(xz.coefficient(&y).approx_eq(-Complex64::I, 1e-15));
    }

    #[test]
    fn listing_3_style_expression_builds_deuteron() {
        let h = PauliSum::constant(5.907)
            - (PauliSum::x(0) * PauliSum::x(1)) * 2.1433
            - (PauliSum::y(0) * PauliSum::y(1)) * 2.1433
            + PauliSum::z(0) * 0.21829
            - PauliSum::z(1) * 6.125;
        let parsed = PauliSum::parse("5.907 - 2.1433 X0X1 - 2.1433 Y0Y1 + .21829 Z0 - 6.125 Z1").unwrap();
        assert_eq!(h, parsed);
        assert!(h.is_hermitian());
    }

    #[test]
    fn parse_accepts_paren_and_star_spellings() {
        let a = PauliSum::parse("2 X0 X1").unwrap();
        let b = PauliSum::parse("2 * X(0) * X(1)").unwrap();
        let c = PauliSum::parse("2X0X1").unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn parse_leading_sign_and_bare_constant() {
        let h = PauliSum::parse("-3.5").unwrap();
        assert!(h.coefficient(&PauliString::identity()).approx_eq(c64(-3.5, 0.0), 1e-15));
        let h = PauliSum::parse("+1 Z2").unwrap();
        assert_eq!(h.num_qubits(), 3);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(PauliSum::parse("").is_err());
        assert!(PauliSum::parse("X").is_err());
        assert!(PauliSum::parse("Q0").is_err());
        assert!(PauliSum::parse("1 + * Z0").is_err());
        assert!(PauliSum::parse("X(0").is_err());
    }

    #[test]
    fn same_qubit_twice_in_term_composes() {
        // X0 X0 = I
        let h = PauliSum::parse("X0 X0").unwrap();
        assert!(h.coefficient(&PauliString::identity()).approx_eq(Complex64::ONE, 1e-15));
    }

    #[test]
    fn qubit_wise_commutation() {
        let x0x1 = PauliString::from_pairs([(0, Pauli::X), (1, Pauli::X)]);
        let x0 = PauliString::single(0, Pauli::X);
        let z0 = PauliString::single(0, Pauli::Z);
        let z2 = PauliString::single(2, Pauli::Z);
        assert!(x0x1.qubit_wise_commutes(&x0));
        assert!(!x0x1.qubit_wise_commutes(&z0));
        assert!(x0x1.qubit_wise_commutes(&z2));
        assert!(PauliString::identity().qubit_wise_commutes(&x0x1));
    }

    #[test]
    fn display_round_trips_through_parse() {
        let h = deuteron_like();
        let text = format!("{h}");
        // Display uses complex coefficients; sanity-check basic shape only.
        assert!(text.contains("X0X1"));
        assert!(text.contains("Z1"));
    }

    fn deuteron_like() -> PauliSum {
        PauliSum::parse("5.907 - 2.1433 X0X1 - 2.1433 Y0Y1 + .21829 Z0 - 6.125 Z1").unwrap()
    }

    #[test]
    #[should_panic(expected = "duplicate qubit")]
    fn from_pairs_rejects_duplicates() {
        PauliString::from_pairs([(0, Pauli::X), (0, Pauli::Y)]);
    }
}
