//! Qubit-wise-commuting term grouping.
//!
//! Terms that agree (or are identity) on every shared qubit can be
//! estimated from a single measured circuit in one rotated basis; grouping
//! them reduces the number of kernel executions a VQE objective needs —
//! directly reducing the quantum-task count that the paper's task-level
//! parallelism then distributes over threads.

use crate::ops::{PauliString, PauliSum};
use qcor_sim::Complex64;

/// A set of qubit-wise-commuting terms plus the merged measurement basis.
#[derive(Debug, Clone)]
pub struct MeasurementGroup {
    /// The merged basis: at each supported qubit, the Pauli every term in
    /// the group applies there (or identity for terms that skip it).
    pub basis: PauliString,
    /// `(coefficient, term)` pairs covered by this basis.
    pub terms: Vec<(Complex64, PauliString)>,
}

/// Partition of a [`PauliSum`] into measurable groups plus the constant
/// (identity) offset.
#[derive(Debug, Clone)]
pub struct GroupedHamiltonian {
    /// Coefficient of the identity term (measured for free).
    pub constant: f64,
    /// Measurement groups.
    pub groups: Vec<MeasurementGroup>,
}

/// Greedy first-fit grouping into qubit-wise-commuting sets.
pub fn group_qubit_wise(h: &PauliSum) -> GroupedHamiltonian {
    let mut constant = 0.0;
    let mut groups: Vec<MeasurementGroup> = Vec::new();
    for (coeff, term) in h.terms() {
        if term.is_identity() {
            constant += coeff.re;
            continue;
        }
        let slot = groups.iter_mut().find(|g| g.basis.qubit_wise_commutes(&term));
        match slot {
            Some(group) => {
                // Extend the basis with the term's factors on fresh qubits.
                let mut pairs: Vec<_> = group.basis.factors().collect();
                for (q, p) in term.factors() {
                    if group.basis.on(q).is_none() {
                        pairs.push((q, p));
                    }
                }
                group.basis = PauliString::from_pairs(pairs);
                group.terms.push((coeff, term));
            }
            None => groups.push(MeasurementGroup { basis: term.clone(), terms: vec![(coeff, term)] }),
        }
    }
    GroupedHamiltonian { constant, groups }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deuteron_hamiltonian;
    use crate::ops::Pauli;

    #[test]
    fn deuteron_groups_into_three_bases() {
        // X0X1 alone, Y0Y1 alone, {Z0, Z1} together, constant separate.
        let grouped = group_qubit_wise(&deuteron_hamiltonian());
        assert!((grouped.constant - 5.907).abs() < 1e-12);
        assert_eq!(grouped.groups.len(), 3, "{:?}", grouped.groups);
        let sizes: Vec<usize> = {
            let mut v: Vec<usize> = grouped.groups.iter().map(|g| g.terms.len()).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(sizes, vec![1, 1, 2]);
    }

    #[test]
    fn grouping_covers_every_non_identity_term() {
        let h = deuteron_hamiltonian();
        let grouped = group_qubit_wise(&h);
        let grouped_terms: usize = grouped.groups.iter().map(|g| g.terms.len()).sum();
        assert_eq!(grouped_terms, h.terms().len() - 1);
    }

    #[test]
    fn merged_basis_covers_all_supports() {
        let h = crate::PauliSum::parse("1 Z0 + 1 Z1 + 1 Z0Z1").unwrap();
        let grouped = group_qubit_wise(&h);
        assert_eq!(grouped.groups.len(), 1);
        let basis = &grouped.groups[0].basis;
        assert_eq!(basis.on(0), Some(Pauli::Z));
        assert_eq!(basis.on(1), Some(Pauli::Z));
    }

    #[test]
    fn conflicting_terms_split() {
        let h = crate::PauliSum::parse("1 X0 + 1 Z0").unwrap();
        let grouped = group_qubit_wise(&h);
        assert_eq!(grouped.groups.len(), 2);
    }
}
