//! Property tests for the AcceleratorBuffer bookkeeping.

use proptest::prelude::*;
use qcor_xacc::AcceleratorBuffer;
use std::collections::BTreeMap;

fn counts_strategy() -> impl Strategy<Value = BTreeMap<String, usize>> {
    prop::collection::btree_map("[01]{2}", 1usize..500, 0..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_total_is_sum_of_parts(a in counts_strategy(), b in counts_strategy()) {
        let mut buf = AcceleratorBuffer::with_name("p", 2);
        buf.merge_counts(&a);
        buf.merge_counts(&b);
        let expect: usize = a.values().sum::<usize>() + b.values().sum::<usize>();
        prop_assert_eq!(buf.total_shots(), expect);
    }

    #[test]
    fn merge_order_does_not_matter(a in counts_strategy(), b in counts_strategy()) {
        let mut ab = AcceleratorBuffer::with_name("ab", 2);
        ab.merge_counts(&a);
        ab.merge_counts(&b);
        let mut ba = AcceleratorBuffer::with_name("ba", 2);
        ba.merge_counts(&b);
        ba.merge_counts(&a);
        prop_assert_eq!(ab.measurements(), ba.measurements());
    }

    #[test]
    fn probabilities_sum_to_one(a in counts_strategy()) {
        prop_assume!(!a.is_empty());
        let mut buf = AcceleratorBuffer::with_name("p", 2);
        buf.merge_counts(&a);
        let total: f64 = a.keys().map(|k| buf.probability(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exp_val_z_is_bounded(a in counts_strategy()) {
        let mut buf = AcceleratorBuffer::with_name("p", 2);
        buf.merge_counts(&a);
        let z = buf.exp_val_z();
        prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&z));
    }

    #[test]
    fn json_contains_every_bitstring(a in counts_strategy()) {
        let mut buf = AcceleratorBuffer::with_name("p", 2);
        buf.merge_counts(&a);
        let json = buf.to_json();
        for (bits, count) in &a {
            prop_assert!(json.contains(&format!("\"{bits}\": {count}")), "{json}");
        }
    }
}
