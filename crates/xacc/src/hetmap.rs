//! A small heterogeneous option map, standing in for XACC's
//! `HeterogeneousMap` that configures accelerators
//! (e.g. `{{"shots", 1024}, {"threads", 12}}`).

use std::collections::BTreeMap;

/// A value in a [`HetMap`].
#[derive(Debug, Clone, PartialEq)]
pub enum HetValue {
    /// Integer option.
    Int(i64),
    /// Floating-point option.
    Float(f64),
    /// String option.
    Str(String),
    /// Boolean option.
    Bool(bool),
}

impl From<i64> for HetValue {
    fn from(v: i64) -> Self {
        HetValue::Int(v)
    }
}
impl From<usize> for HetValue {
    fn from(v: usize) -> Self {
        HetValue::Int(v as i64)
    }
}
impl From<f64> for HetValue {
    fn from(v: f64) -> Self {
        HetValue::Float(v)
    }
}
impl From<&str> for HetValue {
    fn from(v: &str) -> Self {
        HetValue::Str(v.to_string())
    }
}
impl From<String> for HetValue {
    fn from(v: String) -> Self {
        HetValue::Str(v)
    }
}
impl From<bool> for HetValue {
    fn from(v: bool) -> Self {
        HetValue::Bool(v)
    }
}

/// String-keyed heterogeneous option map.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HetMap {
    entries: BTreeMap<String, HetValue>,
}

impl HetMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style insert.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<HetValue>) -> Self {
        self.entries.insert(key.into(), value.into());
        self
    }

    /// Insert a value.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<HetValue>) {
        self.entries.insert(key.into(), value.into());
    }

    /// Raw lookup.
    pub fn get(&self, key: &str) -> Option<&HetValue> {
        self.entries.get(key)
    }

    /// Remove a key, returning its previous value.
    pub fn remove(&mut self, key: &str) -> Option<HetValue> {
        self.entries.remove(key)
    }

    /// Integer lookup (accepts `Int`; `Float` values with zero fraction).
    pub fn get_int(&self, key: &str) -> Option<i64> {
        match self.entries.get(key)? {
            HetValue::Int(v) => Some(*v),
            HetValue::Float(v) if v.fract() == 0.0 => Some(*v as i64),
            _ => None,
        }
    }

    /// Non-negative integer lookup.
    pub fn get_usize(&self, key: &str) -> Option<usize> {
        self.get_int(key).and_then(|v| usize::try_from(v).ok())
    }

    /// Float lookup (accepts `Float` or `Int`).
    pub fn get_float(&self, key: &str) -> Option<f64> {
        match self.entries.get(key)? {
            HetValue::Float(v) => Some(*v),
            HetValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// String lookup.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.entries.get(key)? {
            HetValue::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Bool lookup.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        match self.entries.get(key)? {
            HetValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no options are set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let m = HetMap::new()
            .with("shots", 1024usize)
            .with("noise", 0.01)
            .with("backend", "qpp")
            .with("verbose", true);
        assert_eq!(m.get_usize("shots"), Some(1024));
        assert_eq!(m.get_float("noise"), Some(0.01));
        assert_eq!(m.get_str("backend"), Some("qpp"));
        assert_eq!(m.get_bool("verbose"), Some(true));
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn numeric_coercions() {
        let m = HetMap::new().with("a", 3i64).with("b", 2.0);
        assert_eq!(m.get_float("a"), Some(3.0));
        assert_eq!(m.get_int("b"), Some(2));
        assert_eq!(m.get_usize("missing"), None);
    }

    #[test]
    fn negative_not_usize() {
        let m = HetMap::new().with("n", -1i64);
        assert_eq!(m.get_int("n"), Some(-1));
        assert_eq!(m.get_usize("n"), None);
    }

    #[test]
    fn type_mismatch_returns_none() {
        let m = HetMap::new().with("s", "text");
        assert_eq!(m.get_int("s"), None);
        assert_eq!(m.get_bool("s"), None);
    }
}
