//! The `Accelerator` trait: the XACC abstraction over quantum backends.

use crate::buffer::AcceleratorBuffer;
use crate::XaccError;
use qcor_circuit::Circuit;

/// Per-execution options.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Number of repetitions of the kernel.
    pub shots: usize,
    /// RNG seed (`None` = OS entropy). Backends must produce identical
    /// counts for identical seeds.
    pub seed: Option<u64>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { shots: 1024, seed: None }
    }
}

impl ExecOptions {
    /// Options with an explicit shot count.
    pub fn with_shots(shots: usize) -> Self {
        ExecOptions { shots, ..Default::default() }
    }

    /// Builder-style seed.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }
}

/// A quantum execution resource (hardware QPU or simulator).
///
/// In the paper's machine model (Fig. 1) several CPU threads may drive one
/// or more accelerators; the thread-safety story of this reproduction
/// revolves around *which instance* of an `Accelerator` each thread talks
/// to (see [`crate::registry`]).
pub trait Accelerator: Send + Sync {
    /// Service name (e.g. `"qpp"`).
    fn name(&self) -> String;

    /// Execute `circuit` for `opts.shots` repetitions, accumulating
    /// measurement counts into `buffer`.
    fn execute(
        &self,
        buffer: &mut AcceleratorBuffer,
        circuit: &Circuit,
        opts: &ExecOptions,
    ) -> Result<(), XaccError>;

    /// Number of simulator threads this instance uses for one kernel
    /// (the `OMP_NUM_THREADS` analogue). Hardware backends report 1.
    fn num_threads(&self) -> usize {
        1
    }

    /// Whether fresh instances of this service can be constructed per call
    /// (the paper's `xacc::Cloneable`). Singleton services return `false`
    /// and are shared — the §V-A.2 data-race hazard.
    fn is_cloneable(&self) -> bool {
        true
    }
}
