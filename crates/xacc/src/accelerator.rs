//! The `Accelerator` trait: the XACC abstraction over quantum backends.

use crate::buffer::AcceleratorBuffer;
use crate::XaccError;
use qcor_circuit::Circuit;

/// Per-execution options.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Number of repetitions of the kernel.
    pub shots: usize,
    /// RNG seed (`None` = OS entropy). Backends must produce identical
    /// counts for identical seeds.
    pub seed: Option<u64>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { shots: 1024, seed: None }
    }
}

impl ExecOptions {
    /// Options with an explicit shot count.
    pub fn with_shots(shots: usize) -> Self {
        ExecOptions { shots, ..Default::default() }
    }

    /// Builder-style seed.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }
}

/// What a backend is good for — the coarse routing classes the
/// [`crate::registry`] exposes so a router (the runtime's `QPUManager`)
/// can steer workloads by requirement ("any ideal simulator", "a noisy
/// sampler", …) instead of by hard-coded service name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BackendCapability {
    /// Ideal (noise-free) state-vector sampling.
    Ideal,
    /// Stochastic per-shot noise (depolarizing, readout error, …).
    Noisy,
    /// Exact density-matrix evolution under a noise model.
    Density,
    /// Network-attached execution with queueing/transfer latency.
    Remote,
}

impl BackendCapability {
    /// Parse the lowercase capability names used in backend params
    /// (`"ideal"`, `"noisy"`, `"density"`, `"remote"`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "ideal" => Some(BackendCapability::Ideal),
            "noisy" => Some(BackendCapability::Noisy),
            "density" => Some(BackendCapability::Density),
            "remote" => Some(BackendCapability::Remote),
            _ => None,
        }
    }
}

impl std::fmt::Display for BackendCapability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BackendCapability::Ideal => "ideal",
            BackendCapability::Noisy => "noisy",
            BackendCapability::Density => "density",
            BackendCapability::Remote => "remote",
        })
    }
}

/// A quantum execution resource (hardware QPU or simulator).
///
/// In the paper's machine model (Fig. 1) several CPU threads may drive one
/// or more accelerators; the thread-safety story of this reproduction
/// revolves around *which instance* of an `Accelerator` each thread talks
/// to (see [`crate::registry`]).
pub trait Accelerator: Send + Sync {
    /// Service name (e.g. `"qpp"`).
    fn name(&self) -> String;

    /// Execute `circuit` for `opts.shots` repetitions, accumulating
    /// measurement counts into `buffer`.
    fn execute(
        &self,
        buffer: &mut AcceleratorBuffer,
        circuit: &Circuit,
        opts: &ExecOptions,
    ) -> Result<(), XaccError>;

    /// Number of simulator threads this instance uses for one kernel
    /// (the `OMP_NUM_THREADS` analogue). Hardware backends report 1.
    fn num_threads(&self) -> usize {
        1
    }

    /// Whether fresh instances of this service can be constructed per call
    /// (the paper's `xacc::Cloneable`). Singleton services return `false`
    /// and are shared — the §V-A.2 data-race hazard.
    fn is_cloneable(&self) -> bool {
        true
    }

    /// The routing class of this backend (defaults to ideal simulation).
    /// Must agree with the capability the service was registered under.
    fn capability(&self) -> BackendCapability {
        BackendCapability::Ideal
    }
}
