//! The service registry: `xacc::getAccelerator` and friends.
//!
//! Two registration modes reproduce the two behaviours the paper contrasts
//! in §V:
//!
//! * **Factory (cloneable)** — [`get_accelerator`] invokes the factory and
//!   returns a *fresh instance per call*. This is the paper's fix: making
//!   `Accelerator` derive `xacc::Cloneable` so concurrent threads never
//!   share backend state.
//! * **Singleton** — [`get_accelerator`] returns the *same shared instance*
//!   from every call, which is how the original
//!   `xacc::getService<Accelerator>()` behaved for non-Cloneable services.
//!   Two threads driving it concurrently interleave their gate streams —
//!   the data race of §V-A.2 (see the `qpp-legacy-shared` backend).

use crate::accelerator::Accelerator;
use crate::backends;
use crate::hetmap::HetMap;
use crate::XaccError;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

type Factory = Box<dyn Fn(&HetMap) -> Arc<dyn Accelerator> + Send + Sync>;

enum Entry {
    Factory(Factory),
    Singleton(Arc<dyn Accelerator>),
}

/// A named collection of accelerator services.
#[derive(Default)]
pub struct ServiceRegistry {
    entries: RwLock<HashMap<String, Entry>>,
}

impl ServiceRegistry {
    /// An empty registry (the global one comes pre-populated; see
    /// [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a cloneable service: every lookup constructs a fresh
    /// instance through `factory`.
    pub fn register_factory(
        &self,
        name: impl Into<String>,
        factory: impl Fn(&HetMap) -> Arc<dyn Accelerator> + Send + Sync + 'static,
    ) {
        self.entries.write().insert(name.into(), Entry::Factory(Box::new(factory)));
    }

    /// Register a singleton service: every lookup returns this same
    /// instance.
    pub fn register_singleton(&self, name: impl Into<String>, instance: Arc<dyn Accelerator>) {
        self.entries.write().insert(name.into(), Entry::Singleton(instance));
    }

    /// Look up an accelerator. Factory services receive `params`;
    /// singleton services ignore them (they were configured at
    /// registration — another aspect of why shared services compose badly
    /// with threads).
    pub fn get_accelerator(&self, name: &str, params: &HetMap) -> Result<Arc<dyn Accelerator>, XaccError> {
        let entries = self.entries.read();
        match entries.get(name) {
            Some(Entry::Factory(factory)) => Ok(factory(params)),
            Some(Entry::Singleton(instance)) => Ok(Arc::clone(instance)),
            None => Err(XaccError::UnknownService(name.to_string())),
        }
    }

    /// Names of all registered services, sorted.
    pub fn service_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// True when `name` resolves to a cloneable (factory) service.
    pub fn is_cloneable(&self, name: &str) -> Option<bool> {
        match self.entries.read().get(name)? {
            Entry::Factory(_) => Some(true),
            Entry::Singleton(_) => Some(false),
        }
    }
}

static GLOBAL: OnceLock<ServiceRegistry> = OnceLock::new();

/// The process-wide registry, pre-populated with the built-in backends:
///
/// | name                | mode      | backend |
/// |---------------------|-----------|---------|
/// | `qpp`               | cloneable | state-vector simulator |
/// | `qpp-noisy`         | cloneable | per-shot depolarizing + readout error |
/// | `qpp-density`       | cloneable | exact density-matrix simulation with a noise model |
/// | `remote`            | cloneable | latency-simulating wrapper |
/// | `qpp-legacy-shared` | singleton | shared-gate-queue race reproduction |
pub fn global() -> &'static ServiceRegistry {
    GLOBAL.get_or_init(|| {
        let reg = ServiceRegistry::new();
        reg.register_factory("qpp", |params| {
            Arc::new(backends::QppAccelerator::from_params(params)) as Arc<dyn Accelerator>
        });
        reg.register_factory("qpp-noisy", |params| {
            Arc::new(backends::NoisyQppAccelerator::from_params(params)) as Arc<dyn Accelerator>
        });
        reg.register_factory("remote", |params| {
            Arc::new(backends::RemoteAccelerator::from_params(params)) as Arc<dyn Accelerator>
        });
        reg.register_factory("qpp-density", |params| {
            Arc::new(backends::DensityAccelerator::from_params(params)) as Arc<dyn Accelerator>
        });
        reg.register_singleton(
            "qpp-legacy-shared",
            Arc::new(backends::SharedQueueAccelerator::new(1)) as Arc<dyn Accelerator>,
        );
        reg
    })
}

/// `xacc::getAccelerator(name)` with options — resolves against the global
/// registry.
pub fn get_accelerator(name: &str, params: &HetMap) -> Result<Arc<dyn Accelerator>, XaccError> {
    global().get_accelerator(name, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_has_builtin_services() {
        let names = global().service_names();
        for expected in ["qpp", "qpp-noisy", "qpp-density", "remote", "qpp-legacy-shared"] {
            assert!(names.iter().any(|n| n == expected), "{expected} missing from {names:?}");
        }
    }

    #[test]
    fn factory_services_return_fresh_instances() {
        let params = HetMap::new().with("threads", 1usize);
        let a = get_accelerator("qpp", &params).unwrap();
        let b = get_accelerator("qpp", &params).unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "cloneable service must construct per call");
        assert_eq!(global().is_cloneable("qpp"), Some(true));
    }

    #[test]
    fn singleton_services_return_the_same_instance() {
        let params = HetMap::new();
        let a = get_accelerator("qpp-legacy-shared", &params).unwrap();
        let b = get_accelerator("qpp-legacy-shared", &params).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "singleton service must be shared");
        assert_eq!(global().is_cloneable("qpp-legacy-shared"), Some(false));
    }

    #[test]
    fn unknown_service_errors() {
        match get_accelerator("nonexistent", &HetMap::new()) {
            Err(err) => assert_eq!(err, XaccError::UnknownService("nonexistent".to_string())),
            Ok(_) => panic!("lookup of an unknown service must fail"),
        }
    }

    #[test]
    fn custom_registration_works() {
        let reg = ServiceRegistry::new();
        reg.register_factory("custom", |_params| {
            Arc::new(backends::QppAccelerator::new(1)) as Arc<dyn Accelerator>
        });
        assert!(reg.get_accelerator("custom", &HetMap::new()).is_ok());
        assert_eq!(reg.service_names(), vec!["custom".to_string()]);
    }

    #[test]
    fn factory_receives_params() {
        let params = HetMap::new().with("threads", 3usize);
        let acc = get_accelerator("qpp", &params).unwrap();
        assert_eq!(acc.num_threads(), 3);
    }
}
