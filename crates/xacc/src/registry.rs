//! The service registry: `xacc::getAccelerator` and friends.
//!
//! Two registration modes reproduce the two behaviours the paper contrasts
//! in §V:
//!
//! * **Factory (cloneable)** — [`get_accelerator`] invokes the factory and
//!   returns a *fresh instance per call*. This is the paper's fix: making
//!   `Accelerator` derive `xacc::Cloneable` so concurrent threads never
//!   share backend state.
//! * **Singleton** — [`get_accelerator`] returns the *same shared instance*
//!   from every call, which is how the original
//!   `xacc::getService<Accelerator>()` behaved for non-Cloneable services.
//!   Two threads driving it concurrently interleave their gate streams —
//!   the data race of §V-A.2 (see the `qpp-legacy-shared` backend).

use crate::accelerator::{Accelerator, BackendCapability};
use crate::backends;
use crate::hetmap::HetMap;
use crate::XaccError;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Factories are **fallible**: bad construction parameters surface as an
/// `Err` through [`get_accelerator`] (and therefore through
/// `quantum::initialize`) instead of panicking inside the factory — the
/// same contract the routing parameters follow.
type Factory = Box<dyn Fn(&HetMap) -> Result<Arc<dyn Accelerator>, XaccError> + Send + Sync>;

enum EntryKind {
    Factory(Factory),
    Singleton(Arc<dyn Accelerator>),
}

struct Entry {
    kind: EntryKind,
    capability: BackendCapability,
}

/// A named collection of accelerator services.
#[derive(Default)]
pub struct ServiceRegistry {
    entries: RwLock<HashMap<String, Entry>>,
    /// Live in-flight execution gauges per service name, maintained by
    /// [`ServiceRegistry::track_load`] guards. Kept separate from `entries`
    /// so gauges survive re-registration and lookups never block on the
    /// entry lock.
    loads: RwLock<HashMap<String, Arc<AtomicUsize>>>,
}

/// RAII handle for one in-flight execution against a backend: created by
/// [`ServiceRegistry::track_load`], it increments the backend's live queue
/// depth and decrements it again on drop (including on panic), so the
/// gauge can never leak an execution.
#[must_use = "dropping the guard immediately ends the tracked execution"]
pub struct LoadGuard(Arc<AtomicUsize>);

impl Drop for LoadGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

impl std::fmt::Debug for LoadGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("LoadGuard").field(&self.0.load(Ordering::Acquire)).finish()
    }
}

impl ServiceRegistry {
    /// An empty registry (the global one comes pre-populated; see
    /// [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a cloneable service: every lookup constructs a fresh
    /// instance through `factory`, which may reject bad parameters with an
    /// `Err` (surfaced through [`get_accelerator`]). The service is
    /// advertised as [`BackendCapability::Ideal`]; use
    /// [`ServiceRegistry::register_factory_with_capability`] to annotate a
    /// different routing class.
    pub fn register_factory(
        &self,
        name: impl Into<String>,
        factory: impl Fn(&HetMap) -> Result<Arc<dyn Accelerator>, XaccError> + Send + Sync + 'static,
    ) {
        self.register_factory_with_capability(name, BackendCapability::Ideal, factory);
    }

    /// Register a cloneable service advertised under an explicit routing
    /// capability (what a capability-based `RoutingPolicy` matches on).
    pub fn register_factory_with_capability(
        &self,
        name: impl Into<String>,
        capability: BackendCapability,
        factory: impl Fn(&HetMap) -> Result<Arc<dyn Accelerator>, XaccError> + Send + Sync + 'static,
    ) {
        self.entries
            .write()
            .insert(name.into(), Entry { kind: EntryKind::Factory(Box::new(factory)), capability });
    }

    /// Register a singleton service: every lookup returns this same
    /// instance. Its capability is read off the instance.
    pub fn register_singleton(&self, name: impl Into<String>, instance: Arc<dyn Accelerator>) {
        let capability = instance.capability();
        self.entries.write().insert(name.into(), Entry { kind: EntryKind::Singleton(instance), capability });
    }

    /// Look up an accelerator. Factory services receive `params` and may
    /// reject them with an `Err`; singleton services ignore them (they
    /// were configured at registration — another aspect of why shared
    /// services compose badly with threads).
    pub fn get_accelerator(&self, name: &str, params: &HetMap) -> Result<Arc<dyn Accelerator>, XaccError> {
        let entries = self.entries.read();
        match entries.get(name).map(|e| &e.kind) {
            Some(EntryKind::Factory(factory)) => factory(params),
            Some(EntryKind::Singleton(instance)) => Ok(Arc::clone(instance)),
            None => Err(XaccError::UnknownService(name.to_string())),
        }
    }

    /// Names of all registered services, sorted.
    pub fn service_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// True when `name` resolves to a cloneable (factory) service.
    pub fn is_cloneable(&self, name: &str) -> Option<bool> {
        match &self.entries.read().get(name)?.kind {
            EntryKind::Factory(_) => Some(true),
            EntryKind::Singleton(_) => Some(false),
        }
    }

    /// The capability `name` was registered under.
    pub fn capability_of(&self, name: &str) -> Option<BackendCapability> {
        self.entries.read().get(name).map(|e| e.capability)
    }

    /// Sorted names of the **cloneable** services advertising `capability`.
    /// Singletons are excluded on purpose: a router handing the same shared
    /// instance to many threads would reintroduce the §V-A.2 race.
    pub fn cloneable_services_with_capability(&self, capability: BackendCapability) -> Vec<String> {
        let entries = self.entries.read();
        let mut names: Vec<String> = entries
            .iter()
            .filter(|(_, e)| e.capability == capability && matches!(e.kind, EntryKind::Factory(_)))
            .map(|(name, _)| name.clone())
            .collect();
        names.sort();
        names
    }

    /// Begin one tracked execution against `name`: the backend's live
    /// queue-depth gauge is incremented until the returned guard drops.
    /// The name does not need to be registered — custom execution layers
    /// may track logical backends of their own.
    pub fn track_load(&self, name: &str) -> LoadGuard {
        let gauge = {
            let loads = self.loads.read();
            loads.get(name).cloned()
        };
        let gauge = match gauge {
            Some(gauge) => gauge,
            None => {
                let mut loads = self.loads.write();
                Arc::clone(loads.entry(name.to_string()).or_default())
            }
        };
        gauge.fetch_add(1, Ordering::AcqRel);
        LoadGuard(gauge)
    }

    /// The live queue depth of `name`: how many tracked executions are in
    /// flight right now. Zero for names never tracked.
    pub fn load_of(&self, name: &str) -> usize {
        self.loads.read().get(name).map_or(0, |g| g.load(Ordering::Acquire))
    }

    /// Snapshot of every tracked backend's live queue depth, sorted by
    /// name (the introspection endpoint's `backends` section).
    pub fn backend_loads(&self) -> Vec<(String, usize)> {
        let loads = self.loads.read();
        let mut out: Vec<(String, usize)> =
            loads.iter().map(|(name, g)| (name.clone(), g.load(Ordering::Acquire))).collect();
        drop(loads);
        out.sort();
        out
    }
}

static GLOBAL: OnceLock<ServiceRegistry> = OnceLock::new();

/// The process-wide registry, pre-populated with the built-in backends:
///
/// | name                | mode      | backend |
/// |---------------------|-----------|---------|
/// | `qpp`               | cloneable | state-vector simulator |
/// | `qpp-noisy`         | cloneable | per-shot depolarizing + readout error |
/// | `qpp-density`       | cloneable | exact density-matrix simulation with a noise model |
/// | `remote`            | cloneable | latency-simulating wrapper |
/// | `qpp-legacy-shared` | singleton | shared-gate-queue race reproduction |
pub fn global() -> &'static ServiceRegistry {
    GLOBAL.get_or_init(|| {
        let reg = ServiceRegistry::new();
        reg.register_factory_with_capability("qpp", BackendCapability::Ideal, |params| {
            Ok(Arc::new(backends::QppAccelerator::from_params(params)?) as Arc<dyn Accelerator>)
        });
        reg.register_factory_with_capability("qpp-noisy", BackendCapability::Noisy, |params| {
            Ok(Arc::new(backends::NoisyQppAccelerator::from_params(params)?) as Arc<dyn Accelerator>)
        });
        reg.register_factory_with_capability("remote", BackendCapability::Remote, |params| {
            Ok(Arc::new(backends::RemoteAccelerator::from_params(params)) as Arc<dyn Accelerator>)
        });
        reg.register_factory_with_capability("qpp-density", BackendCapability::Density, |params| {
            Ok(Arc::new(backends::DensityAccelerator::from_params(params)?) as Arc<dyn Accelerator>)
        });
        reg.register_singleton(
            "qpp-legacy-shared",
            Arc::new(backends::SharedQueueAccelerator::new(1)) as Arc<dyn Accelerator>,
        );
        reg
    })
}

/// `xacc::getAccelerator(name)` with options — resolves against the global
/// registry.
pub fn get_accelerator(name: &str, params: &HetMap) -> Result<Arc<dyn Accelerator>, XaccError> {
    global().get_accelerator(name, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_has_builtin_services() {
        let names = global().service_names();
        for expected in ["qpp", "qpp-noisy", "qpp-density", "remote", "qpp-legacy-shared"] {
            assert!(names.iter().any(|n| n == expected), "{expected} missing from {names:?}");
        }
    }

    #[test]
    fn factory_services_return_fresh_instances() {
        let params = HetMap::new().with("threads", 1usize);
        let a = get_accelerator("qpp", &params).unwrap();
        let b = get_accelerator("qpp", &params).unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "cloneable service must construct per call");
        assert_eq!(global().is_cloneable("qpp"), Some(true));
    }

    #[test]
    fn singleton_services_return_the_same_instance() {
        let params = HetMap::new();
        let a = get_accelerator("qpp-legacy-shared", &params).unwrap();
        let b = get_accelerator("qpp-legacy-shared", &params).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "singleton service must be shared");
        assert_eq!(global().is_cloneable("qpp-legacy-shared"), Some(false));
    }

    #[test]
    fn unknown_service_errors() {
        match get_accelerator("nonexistent", &HetMap::new()) {
            Err(err) => assert_eq!(err, XaccError::UnknownService("nonexistent".to_string())),
            Ok(_) => panic!("lookup of an unknown service must fail"),
        }
    }

    #[test]
    fn custom_registration_works() {
        let reg = ServiceRegistry::new();
        reg.register_factory("custom", |_params| {
            Ok(Arc::new(backends::QppAccelerator::new(1)) as Arc<dyn Accelerator>)
        });
        assert!(reg.get_accelerator("custom", &HetMap::new()).is_ok());
        assert_eq!(reg.service_names(), vec!["custom".to_string()]);
    }

    #[test]
    fn factory_param_rejection_surfaces_as_err() {
        // Fallible construction: qpp's unknown-granularity rejection must
        // come back as an Err from the lookup, not a panic in the factory.
        let params = HetMap::new().with("threads", 1usize).with("granularity", "bogus");
        match get_accelerator("qpp", &params) {
            Err(XaccError::InvalidParam(msg)) => assert!(msg.contains("granularity"), "{msg}"),
            Err(other) => panic!("expected InvalidParam, got {other:?}"),
            Ok(_) => panic!("expected InvalidParam, got an instance"),
        }
    }

    #[test]
    fn factory_receives_params() {
        let params = HetMap::new().with("threads", 3usize);
        let acc = get_accelerator("qpp", &params).unwrap();
        assert_eq!(acc.num_threads(), 3);
    }

    #[test]
    fn builtin_capability_metadata_matches_instances() {
        // The registry's advertised capability must agree with what a
        // constructed instance reports, or capability routing would lie.
        let params = HetMap::new().with("threads", 1usize);
        for name in global().service_names() {
            let advertised = global().capability_of(&name).unwrap();
            let instance = get_accelerator(&name, &params).unwrap();
            assert_eq!(advertised, instance.capability(), "capability mismatch for `{name}`");
        }
    }

    #[test]
    fn capability_lookup_excludes_singletons() {
        // `qpp-legacy-shared` is Ideal but a singleton: routing over Ideal
        // must never hand out the shared race-prone instance.
        let ideal = global().cloneable_services_with_capability(BackendCapability::Ideal);
        assert!(ideal.iter().any(|n| n == "qpp"), "{ideal:?}");
        assert!(!ideal.iter().any(|n| n == "qpp-legacy-shared"), "{ideal:?}");
        assert_eq!(
            global().cloneable_services_with_capability(BackendCapability::Noisy),
            vec!["qpp-noisy".to_string()]
        );
        assert_eq!(
            global().cloneable_services_with_capability(BackendCapability::Density),
            vec!["qpp-density".to_string()]
        );
        assert_eq!(
            global().cloneable_services_with_capability(BackendCapability::Remote),
            vec!["remote".to_string()]
        );
    }

    #[test]
    fn load_guards_track_inflight_depth() {
        let reg = ServiceRegistry::new();
        assert_eq!(reg.load_of("qpp"), 0);
        let a = reg.track_load("qpp");
        let b = reg.track_load("qpp");
        let other = reg.track_load("remote");
        assert_eq!(reg.load_of("qpp"), 2);
        assert_eq!(reg.load_of("remote"), 1);
        assert_eq!(
            reg.backend_loads(),
            vec![("qpp".to_string(), 2), ("remote".to_string(), 1)],
            "snapshot must be sorted by name"
        );
        drop(a);
        assert_eq!(reg.load_of("qpp"), 1);
        drop(b);
        drop(other);
        assert_eq!(reg.load_of("qpp"), 0);
        assert_eq!(reg.load_of("remote"), 0);
        assert_eq!(reg.load_of("never-tracked"), 0);
    }

    #[test]
    fn capability_parse_roundtrips() {
        for cap in [
            BackendCapability::Ideal,
            BackendCapability::Noisy,
            BackendCapability::Density,
            BackendCapability::Remote,
        ] {
            assert_eq!(BackendCapability::parse(&cap.to_string()), Some(cap));
        }
        assert_eq!(BackendCapability::parse("annealer"), None);
    }
}
