//! # qcor-xacc — service framework and accelerator backends
//!
//! QCOR sits on XACC, a system-level software framework that provides the
//! `Accelerator` abstraction, the `AcceleratorBuffer` results container, and
//! a service registry (`xacc::getService<T>()` / `xacc::getAccelerator()`).
//! This crate rebuilds those pieces:
//!
//! * [`AcceleratorBuffer`] — named qubit-register buffer accumulating
//!   measurement counts, printable in the JSON-ish format of paper
//!   Listing 2,
//! * [`Accelerator`] — the backend trait,
//! * [`registry`] — the service registry. Services registered through a
//!   *factory* are **cloneable**: every [`registry::get_accelerator`] call
//!   returns a fresh instance (the fix the paper applies in §V-B.2).
//!   Services registered as a *singleton* return the **same** shared
//!   instance from every call — exactly the pre-fix behaviour whose data
//!   race the paper describes in §V-A.2,
//! * [`backends`] — `qpp` (the Quantum++-analogue state-vector simulator
//!   backend), `qpp-noisy` (depolarizing + readout error), `remote`
//!   (simulated network-latency accelerator), and `qpp-legacy-shared`
//!   (a singleton backend with a shared gate queue that reproduces the
//!   interleaved-circuit corruption of the original implementation).

pub mod accelerator;
pub mod backends;
mod buffer;
mod hetmap;
pub mod registry;

pub use accelerator::{Accelerator, BackendCapability, ExecOptions};
pub use buffer::AcceleratorBuffer;
pub use hetmap::{HetMap, HetValue};

/// Errors surfaced by accelerators and the registry.
#[derive(Debug, Clone, PartialEq)]
pub enum XaccError {
    /// No service registered under the requested name.
    UnknownService(String),
    /// The backend rejected the circuit or configuration.
    Execution(String),
    /// A factory rejected its construction parameters. Surfaced as an
    /// `Err` through `get_accelerator`/`initialize` — fallible
    /// construction, not a panic deep inside the factory.
    InvalidParam(String),
}

impl std::fmt::Display for XaccError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XaccError::UnknownService(name) => write!(f, "no accelerator service named `{name}`"),
            XaccError::Execution(msg) => write!(f, "accelerator execution failed: {msg}"),
            XaccError::InvalidParam(msg) => write!(f, "invalid accelerator parameter: {msg}"),
        }
    }
}

impl std::error::Error for XaccError {}
