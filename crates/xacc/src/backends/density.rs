//! The `qpp-density` backend: exact mixed-state simulation with a
//! configurable per-gate noise model, sampling shot counts from the exact
//! outcome distribution.

use crate::accelerator::{Accelerator, BackendCapability, ExecOptions};
use crate::buffer::AcceleratorBuffer;
use crate::hetmap::HetMap;
use crate::XaccError;
use qcor_circuit::Circuit;
use qcor_pool::ThreadPool;
use qcor_sim::{DensityMatrix, NoiseModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Exact density-matrix simulator backend.
pub struct DensityAccelerator {
    pool: Arc<ThreadPool>,
    noise: NoiseModel,
    /// Probability a measured bit is reported flipped, convolved exactly
    /// onto the outcome distribution before sampling.
    p_readout: f64,
}

impl DensityAccelerator {
    /// A density backend with the given noise model.
    pub fn new(threads: usize, noise: NoiseModel) -> Self {
        noise.validate().expect("invalid noise model");
        DensityAccelerator {
            pool: Arc::new(qcor_pool::PoolBuilder::new().num_threads(threads).name("qpp-density").build()),
            noise,
            p_readout: 0.0,
        }
    }

    /// Construct from registry params: `threads`, `depolarizing`,
    /// `dephasing`, `amplitude-damping` (all default 0) and
    /// `readout-error` (default 0). Bad values are rejected with
    /// [`XaccError::InvalidParam`].
    pub fn from_params(params: &HetMap) -> Result<Self, XaccError> {
        let noise = NoiseModel {
            depolarizing: params.get_float("depolarizing").unwrap_or(0.0),
            dephasing: params.get_float("dephasing").unwrap_or(0.0),
            amplitude_damping: params.get_float("amplitude-damping").unwrap_or(0.0),
        };
        noise.validate().map_err(XaccError::InvalidParam)?;
        let p_readout = params.get_float("readout-error").unwrap_or(0.0);
        if !(0.0..=1.0).contains(&p_readout) {
            return Err(XaccError::InvalidParam(format!(
                "readout-error probability {p_readout} outside [0, 1]"
            )));
        }
        let mut acc = Self::new(params.get_usize("threads").unwrap_or(1).max(1), noise);
        acc.p_readout = p_readout;
        Ok(acc)
    }

    /// The configured noise model.
    pub fn noise(&self) -> NoiseModel {
        self.noise
    }
}

impl Accelerator for DensityAccelerator {
    fn name(&self) -> String {
        "qpp-density".to_string()
    }

    fn capability(&self) -> BackendCapability {
        BackendCapability::Density
    }

    fn execute(
        &self,
        buffer: &mut AcceleratorBuffer,
        circuit: &Circuit,
        opts: &ExecOptions,
    ) -> Result<(), XaccError> {
        if circuit.num_qubits() > buffer.size() {
            return Err(XaccError::Execution(format!(
                "kernel uses {} qubits but the buffer has {}",
                circuit.num_qubits(),
                buffer.size()
            )));
        }
        let dist = DensityMatrix::run_noisy_circuit(circuit, Arc::clone(&self.pool), &self.noise)
            .map_err(XaccError::Execution)?;
        let dist = qcor_sim::apply_readout_error(&dist, self.p_readout);
        // Sample `shots` outcomes from the exact distribution.
        let outcomes: Vec<(&String, f64)> = dist.iter().map(|(k, &p)| (k, p)).collect();
        let mut rng = match opts.seed {
            Some(s) => StdRng::seed_from_u64(s),
            None => StdRng::from_entropy(),
        };
        for _ in 0..opts.shots {
            let mut r: f64 = rng.gen();
            let mut chosen = outcomes.last().map(|(k, _)| (*k).clone()).unwrap_or_default();
            for (key, p) in &outcomes {
                if r < *p {
                    chosen = (*key).clone();
                    break;
                }
                r -= *p;
            }
            buffer.add_count(chosen, 1);
        }
        Ok(())
    }

    fn num_threads(&self) -> usize {
        self.pool.num_threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcor_circuit::library;

    #[test]
    fn noiseless_bell_counts_are_clean() {
        let acc = DensityAccelerator::new(1, NoiseModel::default());
        let mut buf = AcceleratorBuffer::with_name("b", 2);
        acc.execute(&mut buf, &library::bell_kernel(), &ExecOptions::with_shots(512).seeded(1)).unwrap();
        assert_eq!(buf.total_shots(), 512);
        assert!(buf.measurements().keys().all(|k| k == "00" || k == "11"));
    }

    #[test]
    fn depolarizing_noise_leaks_counts() {
        let noise = NoiseModel { depolarizing: 0.05, ..Default::default() };
        let acc = DensityAccelerator::new(1, noise);
        let mut buf = AcceleratorBuffer::with_name("b", 2);
        acc.execute(&mut buf, &library::bell_kernel(), &ExecOptions::with_shots(4096).seeded(2)).unwrap();
        let clean = buf.probability("00") + buf.probability("11");
        assert!(clean < 0.999 && clean > 0.8, "clean mass {clean}");
    }

    #[test]
    fn agreement_with_per_shot_noisy_backend() {
        // The exact-density and trajectory (per-shot) noisy backends must
        // agree statistically on the same noise strength.
        let p = 0.03;
        let circuit = library::ghz_kernel(3);
        let density = DensityAccelerator::new(1, NoiseModel { depolarizing: p, ..Default::default() });
        let trajectory = crate::backends::NoisyQppAccelerator::new(1, p, 0.0);
        let mut a = AcceleratorBuffer::with_name("a", 3);
        let mut b = AcceleratorBuffer::with_name("b", 3);
        density.execute(&mut a, &circuit, &ExecOptions::with_shots(8192).seeded(3)).unwrap();
        trajectory.execute(&mut b, &circuit, &ExecOptions::with_shots(8192).seeded(4)).unwrap();
        let clean_a = a.probability("000") + a.probability("111");
        let clean_b = b.probability("000") + b.probability("111");
        assert!((clean_a - clean_b).abs() < 0.05, "exact {clean_a} vs trajectory {clean_b}");
    }

    #[test]
    fn seeded_counts_are_deterministic() {
        let acc = DensityAccelerator::new(1, NoiseModel { dephasing: 0.1, ..Default::default() });
        let opts = ExecOptions::with_shots(128).seeded(9);
        let mut a = AcceleratorBuffer::with_name("a", 2);
        let mut b = AcceleratorBuffer::with_name("b", 2);
        acc.execute(&mut a, &library::bell_kernel(), &opts).unwrap();
        acc.execute(&mut b, &library::bell_kernel(), &opts).unwrap();
        assert_eq!(a.measurements(), b.measurements());
    }
}
