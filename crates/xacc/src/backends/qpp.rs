//! The `qpp` backend: the Quantum++-analogue state-vector simulator,
//! wrapped as an [`Accelerator`].
//!
//! Each instance owns its own thread pool, so distinct instances obtained
//! from the cloneable factory partition the machine's cores the way the
//! paper's per-kernel `OMP_NUM_THREADS` settings do.

use crate::accelerator::{Accelerator, ExecOptions};
use crate::buffer::AcceleratorBuffer;
use crate::hetmap::HetMap;
use crate::XaccError;
use qcor_circuit::Circuit;
use qcor_pool::ThreadPool;
use qcor_sim::{run_shots, Granularity, RunConfig};
use std::sync::Arc;

/// State-vector simulator backend.
pub struct QppAccelerator {
    pool: Arc<ThreadPool>,
    par_threshold: usize,
    /// Explicit shots-per-chunk for the batched shot scheduler
    /// (`None` = adaptive granularity).
    chunk_shots: Option<usize>,
    /// Chunk-sizing policy when `chunk_shots` is unset.
    granularity: Granularity,
}

impl QppAccelerator {
    /// A backend simulating with `threads` simulator threads.
    pub fn new(threads: usize) -> Self {
        Self::with_pool(Arc::new(qcor_pool::PoolBuilder::new().num_threads(threads).name("qpp").build()))
    }

    /// A backend sharing an existing pool.
    pub fn with_pool(pool: Arc<ThreadPool>) -> Self {
        QppAccelerator { pool, par_threshold: 2, chunk_shots: None, granularity: Granularity::Auto }
    }

    /// Construct from registry params: `threads` (default: all cores or
    /// `QCOR_NUM_THREADS`), `par-threshold` (see
    /// [`qcor_sim::StateVector::set_par_threshold`]), `chunk-shots`
    /// (explicit scheduler chunk size) and `granularity`
    /// (`"auto"` | `"sequential"`).
    pub fn from_params(params: &HetMap) -> Self {
        let threads = params.get_usize("threads").unwrap_or_else(qcor_pool::num_threads_from_env);
        let mut acc = Self::new(threads.max(1));
        if let Some(t) = params.get_usize("par-threshold") {
            acc.par_threshold = t.max(1);
        }
        acc.chunk_shots = params.get_usize("chunk-shots").map(|k| k.max(1));
        if let Some(g) = params.get_str("granularity") {
            acc.granularity = match g {
                "sequential" => Granularity::Sequential,
                "auto" => Granularity::Auto,
                other => panic!("unknown granularity {other:?}: expected \"auto\" or \"sequential\""),
            };
        }
        acc
    }

    /// The simulator thread pool.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }
}

impl Accelerator for QppAccelerator {
    fn name(&self) -> String {
        "qpp".to_string()
    }

    fn execute(
        &self,
        buffer: &mut AcceleratorBuffer,
        circuit: &Circuit,
        opts: &ExecOptions,
    ) -> Result<(), XaccError> {
        if circuit.num_qubits() > buffer.size() {
            return Err(XaccError::Execution(format!(
                "kernel uses {} qubits but the buffer has {}",
                circuit.num_qubits(),
                buffer.size()
            )));
        }
        let config = RunConfig {
            shots: opts.shots,
            seed: opts.seed,
            par_threshold: self.par_threshold,
            chunk_shots: self.chunk_shots,
            granularity: self.granularity,
        };
        let counts = run_shots(circuit, Arc::clone(&self.pool), &config);
        buffer.merge_counts(&counts);
        Ok(())
    }

    fn num_threads(&self) -> usize {
        self.pool.num_threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcor_circuit::library;

    #[test]
    fn executes_bell_kernel() {
        let acc = QppAccelerator::new(1);
        let mut buf = AcceleratorBuffer::with_name("b", 2);
        acc.execute(&mut buf, &library::bell_kernel(), &ExecOptions::with_shots(512).seeded(1)).unwrap();
        assert_eq!(buf.total_shots(), 512);
        assert!(buf.measurements().keys().all(|k| k == "00" || k == "11"));
    }

    #[test]
    fn from_params_parses_scheduler_knobs() {
        let acc = QppAccelerator::from_params(
            &HetMap::new()
                .with("threads", 1usize)
                .with("chunk-shots", 8usize)
                .with("granularity", "sequential"),
        );
        assert_eq!(acc.chunk_shots, Some(8));
        assert_eq!(acc.granularity, Granularity::Sequential);
    }

    #[test]
    #[should_panic(expected = "unknown granularity")]
    fn from_params_rejects_unknown_granularity() {
        QppAccelerator::from_params(&HetMap::new().with("threads", 1usize).with("granularity", "Sequential"));
    }

    #[test]
    fn rejects_undersized_buffer() {
        let acc = QppAccelerator::new(1);
        let mut buf = AcceleratorBuffer::with_name("b", 1);
        let err = acc.execute(&mut buf, &library::bell_kernel(), &ExecOptions::default());
        assert!(err.is_err());
    }

    #[test]
    fn repeated_execute_accumulates() {
        let acc = QppAccelerator::new(1);
        let mut buf = AcceleratorBuffer::with_name("b", 2);
        let opts = ExecOptions::with_shots(100).seeded(3);
        acc.execute(&mut buf, &library::bell_kernel(), &opts).unwrap();
        acc.execute(&mut buf, &library::bell_kernel(), &opts).unwrap();
        assert_eq!(buf.total_shots(), 200);
    }

    #[test]
    fn parallel_instance_matches_distribution() {
        let acc = QppAccelerator::new(4);
        assert_eq!(acc.num_threads(), 4);
        let mut buf = AcceleratorBuffer::with_name("b", 2);
        acc.execute(&mut buf, &library::bell_kernel(), &ExecOptions::with_shots(512).seeded(2)).unwrap();
        let p00 = buf.probability("00");
        assert!((p00 - 0.5).abs() < 0.1, "p(00) = {p00}");
    }
}
