//! The `qpp` backend: the Quantum++-analogue state-vector simulator,
//! wrapped as an [`Accelerator`].
//!
//! Each instance owns its own thread pool, so distinct instances obtained
//! from the cloneable factory partition the machine's cores the way the
//! paper's per-kernel `OMP_NUM_THREADS` settings do.

use crate::accelerator::{Accelerator, ExecOptions};
use crate::buffer::AcceleratorBuffer;
use crate::hetmap::HetMap;
use crate::XaccError;
use qcor_circuit::Circuit;
use qcor_pool::ThreadPool;
use qcor_sim::{run_shots, AmpShards, Granularity, Precision, RunConfig};
use std::sync::Arc;

/// State-vector simulator backend.
#[derive(Debug)]
pub struct QppAccelerator {
    pool: Arc<ThreadPool>,
    par_threshold: usize,
    /// Explicit shots-per-chunk for the batched shot scheduler
    /// (`None` = adaptive granularity).
    chunk_shots: Option<usize>,
    /// Chunk-sizing policy when `chunk_shots` is unset.
    granularity: Granularity,
    /// Gate fusion (compile-then-execute) override; `None` defers to the
    /// `QCOR_GATE_FUSION` process default.
    fusion: Option<bool>,
    /// Amplitude precision override; `None` defers to the `QCOR_PRECISION`
    /// process default (f64).
    precision: Option<Precision>,
    /// Compile-cache override; `None` defers to the `QCOR_COMPILE_CACHE`
    /// process default (enabled).
    compile_cache: Option<bool>,
    /// Amplitude-sharding override; `None` defers to the
    /// `QCOR_AMP_SHARDS` process default (auto).
    amp_shards: Option<AmpShards>,
    /// Process-shard count for shot execution: `1` runs in-process as
    /// usual; `n > 1` partitions the chunk schedule over `n` shards via
    /// `qcor_sim::shard::run_sharded` (the in-process reference driver —
    /// an accelerator call never forks the host binary).
    shot_procs: usize,
}

impl QppAccelerator {
    /// A backend simulating with `threads` simulator threads.
    pub fn new(threads: usize) -> Self {
        Self::with_pool(Arc::new(qcor_pool::PoolBuilder::new().num_threads(threads).name("qpp").build()))
    }

    /// A backend sharing an existing pool.
    pub fn with_pool(pool: Arc<ThreadPool>) -> Self {
        QppAccelerator {
            pool,
            par_threshold: 2,
            chunk_shots: None,
            granularity: Granularity::Auto,
            fusion: None,
            precision: None,
            compile_cache: None,
            amp_shards: None,
            shot_procs: 1,
        }
    }

    /// Construct from registry params: `threads` (default: all cores or
    /// `QCOR_NUM_THREADS`), `par-threshold` (see
    /// [`qcor_sim::StateVector::set_par_threshold`]), `chunk-shots`
    /// (explicit scheduler chunk size), `granularity`
    /// (`"auto"` | `"sequential"`), `fusion` (bool, or `"on"`/`"off"`;
    /// default: the `QCOR_GATE_FUSION` process default) and `precision`
    /// (`"f64"`/`"double"` or `"f32"`/`"single"` — the single-precision
    /// compiled replay; default: the `QCOR_PRECISION` process default) and
    /// `compile-cache` (bool, or `"on"`/`"off"`; default: the
    /// `QCOR_COMPILE_CACHE` process default — reuse one structural
    /// template per circuit shape across an angle sweep), `amp-shards`
    /// (`"auto"`/`"off"`/a shard count, or a plain bool/usize — the
    /// `QCOR_AMP_SHARDS` vocabulary; default: the process default) and
    /// `shot-procs` (a positive shard count, or `"off"`; default `1` —
    /// values above 1 merge the shards in-process, see
    /// `qcor_sim::shard::run_sharded`).
    ///
    /// Bad parameter values are rejected with
    /// [`XaccError::InvalidParam`] — surfaced as an `Err` through
    /// `get_accelerator`/`initialize`, like the routing params.
    pub fn from_params(params: &HetMap) -> Result<Self, XaccError> {
        let threads = params.get_usize("threads").unwrap_or_else(qcor_pool::num_threads_from_env);
        let mut acc = Self::new(threads.max(1));
        if let Some(t) = params.get_usize("par-threshold") {
            acc.par_threshold = t.max(1);
        }
        acc.chunk_shots = params.get_usize("chunk-shots").map(|k| k.max(1));
        if let Some(g) = params.get_str("granularity") {
            acc.granularity = match g {
                "sequential" => Granularity::Sequential,
                "auto" => Granularity::Auto,
                other => {
                    return Err(XaccError::InvalidParam(format!(
                        "unknown granularity {other:?}: expected \"auto\" or \"sequential\""
                    )))
                }
            };
        }
        // String values share the `QCOR_GATE_FUSION` token vocabulary
        // (`qcor_sim::parse_fusion_token`); plain bools pass through; any
        // other value or type is a hard configuration error.
        acc.fusion = match params.get("fusion") {
            None => None,
            Some(&crate::HetValue::Bool(b)) => Some(b),
            Some(crate::HetValue::Str(s)) => match qcor_sim::parse_fusion_token(s) {
                Some(b) => Some(b),
                None => {
                    return Err(XaccError::InvalidParam(format!(
                        "unknown fusion setting {s:?}: expected a bool or 0/1/true/false/on/off"
                    )))
                }
            },
            Some(other) => {
                return Err(XaccError::InvalidParam(format!(
                    "fusion must be a bool or string, got {other:?}"
                )))
            }
        };
        // `precision` shares the `QCOR_PRECISION` token vocabulary
        // (`qcor_sim::parse_precision_token`) — same discipline as
        // `fusion`: unknown tokens and wrong-typed values are hard
        // configuration errors, never silently ignored.
        acc.precision = match params.get("precision") {
            None => None,
            Some(crate::HetValue::Str(s)) => match qcor_sim::parse_precision_token(s) {
                Some(p) => Some(p),
                None => {
                    return Err(XaccError::InvalidParam(format!(
                        "unknown precision {s:?}: expected f32/f64/single/double/32/64"
                    )))
                }
            },
            Some(other) => {
                return Err(XaccError::InvalidParam(format!("precision must be a string, got {other:?}")))
            }
        };
        // `compile-cache` shares the `QCOR_COMPILE_CACHE` token vocabulary
        // (`qcor_sim::parse_cache_token`) — same discipline as `fusion`.
        acc.compile_cache = match params.get("compile-cache") {
            None => None,
            Some(&crate::HetValue::Bool(b)) => Some(b),
            Some(crate::HetValue::Str(s)) => match qcor_sim::parse_cache_token(s) {
                Some(b) => Some(b),
                None => {
                    return Err(XaccError::InvalidParam(format!(
                        "unknown compile-cache setting {s:?}: expected a bool or 0/1/true/false/on/off"
                    )))
                }
            },
            Some(other) => {
                return Err(XaccError::InvalidParam(format!(
                    "compile-cache must be a bool or string, got {other:?}"
                )))
            }
        };
        // `amp-shards` shares the `QCOR_AMP_SHARDS` token vocabulary
        // (`qcor_sim::parse_amp_shards_token`); plain bools and usizes map
        // onto it (`true` = auto, `false`/`0` = off, `n` = fixed) — same
        // discipline as `fusion`.
        acc.amp_shards = match params.get("amp-shards") {
            None => None,
            Some(&crate::HetValue::Bool(true)) => Some(AmpShards::Auto),
            Some(&crate::HetValue::Bool(false)) => Some(AmpShards::Off),
            Some(&crate::HetValue::Int(0)) => Some(AmpShards::Off),
            Some(&crate::HetValue::Int(n)) if n > 0 => Some(AmpShards::Fixed(n as usize)),
            Some(crate::HetValue::Str(s)) => match qcor_sim::parse_amp_shards_token(s) {
                Some(a) => Some(a),
                None => {
                    return Err(XaccError::InvalidParam(format!(
                        "unknown amp-shards setting {s:?}: expected auto/off or a shard count"
                    )))
                }
            },
            Some(other) => {
                return Err(XaccError::InvalidParam(format!(
                    "amp-shards must be a bool, non-negative integer or string, got {other:?}"
                )))
            }
        };
        // `shot-procs` shares the `QCOR_SHOT_PROCS` token vocabulary
        // (`qcor_sim::parse_shot_procs_token`).
        acc.shot_procs = match params.get("shot-procs") {
            None => 1,
            Some(&crate::HetValue::Int(n)) if n >= 1 => n as usize,
            Some(crate::HetValue::Str(s)) => match qcor_sim::parse_shot_procs_token(s) {
                Some(n) => n,
                None => {
                    return Err(XaccError::InvalidParam(format!(
                        "unknown shot-procs setting {s:?}: expected off or a positive process count"
                    )))
                }
            },
            Some(other) => {
                return Err(XaccError::InvalidParam(format!(
                    "shot-procs must be a positive integer or string, got {other:?}"
                )))
            }
        };
        Ok(acc)
    }

    /// The simulator thread pool.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }
}

impl Accelerator for QppAccelerator {
    fn name(&self) -> String {
        "qpp".to_string()
    }

    fn execute(
        &self,
        buffer: &mut AcceleratorBuffer,
        circuit: &Circuit,
        opts: &ExecOptions,
    ) -> Result<(), XaccError> {
        if circuit.num_qubits() > buffer.size() {
            return Err(XaccError::Execution(format!(
                "kernel uses {} qubits but the buffer has {}",
                circuit.num_qubits(),
                buffer.size()
            )));
        }
        let config = RunConfig {
            shots: opts.shots,
            seed: opts.seed,
            par_threshold: self.par_threshold,
            chunk_shots: self.chunk_shots,
            granularity: self.granularity,
            fusion: self.fusion,
            precision: self.precision,
            compile_cache: self.compile_cache,
            amp_shards: self.amp_shards,
        };
        let counts = if self.shot_procs > 1 {
            qcor_sim::run_sharded(circuit, Arc::clone(&self.pool), &config, self.shot_procs)
        } else {
            run_shots(circuit, Arc::clone(&self.pool), &config)
        };
        buffer.merge_counts(&counts);
        Ok(())
    }

    fn num_threads(&self) -> usize {
        self.pool.num_threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcor_circuit::library;

    #[test]
    fn executes_bell_kernel() {
        let acc = QppAccelerator::new(1);
        let mut buf = AcceleratorBuffer::with_name("b", 2);
        acc.execute(&mut buf, &library::bell_kernel(), &ExecOptions::with_shots(512).seeded(1)).unwrap();
        assert_eq!(buf.total_shots(), 512);
        assert!(buf.measurements().keys().all(|k| k == "00" || k == "11"));
    }

    #[test]
    fn from_params_parses_scheduler_knobs() {
        let acc = QppAccelerator::from_params(
            &HetMap::new()
                .with("threads", 1usize)
                .with("chunk-shots", 8usize)
                .with("granularity", "sequential")
                .with("fusion", false),
        )
        .unwrap();
        assert_eq!(acc.chunk_shots, Some(8));
        assert_eq!(acc.granularity, Granularity::Sequential);
        assert_eq!(acc.fusion, Some(false));
        let on =
            QppAccelerator::from_params(&HetMap::new().with("threads", 1usize).with("fusion", "on")).unwrap();
        assert_eq!(on.fusion, Some(true));
    }

    #[test]
    fn from_params_rejects_unknown_granularity_as_err() {
        let err = QppAccelerator::from_params(
            &HetMap::new().with("threads", 1usize).with("granularity", "Sequential"),
        )
        .unwrap_err();
        assert!(matches!(err, XaccError::InvalidParam(ref msg) if msg.contains("granularity")), "{err}");
    }

    #[test]
    fn from_params_fusion_accepts_env_token_set() {
        // The param accepts exactly what QCOR_GATE_FUSION accepts.
        for (token, expect) in
            [("1", true), ("true", true), ("on", true), ("0", false), ("false", false), ("off", false)]
        {
            let acc =
                QppAccelerator::from_params(&HetMap::new().with("threads", 1usize).with("fusion", token))
                    .unwrap();
            assert_eq!(acc.fusion, Some(expect), "token {token:?}");
        }
    }

    #[test]
    fn from_params_rejects_unknown_fusion_as_err() {
        let err = QppAccelerator::from_params(&HetMap::new().with("threads", 1usize).with("fusion", "maybe"))
            .unwrap_err();
        assert!(matches!(err, XaccError::InvalidParam(ref msg) if msg.contains("fusion")), "{err}");
        // Wrong-typed values are rejected too, not silently ignored.
        let err = QppAccelerator::from_params(&HetMap::new().with("threads", 1usize).with("fusion", 3usize))
            .unwrap_err();
        assert!(matches!(err, XaccError::InvalidParam(ref msg) if msg.contains("fusion")), "{err}");
    }

    #[test]
    fn from_params_compile_cache_accepts_env_token_set() {
        // The param accepts exactly what QCOR_COMPILE_CACHE accepts.
        for (token, expect) in
            [("1", true), ("true", true), ("on", true), ("0", false), ("false", false), ("off", false)]
        {
            let acc = QppAccelerator::from_params(
                &HetMap::new().with("threads", 1usize).with("compile-cache", token),
            )
            .unwrap();
            assert_eq!(acc.compile_cache, Some(expect), "token {token:?}");
        }
        let plain_bool =
            QppAccelerator::from_params(&HetMap::new().with("threads", 1usize).with("compile-cache", false))
                .unwrap();
        assert_eq!(plain_bool.compile_cache, Some(false));
        let unset = QppAccelerator::from_params(&HetMap::new().with("threads", 1usize)).unwrap();
        assert_eq!(unset.compile_cache, None);
    }

    #[test]
    fn from_params_rejects_unknown_compile_cache_as_err() {
        let err = QppAccelerator::from_params(
            &HetMap::new().with("threads", 1usize).with("compile-cache", "maybe"),
        )
        .unwrap_err();
        assert!(matches!(err, XaccError::InvalidParam(ref msg) if msg.contains("compile-cache")), "{err}");
        // Wrong-typed values are rejected too, not silently ignored.
        let err =
            QppAccelerator::from_params(&HetMap::new().with("threads", 1usize).with("compile-cache", 3usize))
                .unwrap_err();
        assert!(matches!(err, XaccError::InvalidParam(ref msg) if msg.contains("compile-cache")), "{err}");
    }

    #[test]
    fn cached_and_uncached_execute_identical_seeded_counts() {
        let cached =
            QppAccelerator::from_params(&HetMap::new().with("threads", 1usize).with("compile-cache", true))
                .unwrap();
        let cold =
            QppAccelerator::from_params(&HetMap::new().with("threads", 1usize).with("compile-cache", false))
                .unwrap();
        let opts = ExecOptions::with_shots(256).seeded(33);
        let mut buf_a = AcceleratorBuffer::with_name("a", 3);
        let mut buf_b = AcceleratorBuffer::with_name("b", 3);
        cached.execute(&mut buf_a, &library::ghz_kernel(3), &opts).unwrap();
        cold.execute(&mut buf_b, &library::ghz_kernel(3), &opts).unwrap();
        assert_eq!(buf_a.measurements(), buf_b.measurements());
    }

    #[test]
    fn from_params_precision_accepts_env_token_set() {
        // The param accepts exactly what QCOR_PRECISION accepts.
        for (token, expect) in [
            ("f64", Precision::F64),
            ("double", Precision::F64),
            ("64", Precision::F64),
            ("f32", Precision::F32),
            ("single", Precision::F32),
            ("32", Precision::F32),
        ] {
            let acc =
                QppAccelerator::from_params(&HetMap::new().with("threads", 1usize).with("precision", token))
                    .unwrap();
            assert_eq!(acc.precision, Some(expect), "token {token:?}");
        }
        let unset = QppAccelerator::from_params(&HetMap::new().with("threads", 1usize)).unwrap();
        assert_eq!(unset.precision, None);
    }

    #[test]
    fn from_params_rejects_unknown_precision_as_err() {
        let err =
            QppAccelerator::from_params(&HetMap::new().with("threads", 1usize).with("precision", "f16"))
                .unwrap_err();
        assert!(matches!(err, XaccError::InvalidParam(ref msg) if msg.contains("precision")), "{err}");
        // Wrong-typed values are rejected too, not silently ignored.
        let err = QppAccelerator::from_params(&HetMap::new().with("threads", 1usize).with("precision", true))
            .unwrap_err();
        assert!(matches!(err, XaccError::InvalidParam(ref msg) if msg.contains("precision")), "{err}");
        let err =
            QppAccelerator::from_params(&HetMap::new().with("threads", 1usize).with("precision", 32usize))
                .unwrap_err();
        assert!(matches!(err, XaccError::InvalidParam(ref msg) if msg.contains("precision")), "{err}");
    }

    #[test]
    fn f32_precision_executes_and_samples_the_distribution() {
        let acc =
            QppAccelerator::from_params(&HetMap::new().with("threads", 1usize).with("precision", "f32"))
                .unwrap();
        let mut buf = AcceleratorBuffer::with_name("b", 2);
        acc.execute(&mut buf, &library::bell_kernel(), &ExecOptions::with_shots(512).seeded(4)).unwrap();
        assert_eq!(buf.total_shots(), 512);
        assert!(buf.measurements().keys().all(|k| k == "00" || k == "11"));
        let p00 = buf.probability("00");
        assert!((p00 - 0.5).abs() < 0.1, "p(00) = {p00}");
    }

    #[test]
    fn fused_and_unfused_execute_identical_seeded_counts() {
        let fused =
            QppAccelerator::from_params(&HetMap::new().with("threads", 1usize).with("fusion", true)).unwrap();
        let unfused =
            QppAccelerator::from_params(&HetMap::new().with("threads", 1usize).with("fusion", false))
                .unwrap();
        let opts = ExecOptions::with_shots(256).seeded(12);
        let mut buf_a = AcceleratorBuffer::with_name("a", 3);
        let mut buf_b = AcceleratorBuffer::with_name("b", 3);
        fused.execute(&mut buf_a, &library::ghz_kernel(3), &opts).unwrap();
        unfused.execute(&mut buf_b, &library::ghz_kernel(3), &opts).unwrap();
        assert_eq!(buf_a.measurements(), buf_b.measurements());
    }

    #[test]
    fn from_params_amp_shards_accepts_env_token_set() {
        // The param accepts exactly what QCOR_AMP_SHARDS accepts, plus
        // plain bools and integers.
        for (token, expect) in [
            ("auto", AmpShards::Auto),
            ("on", AmpShards::Auto),
            ("off", AmpShards::Off),
            ("0", AmpShards::Off),
            ("4", AmpShards::Fixed(4)),
        ] {
            let acc =
                QppAccelerator::from_params(&HetMap::new().with("threads", 1usize).with("amp-shards", token))
                    .unwrap();
            assert_eq!(acc.amp_shards, Some(expect), "token {token:?}");
        }
        let plain_bool =
            QppAccelerator::from_params(&HetMap::new().with("threads", 1usize).with("amp-shards", true))
                .unwrap();
        assert_eq!(plain_bool.amp_shards, Some(AmpShards::Auto));
        let plain_int =
            QppAccelerator::from_params(&HetMap::new().with("threads", 1usize).with("amp-shards", 3usize))
                .unwrap();
        assert_eq!(plain_int.amp_shards, Some(AmpShards::Fixed(3)));
        let unset = QppAccelerator::from_params(&HetMap::new().with("threads", 1usize)).unwrap();
        assert_eq!(unset.amp_shards, None);
    }

    #[test]
    fn from_params_rejects_unknown_amp_shards_as_err() {
        let err =
            QppAccelerator::from_params(&HetMap::new().with("threads", 1usize).with("amp-shards", "many"))
                .unwrap_err();
        assert!(matches!(err, XaccError::InvalidParam(ref msg) if msg.contains("amp-shards")), "{err}");
        // Wrong-typed values are rejected too, not silently ignored.
        let err =
            QppAccelerator::from_params(&HetMap::new().with("threads", 1usize).with("amp-shards", 1.5f64))
                .unwrap_err();
        assert!(matches!(err, XaccError::InvalidParam(ref msg) if msg.contains("amp-shards")), "{err}");
    }

    #[test]
    fn from_params_shot_procs_accepts_env_token_set() {
        for (token, expect) in [("off", 1), ("1", 1), ("3", 3)] {
            let acc =
                QppAccelerator::from_params(&HetMap::new().with("threads", 1usize).with("shot-procs", token))
                    .unwrap();
            assert_eq!(acc.shot_procs, expect, "token {token:?}");
        }
        let plain_int =
            QppAccelerator::from_params(&HetMap::new().with("threads", 1usize).with("shot-procs", 2usize))
                .unwrap();
        assert_eq!(plain_int.shot_procs, 2);
        let unset = QppAccelerator::from_params(&HetMap::new().with("threads", 1usize)).unwrap();
        assert_eq!(unset.shot_procs, 1);
    }

    #[test]
    fn from_params_rejects_unknown_shot_procs_as_err() {
        for bad in ["zero", "0", "-1"] {
            let err =
                QppAccelerator::from_params(&HetMap::new().with("threads", 1usize).with("shot-procs", bad))
                    .unwrap_err();
            assert!(matches!(err, XaccError::InvalidParam(ref msg) if msg.contains("shot-procs")), "{err}");
        }
        let err =
            QppAccelerator::from_params(&HetMap::new().with("threads", 1usize).with("shot-procs", false))
                .unwrap_err();
        assert!(matches!(err, XaccError::InvalidParam(ref msg) if msg.contains("shot-procs")), "{err}");
    }

    #[test]
    fn sharded_and_unsharded_execute_identical_seeded_counts() {
        // Both knobs at once: amplitude sharding must not perturb a single
        // bit, and the in-process shot shards must merge to the exact
        // single-run counts.
        let plain = QppAccelerator::from_params(&HetMap::new().with("threads", 1usize)).unwrap();
        let sharded = QppAccelerator::from_params(
            &HetMap::new().with("threads", 1usize).with("amp-shards", 3usize).with("shot-procs", 2usize),
        )
        .unwrap();
        let opts = ExecOptions::with_shots(256).seeded(21);
        let mut buf_a = AcceleratorBuffer::with_name("a", 3);
        let mut buf_b = AcceleratorBuffer::with_name("b", 3);
        plain.execute(&mut buf_a, &library::ghz_kernel(3), &opts).unwrap();
        sharded.execute(&mut buf_b, &library::ghz_kernel(3), &opts).unwrap();
        assert_eq!(buf_a.measurements(), buf_b.measurements());
    }

    #[test]
    fn rejects_undersized_buffer() {
        let acc = QppAccelerator::new(1);
        let mut buf = AcceleratorBuffer::with_name("b", 1);
        let err = acc.execute(&mut buf, &library::bell_kernel(), &ExecOptions::default());
        assert!(err.is_err());
    }

    #[test]
    fn repeated_execute_accumulates() {
        let acc = QppAccelerator::new(1);
        let mut buf = AcceleratorBuffer::with_name("b", 2);
        let opts = ExecOptions::with_shots(100).seeded(3);
        acc.execute(&mut buf, &library::bell_kernel(), &opts).unwrap();
        acc.execute(&mut buf, &library::bell_kernel(), &opts).unwrap();
        assert_eq!(buf.total_shots(), 200);
    }

    #[test]
    fn parallel_instance_matches_distribution() {
        let acc = QppAccelerator::new(4);
        assert_eq!(acc.num_threads(), 4);
        let mut buf = AcceleratorBuffer::with_name("b", 2);
        acc.execute(&mut buf, &library::bell_kernel(), &ExecOptions::with_shots(512).seeded(2)).unwrap();
        let p00 = buf.probability("00");
        assert!((p00 - 0.5).abs() < 0.1, "p(00) = {p00}");
    }
}
