//! Accelerator backends.

mod density;
mod noisy;
mod qpp;
mod remote;
mod shared_legacy;

pub use density::DensityAccelerator;
pub use noisy::NoisyQppAccelerator;
pub use qpp::QppAccelerator;
pub use remote::RemoteAccelerator;
pub use shared_legacy::SharedQueueAccelerator;
