//! The `qpp-noisy` backend: noise-model execution on the batched shot
//! scheduler.
//!
//! The paper's future work calls for "additional quantum simulation and
//! physical back ends"; this backend stands in for a physical device whose
//! results are noisy. It executes one of three ways (`noise-mode` param /
//! `QCOR_NOISE_MODE` env default):
//!
//! * **trajectory** (default) — per-shot stochastic Kraus-branch sampling
//!   on [`qcor_sim::run_noisy_shots`]: channels are lowered once next to
//!   the compiled kernels and every shot replays the plan on a chunk of
//!   the [`qcor_sim::ShotPlan`], drawing branches from the chunk's derived
//!   RNG stream — seeded counts are byte-identical on any pool size.
//! * **density** — exact mixed-state evolution
//!   ([`DensityMatrix::run_noisy_circuit`]), readout error convolved onto
//!   the exact distribution, shots sampled from it. The oracle the
//!   trajectory path is tested against.
//! * **interpreted** — the legacy per-shot re-interpretation loop, kept as
//!   the A/B baseline for the `noisy_guard` perf gate.

use crate::accelerator::{Accelerator, BackendCapability, ExecOptions};
use crate::buffer::AcceleratorBuffer;
use crate::hetmap::HetMap;
use crate::XaccError;
use qcor_circuit::{Circuit, GateKind, Instruction};
use qcor_pool::ThreadPool;
use qcor_sim::{gates, Complex64, DensityMatrix, NoiseMode, NoiseModel, RunConfig, StateVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Noise-model simulator backend (trajectory / density / interpreted).
#[derive(Debug)]
pub struct NoisyQppAccelerator {
    pool: Arc<ThreadPool>,
    noise: NoiseModel,
    /// Probability a measured bit is reported flipped.
    p_readout: f64,
    /// Execution mode override; `None` defers to the `QCOR_NOISE_MODE`
    /// process default (trajectory).
    mode: Option<NoiseMode>,
    /// Explicit shots-per-chunk for the batched shot scheduler
    /// (trajectory mode; `None` = adaptive granularity).
    chunk_shots: Option<usize>,
    /// Compile-cache override; `None` defers to the `QCOR_COMPILE_CACHE`
    /// process default.
    compile_cache: Option<bool>,
}

impl NoisyQppAccelerator {
    /// A noisy backend with depolarizing probability `p_depol` and readout
    /// flip probability `p_readout` (the historical constructor; use
    /// [`NoisyQppAccelerator::with_noise`] for the full channel set).
    pub fn new(threads: usize, p_depol: f64, p_readout: f64) -> Self {
        Self::with_noise(threads, NoiseModel { depolarizing: p_depol, ..Default::default() }, p_readout)
    }

    /// A noisy backend with an explicit [`NoiseModel`] and readout flip
    /// probability.
    pub fn with_noise(threads: usize, noise: NoiseModel, p_readout: f64) -> Self {
        noise.validate().expect("invalid noise model");
        assert!((0.0..=1.0).contains(&p_readout));
        NoisyQppAccelerator {
            pool: Arc::new(qcor_pool::PoolBuilder::new().num_threads(threads).name("qpp-noisy").build()),
            noise,
            p_readout,
            mode: None,
            chunk_shots: None,
            compile_cache: None,
        }
    }

    /// Construct from registry params: `threads`, `depolarizing`
    /// (default 0.001), `dephasing` (default 0), `amplitude-damping`
    /// (default 0), `readout-error` (default 0.01), `noise-mode`
    /// (`"trajectory"` | `"density"` | `"interpreted"` — the
    /// `QCOR_NOISE_MODE` vocabulary; default: the process default),
    /// `chunk-shots` (explicit scheduler chunk size, trajectory mode) and
    /// `compile-cache` (bool, or `"on"`/`"off"`).
    ///
    /// Bad parameter values are rejected with [`XaccError::InvalidParam`],
    /// like the `qpp` backend's scheduler knobs.
    pub fn from_params(params: &HetMap) -> Result<Self, XaccError> {
        let noise = NoiseModel {
            depolarizing: params.get_float("depolarizing").unwrap_or(0.001),
            dephasing: params.get_float("dephasing").unwrap_or(0.0),
            amplitude_damping: params.get_float("amplitude-damping").unwrap_or(0.0),
        };
        noise.validate().map_err(XaccError::InvalidParam)?;
        let p_readout = params.get_float("readout-error").unwrap_or(0.01);
        if !(0.0..=1.0).contains(&p_readout) {
            return Err(XaccError::InvalidParam(format!(
                "readout-error probability {p_readout} outside [0, 1]"
            )));
        }
        let mut acc = Self::with_noise(params.get_usize("threads").unwrap_or(1).max(1), noise, p_readout);
        // `noise-mode` shares the `QCOR_NOISE_MODE` token vocabulary
        // (`qcor_sim::parse_noise_mode_token`) — unknown tokens and
        // wrong-typed values are hard configuration errors.
        acc.mode = match params.get("noise-mode") {
            None => None,
            Some(crate::HetValue::Str(s)) => match qcor_sim::parse_noise_mode_token(s) {
                Some(m) => Some(m),
                None => {
                    return Err(XaccError::InvalidParam(format!(
                        "unknown noise-mode {s:?}: expected trajectory/density/interpreted"
                    )))
                }
            },
            Some(other) => {
                return Err(XaccError::InvalidParam(format!("noise-mode must be a string, got {other:?}")))
            }
        };
        acc.chunk_shots = params.get_usize("chunk-shots").map(|k| k.max(1));
        acc.compile_cache = match params.get("compile-cache") {
            None => None,
            Some(&crate::HetValue::Bool(b)) => Some(b),
            Some(crate::HetValue::Str(s)) => match qcor_sim::parse_cache_token(s) {
                Some(b) => Some(b),
                None => {
                    return Err(XaccError::InvalidParam(format!(
                        "unknown compile-cache setting {s:?}: expected a bool or 0/1/true/false/on/off"
                    )))
                }
            },
            Some(other) => {
                return Err(XaccError::InvalidParam(format!(
                    "compile-cache must be a bool or string, got {other:?}"
                )))
            }
        };
        Ok(acc)
    }

    /// The configured noise model.
    pub fn noise(&self) -> NoiseModel {
        self.noise
    }

    /// The execution mode this backend resolves to.
    pub fn mode(&self) -> NoiseMode {
        self.mode.unwrap_or_else(qcor_sim::noise_mode_env_default)
    }

    fn maybe_depolarize(&self, state: &mut StateVector, qubit: usize, rng: &mut StdRng) {
        if rng.gen::<f64>() >= self.noise.depolarizing {
            return;
        }
        let pauli = match rng.gen_range(0..3) {
            0 => GateKind::X,
            1 => GateKind::Y,
            _ => GateKind::Z,
        };
        let inst = Instruction::new(pauli, vec![qubit], vec![]);
        gates::apply_instruction(state, &inst, rng);
    }

    /// The legacy per-shot re-interpretation loop (mode `interpreted`): one
    /// sequential RNG stream across all shots, one draw per touched qubit
    /// per gate for depolarizing (its historical always-draw protocol,
    /// preserved so old seeds reproduce), draws for the other channels only
    /// when their strength is non-zero.
    fn execute_interpreted(
        &self,
        buffer: &mut AcceleratorBuffer,
        circuit: &Circuit,
        opts: &ExecOptions,
    ) -> Result<(), XaccError> {
        let mut rng = match opts.seed {
            Some(s) => StdRng::seed_from_u64(s),
            None => StdRng::from_entropy(),
        };
        let mut state = StateVector::with_pool(circuit.num_qubits(), Arc::clone(&self.pool));
        for shot in 0..opts.shots {
            if shot > 0 {
                state.reset_to_zero();
            }
            let mut outcomes: std::collections::BTreeMap<usize, u8> = Default::default();
            for inst in circuit.instructions() {
                match inst.gate {
                    GateKind::Measure => {
                        let mut bit = state.measure(inst.qubits[0], &mut rng);
                        if rng.gen::<f64>() < self.p_readout {
                            bit ^= 1;
                        }
                        outcomes.insert(inst.qubits[0], bit);
                    }
                    _ => {
                        gates::apply_instruction(&mut state, inst, &mut rng);
                        if inst.gate.is_unitary() && inst.gate != GateKind::Barrier {
                            for &q in &inst.qubits {
                                self.maybe_depolarize(&mut state, q, &mut rng);
                                if self.noise.dephasing > 0.0 && rng.gen::<f64>() < self.noise.dephasing {
                                    state.apply_diag(q, Complex64::ONE, Complex64::from_real(-1.0), 0);
                                }
                                if self.noise.amplitude_damping > 0.0 {
                                    let p1 = state.prob_one(q);
                                    let p_jump = self.noise.amplitude_damping * p1;
                                    if rng.gen::<f64>() < p_jump {
                                        state.collapse(q, 1, p1);
                                        state.apply_antidiag(q, Complex64::ONE, Complex64::ONE, 0);
                                    } else {
                                        let norm = (1.0 - p_jump).sqrt();
                                        state.apply_diag(
                                            q,
                                            Complex64::from_real(1.0 / norm),
                                            Complex64::from_real(
                                                (1.0 - self.noise.amplitude_damping).sqrt() / norm,
                                            ),
                                            0,
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
            let bits: String = outcomes.values().map(|b| char::from(b'0' + b)).collect();
            buffer.add_count(bits, 1);
        }
        Ok(())
    }

    /// Exact-oracle execution (mode `density`): evolve the density matrix,
    /// convolve the readout error onto the exact distribution, sample
    /// shots from its CDF.
    fn execute_density(
        &self,
        buffer: &mut AcceleratorBuffer,
        circuit: &Circuit,
        opts: &ExecOptions,
    ) -> Result<(), XaccError> {
        let dist = DensityMatrix::run_noisy_circuit(circuit, Arc::clone(&self.pool), &self.noise)
            .map_err(XaccError::Execution)?;
        let dist = qcor_sim::apply_readout_error(&dist, self.p_readout);
        let outcomes: Vec<(&String, f64)> = dist.iter().map(|(k, &p)| (k, p)).collect();
        let mut rng = match opts.seed {
            Some(s) => StdRng::seed_from_u64(s),
            None => StdRng::from_entropy(),
        };
        for _ in 0..opts.shots {
            let mut r: f64 = rng.gen();
            let mut chosen = outcomes.last().map(|(k, _)| (*k).clone()).unwrap_or_default();
            for (key, p) in &outcomes {
                if r < *p {
                    chosen = (*key).clone();
                    break;
                }
                r -= *p;
            }
            buffer.add_count(chosen, 1);
        }
        Ok(())
    }
}

impl Accelerator for NoisyQppAccelerator {
    fn name(&self) -> String {
        "qpp-noisy".to_string()
    }

    fn capability(&self) -> BackendCapability {
        BackendCapability::Noisy
    }

    fn execute(
        &self,
        buffer: &mut AcceleratorBuffer,
        circuit: &Circuit,
        opts: &ExecOptions,
    ) -> Result<(), XaccError> {
        if circuit.num_qubits() > buffer.size() {
            return Err(XaccError::Execution(format!(
                "kernel uses {} qubits but the buffer has {}",
                circuit.num_qubits(),
                buffer.size()
            )));
        }
        match self.mode() {
            NoiseMode::Interpreted => self.execute_interpreted(buffer, circuit, opts),
            NoiseMode::Density => self.execute_density(buffer, circuit, opts),
            NoiseMode::Trajectory => {
                let config = RunConfig {
                    shots: opts.shots,
                    seed: opts.seed,
                    chunk_shots: self.chunk_shots,
                    compile_cache: self.compile_cache,
                    ..Default::default()
                };
                let counts = qcor_sim::run_noisy_shots(
                    circuit,
                    &self.noise,
                    self.p_readout,
                    Arc::clone(&self.pool),
                    &config,
                );
                buffer.merge_counts(&counts);
                Ok(())
            }
        }
    }

    fn num_threads(&self) -> usize {
        self.pool.num_threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcor_circuit::library;

    #[test]
    fn noiseless_configuration_matches_ideal_bell() {
        let acc = NoisyQppAccelerator::new(1, 0.0, 0.0);
        let mut buf = AcceleratorBuffer::with_name("b", 2);
        acc.execute(&mut buf, &library::bell_kernel(), &ExecOptions::with_shots(256).seeded(5)).unwrap();
        assert!(buf.measurements().keys().all(|k| k == "00" || k == "11"), "{:?}", buf.measurements());
    }

    #[test]
    fn readout_error_produces_odd_parity_outcomes() {
        let acc = NoisyQppAccelerator::new(1, 0.0, 0.25);
        let mut buf = AcceleratorBuffer::with_name("b", 2);
        acc.execute(&mut buf, &library::bell_kernel(), &ExecOptions::with_shots(2048).seeded(6)).unwrap();
        let odd: usize = buf
            .measurements()
            .iter()
            .filter(|(k, _)| k.bytes().filter(|&b| b == b'1').count() % 2 == 1)
            .map(|(_, v)| *v)
            .sum();
        assert!(odd > 0, "25% readout error must corrupt some Bell shots");
    }

    #[test]
    fn depolarizing_noise_reduces_ghz_purity() {
        let acc = NoisyQppAccelerator::new(1, 0.05, 0.0);
        let mut buf = AcceleratorBuffer::with_name("b", 4);
        acc.execute(&mut buf, &library::ghz_kernel(4), &ExecOptions::with_shots(1024).seeded(7)).unwrap();
        let clean = buf.probability("0000") + buf.probability("1111");
        assert!(clean < 0.999, "5% depolarizing noise must leak probability, got {clean}");
        assert!(clean > 0.5, "but the signal should survive, got {clean}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let acc = NoisyQppAccelerator::new(1, 0.02, 0.02);
        let opts = ExecOptions::with_shots(128).seeded(8);
        let mut a = AcceleratorBuffer::with_name("a", 2);
        let mut b = AcceleratorBuffer::with_name("b", 2);
        acc.execute(&mut a, &library::bell_kernel(), &opts).unwrap();
        acc.execute(&mut b, &library::bell_kernel(), &opts).unwrap();
        assert_eq!(a.measurements(), b.measurements());
    }

    #[test]
    fn trajectory_counts_are_pool_size_invariant() {
        // The trajectory path inherits the batched scheduler's determinism
        // contract: same (seed, chunk config) ⇒ byte-identical counts no
        // matter how many pool threads execute the chunks.
        let noise = NoiseModel { depolarizing: 0.02, dephasing: 0.01, amplitude_damping: 0.015 };
        let solo = NoisyQppAccelerator::with_noise(1, noise, 0.01);
        let team = NoisyQppAccelerator::with_noise(4, noise, 0.01);
        let opts = ExecOptions::with_shots(512).seeded(11);
        let mut a = AcceleratorBuffer::with_name("a", 3);
        let mut b = AcceleratorBuffer::with_name("b", 3);
        solo.execute(&mut a, &library::ghz_kernel(3), &opts).unwrap();
        team.execute(&mut b, &library::ghz_kernel(3), &opts).unwrap();
        assert_eq!(a.measurements(), b.measurements());
    }

    #[test]
    fn all_modes_agree_statistically() {
        let noise = NoiseModel { depolarizing: 0.03, ..Default::default() };
        let circuit = library::ghz_kernel(3);
        let shots = 8192;
        let mut clean = Vec::new();
        for mode in ["trajectory", "density", "interpreted"] {
            let acc = NoisyQppAccelerator::from_params(
                &HetMap::new()
                    .with("threads", 1usize)
                    .with("depolarizing", noise.depolarizing)
                    .with("readout-error", 0.0f64)
                    .with("noise-mode", mode),
            )
            .unwrap();
            let mut buf = AcceleratorBuffer::with_name("b", 3);
            acc.execute(&mut buf, &circuit, &ExecOptions::with_shots(shots).seeded(13)).unwrap();
            assert_eq!(buf.total_shots(), shots);
            clean.push(buf.probability("000") + buf.probability("111"));
        }
        for pair in clean.windows(2) {
            assert!((pair[0] - pair[1]).abs() < 0.05, "modes disagree: {clean:?}");
        }
    }

    #[test]
    fn mid_circuit_measure_and_reset_execute_in_trajectory_mode() {
        let mut c = Circuit::new(2);
        c.h(0).measure(0).x(1).reset(1).cx(0, 1).measure(0).measure(1);
        let acc = NoisyQppAccelerator::new(1, 0.0, 0.0);
        let mut buf = AcceleratorBuffer::with_name("b", 2);
        acc.execute(&mut buf, &c, &ExecOptions::with_shots(512).seeded(17)).unwrap();
        // Reset wipes the X on qubit 1, so the CX re-correlates perfectly.
        assert!(buf.measurements().keys().all(|k| k == "00" || k == "11"), "{:?}", buf.measurements());
    }

    #[test]
    fn from_params_parses_noise_model_and_mode() {
        let acc = NoisyQppAccelerator::from_params(
            &HetMap::new()
                .with("threads", 1usize)
                .with("depolarizing", 0.01f64)
                .with("dephasing", 0.02f64)
                .with("amplitude-damping", 0.03f64)
                .with("readout-error", 0.04f64)
                .with("noise-mode", "density")
                .with("chunk-shots", 16usize),
        )
        .unwrap();
        assert_eq!(acc.noise(), NoiseModel { depolarizing: 0.01, dephasing: 0.02, amplitude_damping: 0.03 });
        assert_eq!(acc.mode(), NoiseMode::Density);
        assert_eq!(acc.chunk_shots, Some(16));
    }

    #[test]
    fn from_params_rejects_bad_values_as_err() {
        let err = NoisyQppAccelerator::from_params(
            &HetMap::new().with("threads", 1usize).with("noise-mode", "exact"),
        )
        .unwrap_err();
        assert!(matches!(err, XaccError::InvalidParam(ref msg) if msg.contains("noise-mode")), "{err}");
        let err = NoisyQppAccelerator::from_params(
            &HetMap::new().with("threads", 1usize).with("depolarizing", 1.5f64),
        )
        .unwrap_err();
        assert!(matches!(err, XaccError::InvalidParam(ref msg) if msg.contains("depolarizing")), "{err}");
        let err = NoisyQppAccelerator::from_params(
            &HetMap::new().with("threads", 1usize).with("readout-error", -0.1f64),
        )
        .unwrap_err();
        assert!(matches!(err, XaccError::InvalidParam(ref msg) if msg.contains("readout-error")), "{err}");
        let err = NoisyQppAccelerator::from_params(
            &HetMap::new().with("threads", 1usize).with("noise-mode", 3usize),
        )
        .unwrap_err();
        assert!(matches!(err, XaccError::InvalidParam(ref msg) if msg.contains("noise-mode")), "{err}");
    }
}
