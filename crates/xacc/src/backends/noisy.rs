//! A noisy variant of the `qpp` backend: depolarizing noise after every
//! unitary gate plus readout (bit-flip) error at measurement.
//!
//! The paper's future work calls for "additional quantum simulation and
//! physical back ends"; this backend stands in for a physical device whose
//! results are noisy, and doubles as a second, behaviourally distinct
//! service in the registry for testing multi-backend dispatch.

use crate::accelerator::{Accelerator, BackendCapability, ExecOptions};
use crate::buffer::AcceleratorBuffer;
use crate::hetmap::HetMap;
use crate::XaccError;
use qcor_circuit::{Circuit, GateKind, Instruction};
use qcor_pool::ThreadPool;
use qcor_sim::{gates, StateVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Depolarizing + readout-error simulator backend.
pub struct NoisyQppAccelerator {
    pool: Arc<ThreadPool>,
    /// Per-gate, per-qubit depolarizing probability.
    p_depol: f64,
    /// Probability a measured bit is reported flipped.
    p_readout: f64,
}

impl NoisyQppAccelerator {
    /// A noisy backend with the given error rates.
    pub fn new(threads: usize, p_depol: f64, p_readout: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_depol) && (0.0..=1.0).contains(&p_readout));
        NoisyQppAccelerator {
            pool: Arc::new(qcor_pool::PoolBuilder::new().num_threads(threads).name("qpp-noisy").build()),
            p_depol,
            p_readout,
        }
    }

    /// Construct from registry params: `threads`, `depolarizing`
    /// (default 0.001), `readout-error` (default 0.01).
    pub fn from_params(params: &HetMap) -> Self {
        Self::new(
            params.get_usize("threads").unwrap_or(1).max(1),
            params.get_float("depolarizing").unwrap_or(0.001),
            params.get_float("readout-error").unwrap_or(0.01),
        )
    }

    fn maybe_depolarize(&self, state: &mut StateVector, qubit: usize, rng: &mut StdRng) {
        if rng.gen::<f64>() >= self.p_depol {
            return;
        }
        let pauli = match rng.gen_range(0..3) {
            0 => GateKind::X,
            1 => GateKind::Y,
            _ => GateKind::Z,
        };
        let inst = Instruction::new(pauli, vec![qubit], vec![]);
        gates::apply_instruction(state, &inst, rng);
    }
}

impl Accelerator for NoisyQppAccelerator {
    fn name(&self) -> String {
        "qpp-noisy".to_string()
    }

    fn capability(&self) -> BackendCapability {
        BackendCapability::Noisy
    }

    fn execute(
        &self,
        buffer: &mut AcceleratorBuffer,
        circuit: &Circuit,
        opts: &ExecOptions,
    ) -> Result<(), XaccError> {
        if circuit.num_qubits() > buffer.size() {
            return Err(XaccError::Execution(format!(
                "kernel uses {} qubits but the buffer has {}",
                circuit.num_qubits(),
                buffer.size()
            )));
        }
        let mut rng = match opts.seed {
            Some(s) => StdRng::seed_from_u64(s),
            None => StdRng::from_entropy(),
        };
        let mut state = StateVector::with_pool(circuit.num_qubits(), Arc::clone(&self.pool));
        for shot in 0..opts.shots {
            if shot > 0 {
                state.reset_to_zero();
            }
            let mut outcomes: std::collections::BTreeMap<usize, u8> = Default::default();
            for inst in circuit.instructions() {
                match inst.gate {
                    GateKind::Measure => {
                        let mut bit = state.measure(inst.qubits[0], &mut rng);
                        if rng.gen::<f64>() < self.p_readout {
                            bit ^= 1;
                        }
                        outcomes.insert(inst.qubits[0], bit);
                    }
                    _ => {
                        gates::apply_instruction(&mut state, inst, &mut rng);
                        if inst.gate.is_unitary() && inst.gate != GateKind::Barrier {
                            for &q in &inst.qubits {
                                self.maybe_depolarize(&mut state, q, &mut rng);
                            }
                        }
                    }
                }
            }
            let bits: String = outcomes.values().map(|b| char::from(b'0' + b)).collect();
            buffer.add_count(bits, 1);
        }
        Ok(())
    }

    fn num_threads(&self) -> usize {
        self.pool.num_threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcor_circuit::library;

    #[test]
    fn noiseless_configuration_matches_ideal_bell() {
        let acc = NoisyQppAccelerator::new(1, 0.0, 0.0);
        let mut buf = AcceleratorBuffer::with_name("b", 2);
        acc.execute(&mut buf, &library::bell_kernel(), &ExecOptions::with_shots(256).seeded(5)).unwrap();
        assert!(buf.measurements().keys().all(|k| k == "00" || k == "11"), "{:?}", buf.measurements());
    }

    #[test]
    fn readout_error_produces_odd_parity_outcomes() {
        let acc = NoisyQppAccelerator::new(1, 0.0, 0.25);
        let mut buf = AcceleratorBuffer::with_name("b", 2);
        acc.execute(&mut buf, &library::bell_kernel(), &ExecOptions::with_shots(2048).seeded(6)).unwrap();
        let odd: usize = buf
            .measurements()
            .iter()
            .filter(|(k, _)| k.bytes().filter(|&b| b == b'1').count() % 2 == 1)
            .map(|(_, v)| *v)
            .sum();
        assert!(odd > 0, "25% readout error must corrupt some Bell shots");
    }

    #[test]
    fn depolarizing_noise_reduces_ghz_purity() {
        let acc = NoisyQppAccelerator::new(1, 0.05, 0.0);
        let mut buf = AcceleratorBuffer::with_name("b", 4);
        acc.execute(&mut buf, &library::ghz_kernel(4), &ExecOptions::with_shots(1024).seeded(7)).unwrap();
        let clean = buf.probability("0000") + buf.probability("1111");
        assert!(clean < 0.999, "5% depolarizing noise must leak probability, got {clean}");
        assert!(clean > 0.5, "but the signal should survive, got {clean}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let acc = NoisyQppAccelerator::new(1, 0.02, 0.02);
        let opts = ExecOptions::with_shots(128).seeded(8);
        let mut a = AcceleratorBuffer::with_name("a", 2);
        let mut b = AcceleratorBuffer::with_name("b", 2);
        acc.execute(&mut a, &library::bell_kernel(), &opts).unwrap();
        acc.execute(&mut b, &library::bell_kernel(), &opts).unwrap();
        assert_eq!(a.measurements(), b.measurements());
    }
}
