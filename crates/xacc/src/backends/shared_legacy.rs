//! Reproduction of the pre-fix shared-accelerator data race (§V-A.2).
//!
//! In the original QCOR/XACC implementation the `qpu` pointer is a global
//! and `getService<Accelerator>("qpp")` always returns the *same* instance;
//! kernels "register their gates to the same accelerator and can thus end
//! up simulating an erroneous circuit" when several threads run at once.
//!
//! [`SharedQueueAccelerator`] models that architecture faithfully at the
//! semantic level while remaining memory-safe Rust: every `execute` call
//! appends its kernel's instructions one by one to a single shared gate
//! queue (yielding between appends, as a real runtime would interleave),
//! then drains *whatever the queue holds* and simulates it. Run from one
//! thread it behaves perfectly; run from two threads the drained
//! instruction stream is an interleaving of both kernels and the results
//! are garbage. The integration test `race_reproduction.rs` demonstrates
//! both halves, and the `QPUManager` in the core crate is the fix.

use crate::accelerator::{Accelerator, ExecOptions};
use crate::buffer::AcceleratorBuffer;
use crate::XaccError;
use parking_lot::Mutex;
use qcor_circuit::{Circuit, Instruction};
use qcor_pool::ThreadPool;
use qcor_sim::{run_shots, RunConfig};
use std::sync::Arc;

/// Singleton backend with a shared gate queue (the paper's pre-fix
/// behaviour). Registered as `qpp-legacy-shared`.
pub struct SharedQueueAccelerator {
    pool: Arc<ThreadPool>,
    /// The shared gate-registration queue all callers append into.
    queue: Mutex<Vec<Instruction>>,
}

impl SharedQueueAccelerator {
    /// A shared-queue backend simulating with `threads` threads.
    pub fn new(threads: usize) -> Self {
        SharedQueueAccelerator {
            pool: Arc::new(qcor_pool::PoolBuilder::new().num_threads(threads).name("qpp-legacy").build()),
            queue: Mutex::new(Vec::new()),
        }
    }
}

impl Accelerator for SharedQueueAccelerator {
    fn name(&self) -> String {
        "qpp-legacy-shared".to_string()
    }

    fn execute(
        &self,
        buffer: &mut AcceleratorBuffer,
        circuit: &Circuit,
        opts: &ExecOptions,
    ) -> Result<(), XaccError> {
        // Phase 1: register this kernel's gates into the shared instance,
        // one instruction at a time. Each lock release is a window in which
        // a concurrent caller's gates interleave with ours — the data race
        // scenario of §V-A.2.
        for inst in circuit.instructions() {
            self.queue.lock().push(inst.clone());
            std::thread::yield_now();
        }
        // Phase 2: drain whatever the shared queue now holds and simulate
        // it as "the" circuit. Under concurrency this is an interleaving of
        // several kernels (or empty, if another thread drained first).
        let drained: Vec<Instruction> = std::mem::take(&mut *self.queue.lock());
        let width =
            drained.iter().filter_map(|i| i.max_qubit()).max().map(|m| m + 1).unwrap_or(0).max(buffer.size());
        let mut assembled = Circuit::new(width);
        for inst in drained {
            assembled.try_push(inst).map_err(|e| XaccError::Execution(e.to_string()))?;
        }
        let config = RunConfig { shots: opts.shots, seed: opts.seed, ..RunConfig::default() };
        let counts = run_shots(&assembled, Arc::clone(&self.pool), &config);
        buffer.merge_counts(&counts);
        Ok(())
    }

    fn num_threads(&self) -> usize {
        self.pool.num_threads()
    }

    fn is_cloneable(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcor_circuit::library;

    #[test]
    fn single_threaded_use_is_correct() {
        // The legacy backend is not wrong per se — only unsafe to share.
        let acc = SharedQueueAccelerator::new(1);
        let mut buf = AcceleratorBuffer::with_name("b", 2);
        acc.execute(&mut buf, &library::bell_kernel(), &ExecOptions::with_shots(256).seeded(1)).unwrap();
        assert_eq!(buf.total_shots(), 256);
        assert!(buf.measurements().keys().all(|k| k == "00" || k == "11"), "{:?}", buf.measurements());
    }

    #[test]
    fn concurrent_use_corrupts_results() {
        // Two threads, each executing a Bell kernel against the SAME
        // instance. At least one run out of several attempts must deviate
        // from the clean {00, 11} distribution, demonstrating the race.
        let acc = Arc::new(SharedQueueAccelerator::new(1));
        let mut corrupted = false;
        for attempt in 0..20 {
            let mut handles = Vec::new();
            for t in 0..2u64 {
                let acc = Arc::clone(&acc);
                handles.push(std::thread::spawn(move || {
                    let mut buf = AcceleratorBuffer::with_name(format!("b{t}"), 2);
                    acc.execute(
                        &mut buf,
                        &library::bell_kernel(),
                        &ExecOptions::with_shots(64).seeded(attempt * 2 + t),
                    )
                    .unwrap();
                    buf
                }));
            }
            for h in handles {
                let buf = h.join().unwrap();
                let clean =
                    buf.total_shots() == 64 && buf.measurements().keys().all(|k| k == "00" || k == "11");
                if !clean {
                    corrupted = true;
                }
            }
            if corrupted {
                break;
            }
        }
        assert!(
            corrupted,
            "concurrent shared-queue executions never corrupted — the race reproduction is broken"
        );
    }

    #[test]
    fn reports_not_cloneable() {
        assert!(!SharedQueueAccelerator::new(1).is_cloneable());
    }
}
