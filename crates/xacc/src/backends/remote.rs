//! A latency-simulating accelerator, standing in for a cloud-hosted QPU or
//! simulator service.
//!
//! The paper notes the "QPU part" may be "a quantum circuit simulation on
//! either a local machine or a cloud service" (§IV-A); queueing and network
//! latency are exactly why `std::async`-style execution (paper Listing 5)
//! pays off. This backend delegates to the local `qpp` simulator after a
//! configurable artificial delay.

use crate::accelerator::{Accelerator, BackendCapability, ExecOptions};
use crate::backends::QppAccelerator;
use crate::buffer::AcceleratorBuffer;
use crate::hetmap::HetMap;
use crate::XaccError;
use qcor_circuit::Circuit;
use std::time::Duration;

/// Simulated remote accelerator: fixed round-trip latency + local execution.
pub struct RemoteAccelerator {
    inner: QppAccelerator,
    latency: Duration,
}

impl RemoteAccelerator {
    /// A remote backend with the given round-trip latency.
    pub fn new(threads: usize, latency: Duration) -> Self {
        RemoteAccelerator { inner: QppAccelerator::new(threads), latency }
    }

    /// Construct from registry params: `threads`, `latency-ms`
    /// (default 50).
    pub fn from_params(params: &HetMap) -> Self {
        Self::new(
            params.get_usize("threads").unwrap_or(1).max(1),
            Duration::from_millis(params.get_usize("latency-ms").unwrap_or(50) as u64),
        )
    }

    /// The configured latency.
    pub fn latency(&self) -> Duration {
        self.latency
    }
}

impl Accelerator for RemoteAccelerator {
    fn name(&self) -> String {
        "remote".to_string()
    }

    fn capability(&self) -> BackendCapability {
        BackendCapability::Remote
    }

    fn execute(
        &self,
        buffer: &mut AcceleratorBuffer,
        circuit: &Circuit,
        opts: &ExecOptions,
    ) -> Result<(), XaccError> {
        std::thread::sleep(self.latency);
        self.inner.execute(buffer, circuit, opts)
    }

    fn num_threads(&self) -> usize {
        self.inner.num_threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcor_circuit::library;
    use std::time::Instant;

    #[test]
    fn adds_latency_and_still_computes() {
        let acc = RemoteAccelerator::new(1, Duration::from_millis(30));
        let mut buf = AcceleratorBuffer::with_name("b", 2);
        let start = Instant::now();
        acc.execute(&mut buf, &library::bell_kernel(), &ExecOptions::with_shots(16).seeded(1)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(30));
        assert_eq!(buf.total_shots(), 16);
    }

    #[test]
    fn params_configure_latency() {
        let acc = RemoteAccelerator::from_params(&HetMap::new().with("latency-ms", 5usize));
        assert_eq!(acc.latency(), Duration::from_millis(5));
    }
}
