//! The `AcceleratorBuffer`: XACC's named results container.
//!
//! A buffer is created by `qalloc(n)` (see the core runtime crate), handed
//! to an accelerator along with a kernel, and afterwards holds the
//! measurement counts. [`AcceleratorBuffer::to_json`] renders the same
//! shape as paper Listing 2:
//!
//! ```json
//! "AcceleratorBuffer": {
//!     "name": "qrg_bmQBh",
//!     "size": 2,
//!     "Information": {},
//!     "Measurements": {
//!         "00": 513,
//!         "11": 511
//!     }
//! }
//! ```

use rand::distributions::Alphanumeric;
use rand::Rng;
use std::collections::BTreeMap;

/// Measurement counts keyed by bitstring (lowest measured qubit leftmost).
pub type Counts = BTreeMap<String, usize>;

/// A named qubit-register buffer accumulating execution results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AcceleratorBuffer {
    name: String,
    size: usize,
    information: BTreeMap<String, String>,
    measurements: Counts,
}

impl AcceleratorBuffer {
    /// Allocate a buffer of `size` qubits with a generated name
    /// (`qrg_` + 5 random alphanumerics, like XACC's).
    pub fn new(size: usize) -> Self {
        let suffix: String = rand::thread_rng().sample_iter(&Alphanumeric).take(5).map(char::from).collect();
        Self::with_name(format!("qrg_{suffix}"), size)
    }

    /// Allocate a buffer with an explicit name.
    pub fn with_name(name: impl Into<String>, size: usize) -> Self {
        AcceleratorBuffer {
            name: name.into(),
            size,
            information: BTreeMap::new(),
            measurements: Counts::new(),
        }
    }

    /// Buffer name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Register size in qubits.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Record one observation of `bitstring`.
    pub fn add_count(&mut self, bitstring: impl Into<String>, count: usize) {
        *self.measurements.entry(bitstring.into()).or_insert(0) += count;
    }

    /// Merge a whole counts map (e.g. from an executor run).
    pub fn merge_counts(&mut self, counts: &Counts) {
        for (k, v) in counts {
            self.add_count(k.clone(), *v);
        }
    }

    /// Measurement counts observed so far.
    pub fn measurements(&self) -> &Counts {
        &self.measurements
    }

    /// Total number of recorded shots.
    pub fn total_shots(&self) -> usize {
        self.measurements.values().sum()
    }

    /// Observed probability of `bitstring` (0 if never observed or empty).
    pub fn probability(&self, bitstring: &str) -> f64 {
        let total = self.total_shots();
        if total == 0 {
            return 0.0;
        }
        self.measurements.get(bitstring).copied().unwrap_or(0) as f64 / total as f64
    }

    /// Expectation of Z⊗...⊗Z over the measured bits: Σ p(s)·(−1)^{|s|}.
    /// This is the ⟨H⟩ building block VQE derives from counts.
    pub fn exp_val_z(&self) -> f64 {
        let total = self.total_shots();
        if total == 0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for (bits, count) in &self.measurements {
            let ones = bits.bytes().filter(|&b| b == b'1').count();
            let sign = if ones % 2 == 0 { 1.0 } else { -1.0 };
            acc += sign * *count as f64;
        }
        acc / total as f64
    }

    /// Attach a key/value annotation (shown under `Information`).
    pub fn add_information(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.information.insert(key.into(), value.into());
    }

    /// Annotations.
    pub fn information(&self) -> &BTreeMap<String, String> {
        &self.information
    }

    /// Discard all recorded measurements (annotations are kept).
    pub fn clear_measurements(&mut self) {
        self.measurements.clear();
    }

    /// Render the Listing-2 style JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("\"AcceleratorBuffer\": {\n");
        out.push_str(&format!("    \"name\": \"{}\",\n", self.name));
        out.push_str(&format!("    \"size\": {},\n", self.size));
        out.push_str("    \"Information\": {");
        let mut first = true;
        for (k, v) in &self.information {
            if !first {
                out.push(',');
            }
            out.push_str(&format!("\n        \"{k}\": \"{v}\""));
            first = false;
        }
        if !self.information.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("},\n");
        out.push_str("    \"Measurements\": {");
        let mut first = true;
        for (bits, count) in &self.measurements {
            if !first {
                out.push(',');
            }
            out.push_str(&format!("\n        \"{bits}\": {count}"));
            first = false;
        }
        if !self.measurements.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("}\n}");
        out
    }

    /// Print the buffer to stdout (the `q.print()` of paper Listing 1).
    pub fn print(&self) {
        println!("{}", self.to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_names_have_prefix_and_differ() {
        let a = AcceleratorBuffer::new(2);
        let b = AcceleratorBuffer::new(2);
        assert!(a.name().starts_with("qrg_"));
        assert_eq!(a.name().len(), 9);
        assert_ne!(a.name(), b.name(), "names should be distinct with overwhelming probability");
    }

    #[test]
    fn counts_accumulate() {
        let mut buf = AcceleratorBuffer::with_name("b", 2);
        buf.add_count("00", 10);
        buf.add_count("11", 5);
        buf.add_count("00", 2);
        assert_eq!(buf.measurements().get("00"), Some(&12));
        assert_eq!(buf.total_shots(), 17);
    }

    #[test]
    fn probability_and_expectation() {
        let mut buf = AcceleratorBuffer::with_name("b", 2);
        buf.add_count("00", 500);
        buf.add_count("11", 500);
        assert!((buf.probability("00") - 0.5).abs() < 1e-12);
        assert!((buf.exp_val_z() - 1.0).abs() < 1e-12, "even parity on both outcomes");

        let mut buf = AcceleratorBuffer::with_name("b", 1);
        buf.add_count("0", 750);
        buf.add_count("1", 250);
        assert!((buf.exp_val_z() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_buffer_probability_is_zero() {
        let buf = AcceleratorBuffer::with_name("b", 2);
        assert_eq!(buf.probability("00"), 0.0);
        assert_eq!(buf.exp_val_z(), 0.0);
    }

    #[test]
    fn json_matches_listing_2_shape() {
        let mut buf = AcceleratorBuffer::with_name("qrg_bmQBh", 2);
        buf.add_count("00", 513);
        buf.add_count("11", 511);
        let json = buf.to_json();
        assert!(json.contains("\"AcceleratorBuffer\": {"));
        assert!(json.contains("\"name\": \"qrg_bmQBh\""));
        assert!(json.contains("\"size\": 2"));
        assert!(json.contains("\"Information\": {}"));
        assert!(json.contains("\"00\": 513"));
        assert!(json.contains("\"11\": 511"));
    }

    #[test]
    fn merge_counts_adds_everything() {
        let mut buf = AcceleratorBuffer::with_name("b", 2);
        let mut counts = Counts::new();
        counts.insert("01".to_string(), 3);
        counts.insert("10".to_string(), 4);
        buf.merge_counts(&counts);
        buf.merge_counts(&counts);
        assert_eq!(buf.total_shots(), 14);
    }

    #[test]
    fn clear_measurements_keeps_information() {
        let mut buf = AcceleratorBuffer::with_name("b", 1);
        buf.add_information("backend", "qpp");
        buf.add_count("0", 1);
        buf.clear_measurements();
        assert_eq!(buf.total_shots(), 0);
        assert_eq!(buf.information().get("backend").map(String::as_str), Some("qpp"));
    }
}
