//! Quantum arithmetic for Shor's kernel: Draper Fourier-space adders and the
//! Beauregard modular-exponentiation construction (paper reference \[20\],
//! "Circuit for Shor's algorithm using 2n+3 qubits").
//!
//! # Conventions
//!
//! * Registers are little-endian: `b[0]` is the least significant bit.
//! * The accumulator register `b` has `n + 1` qubits where `n` is the bit
//!   width of the modulus; the extra (most significant) qubit absorbs the
//!   carry and acts as the sign/borrow indicator inside the modular adder.
//! * "Fourier space" means the register has been transformed with
//!   [`crate::library::append_qft`]; Draper addition of a classical constant
//!   is then a ladder of pure phase gates.
//!
//! Also exported here are the classical number-theory helpers (`gcd`,
//! `mod_pow`, `mod_inv`) the constructions require — the same routines the
//! classical part of Shor's algorithm (paper Algorithm 1) uses.

use crate::circuit::Circuit;
use crate::library::{append_iqft, append_qft};
use std::f64::consts::TAU;

// ----- classical number theory ------------------------------------------------

/// Greatest common divisor (Euclid).
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// `base^exp mod m` by square-and-multiply (m ≤ 2^32 to avoid overflow).
pub fn mod_pow(mut base: u64, mut exp: u64, m: u64) -> u64 {
    assert!(m > 0, "modulus must be positive");
    assert!(m <= u32::MAX as u64 + 1, "modulus too large for u64 arithmetic");
    if m == 1 {
        return 0;
    }
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * base % m;
        }
        base = base * base % m;
        exp >>= 1;
    }
    acc
}

/// Modular inverse of `a` mod `m` via the extended Euclidean algorithm.
/// Returns `None` when `gcd(a, m) != 1`.
pub fn mod_inv(a: u64, m: u64) -> Option<u64> {
    let (mut old_r, mut r) = (a as i128, m as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
    }
    if old_r != 1 {
        return None;
    }
    Some(old_s.rem_euclid(m as i128) as u64)
}

/// Number of bits needed to represent `v` (at least 1).
pub fn bit_width(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).max(1)
}

// ----- Draper Fourier-space adders ---------------------------------------------

/// Phase angle applied to Fourier-space bit `j` of an `m`-bit register when
/// adding the constant `a`: 2π · a · 2^j / 2^m, reduced mod 2π.
fn add_angle(a: u64, j: usize, m: usize) -> f64 {
    debug_assert!(m < 63);
    let modulus = 1u64 << m;
    let phase_units = (a << j) & (modulus - 1); // (a · 2^j) mod 2^m
    TAU * phase_units as f64 / modulus as f64
}

/// ΦADD(a): add the classical constant `a` to the Fourier-space register
/// `b` (little-endian). Pure phase ladder; pass a negative-equivalent
/// constant (2^m − a) or use [`Circuit::inverse`] to subtract.
pub fn phi_add_const(c: &mut Circuit, b: &[usize], a: u64) {
    let m = b.len();
    for (j, &q) in b.iter().enumerate() {
        let angle = add_angle(a, j, m);
        if angle != 0.0 {
            c.phase(q, angle);
        }
    }
}

/// ΦSUB(a): subtract `a` from the Fourier-space register.
pub fn phi_sub_const(c: &mut Circuit, b: &[usize], a: u64) {
    let m = b.len();
    for (j, &q) in b.iter().enumerate() {
        let angle = add_angle(a, j, m);
        if angle != 0.0 {
            c.phase(q, -angle);
        }
    }
}

/// Singly-controlled ΦADD(a).
pub fn c_phi_add_const(c: &mut Circuit, ctrl: usize, b: &[usize], a: u64) {
    let m = b.len();
    for (j, &q) in b.iter().enumerate() {
        let angle = add_angle(a, j, m);
        if angle != 0.0 {
            c.cphase(ctrl, q, angle);
        }
    }
}

/// Singly-controlled ΦSUB(a).
pub fn c_phi_sub_const(c: &mut Circuit, ctrl: usize, b: &[usize], a: u64) {
    let m = b.len();
    for (j, &q) in b.iter().enumerate() {
        let angle = add_angle(a, j, m);
        if angle != 0.0 {
            c.cphase(ctrl, q, -angle);
        }
    }
}

/// Doubly-controlled ΦADD(a).
pub fn cc_phi_add_const(c: &mut Circuit, c0: usize, c1: usize, b: &[usize], a: u64) {
    let m = b.len();
    for (j, &q) in b.iter().enumerate() {
        let angle = add_angle(a, j, m);
        if angle != 0.0 {
            c.ccphase(c0, c1, q, angle);
        }
    }
}

/// Doubly-controlled ΦSUB(a).
pub fn cc_phi_sub_const(c: &mut Circuit, c0: usize, c1: usize, b: &[usize], a: u64) {
    let m = b.len();
    for (j, &q) in b.iter().enumerate() {
        let angle = add_angle(a, j, m);
        if angle != 0.0 {
            c.ccphase(c0, c1, q, -angle);
        }
    }
}

// ----- Beauregard modular arithmetic --------------------------------------------

/// Doubly-controlled modular adder ΦADDMOD(a, N) (Beauregard Fig. 5).
///
/// Preconditions: `b` is in Fourier space and holds a value `< N`,
/// `a < N`, the ancilla `anc` is |0⟩, and `b.len() == bit_width(N) + 1`.
/// Post: `b` (Fourier space) holds `(b + a) mod N` when both controls are
/// set, unchanged otherwise; `anc` is restored to |0⟩.
pub fn cc_phi_add_mod(c: &mut Circuit, c0: usize, c1: usize, b: &[usize], anc: usize, a: u64, n_mod: u64) {
    assert!(a < n_mod, "addend must be reduced mod N");
    let msb = *b.last().expect("empty accumulator register");
    cc_phi_add_const(c, c0, c1, b, a);
    phi_sub_const(c, b, n_mod);
    append_iqft(c, b);
    c.cx(msb, anc);
    append_qft(c, b);
    c_phi_add_const(c, anc, b, n_mod);
    cc_phi_sub_const(c, c0, c1, b, a);
    append_iqft(c, b);
    c.x(msb);
    c.cx(msb, anc);
    c.x(msb);
    append_qft(c, b);
    cc_phi_add_const(c, c0, c1, b, a);
}

/// Doubly-controlled modular subtractor (the inverse of
/// [`cc_phi_add_mod`] with the same arguments).
pub fn cc_phi_sub_mod(c: &mut Circuit, c0: usize, c1: usize, b: &[usize], anc: usize, a: u64, n_mod: u64) {
    let mut tmp = Circuit::new(c.num_qubits());
    cc_phi_add_mod(&mut tmp, c0, c1, b, anc, a, n_mod);
    c.extend(&tmp.inverse().expect("modular adder is unitary"));
}

/// Controlled modular multiply-accumulate CMULT(a) MOD N:
/// `b ← (b + a·x) mod N` when `ctrl` is set (Beauregard Fig. 6).
///
/// `x` is the `n`-qubit multiplier register, `b` the `n+1`-qubit
/// accumulator in *computational* space (the QFT/IQFT pair is internal),
/// `anc` a |0⟩ ancilla.
pub fn c_mult_mod(c: &mut Circuit, ctrl: usize, x: &[usize], b: &[usize], anc: usize, a: u64, n_mod: u64) {
    append_qft(c, b);
    for (i, &xi) in x.iter().enumerate() {
        let addend = (a % n_mod) * mod_pow(2, i as u64, n_mod) % n_mod;
        cc_phi_add_mod(c, ctrl, xi, b, anc, addend, n_mod);
    }
    append_iqft(c, b);
}

/// Inverse of [`c_mult_mod`].
pub fn c_mult_mod_inverse(
    c: &mut Circuit,
    ctrl: usize,
    x: &[usize],
    b: &[usize],
    anc: usize,
    a: u64,
    n_mod: u64,
) {
    let mut tmp = Circuit::new(c.num_qubits());
    c_mult_mod(&mut tmp, ctrl, x, b, anc, a, n_mod);
    c.extend(&tmp.inverse().expect("multiplier is unitary"));
}

/// Controlled modular multiplication-in-place CU(a):
/// `x ← a·x mod N` when `ctrl` is set (Beauregard Fig. 7). Requires
/// `gcd(a, N) = 1`; `b` (n+1 qubits) and `anc` must be |0⟩ and are
/// restored.
pub fn c_ua(c: &mut Circuit, ctrl: usize, x: &[usize], b: &[usize], anc: usize, a: u64, n_mod: u64) {
    let a = a % n_mod;
    let a_inv = mod_inv(a, n_mod).expect("base must be coprime with the modulus");
    // b ← b + a·x (mod N); with b=0 this computes a·x.
    c_mult_mod(c, ctrl, x, b, anc, a, n_mod);
    // Swap x and b (low n qubits) under control: x ← a·x, b ← x.
    for (i, &xi) in x.iter().enumerate() {
        c.cswap(ctrl, xi, b[i]);
    }
    // b ← b − a⁻¹·x (mod N) = x_old − a⁻¹·(a·x_old) = 0, clearing b.
    c_mult_mod_inverse(c, ctrl, x, b, anc, a_inv, n_mod);
}

/// Register layout used by the Shor kernels built on these primitives:
/// `x` (n qubits) holds the work value, `b` (n+1) the accumulator, `anc`
/// the modular-adder ancilla, `ctrl` the counting/phase-estimation qubit.
#[derive(Debug, Clone)]
pub struct ShorLayout {
    /// Bit width of the modulus.
    pub n: usize,
    /// Work register qubits (little-endian).
    pub x: Vec<usize>,
    /// Accumulator register qubits (little-endian, n+1 wide).
    pub b: Vec<usize>,
    /// Modular-adder ancilla.
    pub anc: usize,
    /// Phase-estimation control qubit.
    pub ctrl: usize,
}

impl ShorLayout {
    /// The canonical 2n+3-qubit layout: x = [0,n), b = [n, 2n+1),
    /// anc = 2n+1, ctrl = 2n+2.
    pub fn for_modulus(n_mod: u64) -> Self {
        let n = bit_width(n_mod);
        ShorLayout { n, x: (0..n).collect(), b: (n..2 * n + 1).collect(), anc: 2 * n + 1, ctrl: 2 * n + 2 }
    }

    /// Total number of qubits (2n + 3).
    pub fn num_qubits(&self) -> usize {
        2 * self.n + 3
    }

    /// Circuit implementing the controlled U_{a^{2^k}} used at phase-
    /// estimation step `k`.
    pub fn controlled_modexp_step(&self, a: u64, k: u32, n_mod: u64) -> Circuit {
        let a_pow = mod_pow(a, 1u64 << k, n_mod);
        let mut c = Circuit::new(self.num_qubits());
        c_ua(&mut c, self.ctrl, &self.x, &self.b, self.anc, a_pow, n_mod);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 15), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
    }

    #[test]
    fn mod_pow_matches_naive() {
        for base in 0..12u64 {
            for exp in 0..10u64 {
                for m in 1..20u64 {
                    let naive = (0..exp).fold(1u64 % m, |acc, _| acc * base % m);
                    assert_eq!(mod_pow(base, exp, m), naive, "{base}^{exp} mod {m}");
                }
            }
        }
    }

    #[test]
    fn mod_inv_is_an_inverse() {
        for m in 2..50u64 {
            for a in 1..m {
                match mod_inv(a, m) {
                    Some(inv) => {
                        assert_eq!(gcd(a, m), 1);
                        assert_eq!(a * inv % m, 1, "{a}⁻¹ mod {m}");
                    }
                    None => assert_ne!(gcd(a, m), 1),
                }
            }
        }
    }

    #[test]
    fn bit_width_basics() {
        assert_eq!(bit_width(0), 1);
        assert_eq!(bit_width(1), 1);
        assert_eq!(bit_width(15), 4);
        assert_eq!(bit_width(16), 5);
    }

    #[test]
    fn add_angle_wraps_mod_2pi() {
        // adding 2^m is a no-op: all angles 0
        let m = 4;
        for j in 0..m {
            assert_eq!(add_angle(16, j, m), 0.0);
        }
        // a=1, j=m-1: half turn
        assert!((add_angle(1, 3, 4) - std::f64::consts::PI).abs() < 1e-15);
    }

    #[test]
    fn phi_add_emits_only_phases() {
        let mut c = Circuit::new(4);
        phi_add_const(&mut c, &[0, 1, 2, 3], 5);
        assert!(c.instructions().iter().all(|i| i.gate == crate::GateKind::Phase));
    }

    #[test]
    fn phi_add_then_sub_cancels() {
        let mut c = Circuit::new(4);
        let b = [0, 1, 2, 3];
        phi_add_const(&mut c, &b, 5);
        phi_sub_const(&mut c, &b, 5);
        crate::passes::optimize(&mut c);
        assert!(c.is_empty());
    }

    #[test]
    fn modular_adder_restores_structure_on_inverse() {
        let n_mod = 15u64;
        let layout = ShorLayout::for_modulus(n_mod);
        let mut fwd = Circuit::new(layout.num_qubits());
        cc_phi_add_mod(&mut fwd, layout.ctrl, layout.x[0], &layout.b, layout.anc, 7, n_mod);
        let mut both = fwd.clone();
        cc_phi_sub_mod(&mut both, layout.ctrl, layout.x[0], &layout.b, layout.anc, 7, n_mod);
        crate::passes::optimize(&mut both);
        assert!(both.is_empty(), "ΦADDMOD · ΦSUBMOD should cancel structurally");
    }

    #[test]
    fn layout_for_15_has_11_qubits() {
        let layout = ShorLayout::for_modulus(15);
        assert_eq!(layout.n, 4);
        assert_eq!(layout.num_qubits(), 11);
        assert_eq!(layout.b.len(), 5);
        assert_eq!(layout.ctrl, 10);
    }

    #[test]
    fn controlled_modexp_step_builds() {
        let layout = ShorLayout::for_modulus(15);
        let c = layout.controlled_modexp_step(7, 0, 15);
        assert_eq!(c.num_qubits(), 11);
        assert!(c.len() > 100, "modular exponentiation step should be nontrivial");
    }

    #[test]
    #[should_panic(expected = "coprime")]
    fn c_ua_requires_coprime_base() {
        let layout = ShorLayout::for_modulus(15);
        let mut c = Circuit::new(layout.num_qubits());
        c_ua(&mut c, layout.ctrl, &layout.x, &layout.b, layout.anc, 5, 15);
    }
}
