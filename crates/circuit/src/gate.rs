//! Gate set and instruction representation.
//!
//! The gate set covers everything the paper's kernels and our library
//! circuits need: the XASM gates of Listings 1/3 (`H`, `X`, `Ry`, `CX`,
//! `Measure`), the standard Cliffords and rotations, controlled phases for
//! the QFT, and the three-qubit gates used by the Beauregard modular
//! arithmetic construction.

use serde::{Deserialize, Serialize};

/// The kind of an instruction, independent of its operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// Hadamard.
    H,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate S = sqrt(Z).
    S,
    /// S-dagger.
    Sdg,
    /// T = sqrt(S).
    T,
    /// T-dagger.
    Tdg,
    /// Rotation about X by an angle parameter.
    Rx,
    /// Rotation about Y by an angle parameter.
    Ry,
    /// Rotation about Z by an angle parameter.
    Rz,
    /// Phase gate diag(1, e^{i θ}).
    Phase,
    /// General single-qubit unitary U3(θ, φ, λ).
    U3,
    /// Controlled-X (CNOT): qubits\[0\] control, qubits\[1\] target.
    CX,
    /// Controlled-Y.
    CY,
    /// Controlled-Z.
    CZ,
    /// Controlled phase: diag(1,1,1,e^{i θ}).
    CPhase,
    /// Controlled Rz.
    CRz,
    /// SWAP.
    Swap,
    /// Toffoli (CCX): qubits\[0..2\] = control, control, target.
    CCX,
    /// Controlled swap (Fredkin): qubits\[0\] control.
    CSwap,
    /// Doubly-controlled phase: diag(1,...,1,e^{i θ}) on |111⟩.
    CCPhase,
    /// Computational-basis measurement of one qubit.
    Measure,
    /// Reset a qubit to |0⟩.
    Reset,
    /// Scheduling barrier (no-op for the simulator, blocks optimizer passes).
    Barrier,
}

impl GateKind {
    /// Canonical (XASM-style) mnemonic.
    pub fn name(self) -> &'static str {
        match self {
            GateKind::H => "H",
            GateKind::X => "X",
            GateKind::Y => "Y",
            GateKind::Z => "Z",
            GateKind::S => "S",
            GateKind::Sdg => "Sdg",
            GateKind::T => "T",
            GateKind::Tdg => "Tdg",
            GateKind::Rx => "Rx",
            GateKind::Ry => "Ry",
            GateKind::Rz => "Rz",
            GateKind::Phase => "Phase",
            GateKind::U3 => "U3",
            GateKind::CX => "CX",
            GateKind::CY => "CY",
            GateKind::CZ => "CZ",
            GateKind::CPhase => "CPhase",
            GateKind::CRz => "CRz",
            GateKind::Swap => "Swap",
            GateKind::CCX => "CCX",
            GateKind::CSwap => "CSwap",
            GateKind::CCPhase => "CCPhase",
            GateKind::Measure => "Measure",
            GateKind::Reset => "Reset",
            GateKind::Barrier => "Barrier",
        }
    }

    /// Parse a mnemonic (case-insensitive; accepts the common XASM and
    /// OpenQASM aliases, e.g. `CNOT`, `cx`, `sdg`, `cp`, `u1`).
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name.to_ascii_lowercase().as_str() {
            "h" => GateKind::H,
            "x" => GateKind::X,
            "y" => GateKind::Y,
            "z" => GateKind::Z,
            "s" => GateKind::S,
            "sdg" => GateKind::Sdg,
            "t" => GateKind::T,
            "tdg" => GateKind::Tdg,
            "rx" => GateKind::Rx,
            "ry" => GateKind::Ry,
            "rz" => GateKind::Rz,
            "phase" | "p" | "u1" => GateKind::Phase,
            "u3" | "u" => GateKind::U3,
            "cx" | "cnot" => GateKind::CX,
            "cy" => GateKind::CY,
            "cz" => GateKind::CZ,
            "cphase" | "cp" | "cu1" => GateKind::CPhase,
            "crz" => GateKind::CRz,
            "swap" => GateKind::Swap,
            "ccx" | "toffoli" => GateKind::CCX,
            "cswap" | "fredkin" => GateKind::CSwap,
            "ccphase" | "ccp" => GateKind::CCPhase,
            "measure" | "mz" => GateKind::Measure,
            "reset" => GateKind::Reset,
            "barrier" => GateKind::Barrier,
            _ => return None,
        })
    }

    /// Number of qubit operands.
    pub fn arity(self) -> usize {
        match self {
            GateKind::H
            | GateKind::X
            | GateKind::Y
            | GateKind::Z
            | GateKind::S
            | GateKind::Sdg
            | GateKind::T
            | GateKind::Tdg
            | GateKind::Rx
            | GateKind::Ry
            | GateKind::Rz
            | GateKind::Phase
            | GateKind::U3
            | GateKind::Measure
            | GateKind::Reset
            | GateKind::Barrier => 1,
            GateKind::CX
            | GateKind::CY
            | GateKind::CZ
            | GateKind::CPhase
            | GateKind::CRz
            | GateKind::Swap => 2,
            GateKind::CCX | GateKind::CSwap | GateKind::CCPhase => 3,
        }
    }

    /// Number of angle parameters.
    pub fn num_params(self) -> usize {
        match self {
            GateKind::Rx
            | GateKind::Ry
            | GateKind::Rz
            | GateKind::Phase
            | GateKind::CPhase
            | GateKind::CRz
            | GateKind::CCPhase => 1,
            GateKind::U3 => 3,
            _ => 0,
        }
    }

    /// True for unitary gates (excludes measure/reset/barrier).
    pub fn is_unitary(self) -> bool {
        !matches!(self, GateKind::Measure | GateKind::Reset | GateKind::Barrier)
    }

    /// True for gates that are their own inverse.
    pub fn is_self_inverse(self) -> bool {
        matches!(
            self,
            GateKind::H
                | GateKind::X
                | GateKind::Y
                | GateKind::Z
                | GateKind::CX
                | GateKind::CY
                | GateKind::CZ
                | GateKind::Swap
                | GateKind::CCX
                | GateKind::CSwap
        )
    }

    /// True for gates whose matrix is diagonal in the computational basis
    /// (pure phase action): runs of these commute freely with each other,
    /// which is what lets a circuit compiler merge them into single
    /// phase sweeps.
    pub fn is_diagonal(self) -> bool {
        matches!(
            self,
            GateKind::Z
                | GateKind::S
                | GateKind::Sdg
                | GateKind::T
                | GateKind::Tdg
                | GateKind::Rz
                | GateKind::Phase
                | GateKind::CZ
                | GateKind::CPhase
                | GateKind::CRz
                | GateKind::CCPhase
        )
    }

    /// Number of leading qubit operands that act as controls (operand
    /// convention: controls first). Diagonal gates report 0 — every
    /// operand of CZ/CPhase/CCPhase is symmetric phase support, not a
    /// control of a non-trivial target action.
    pub fn num_controls(self) -> usize {
        match self {
            GateKind::CX | GateKind::CY | GateKind::CSwap => 1,
            GateKind::CCX => 2,
            _ => 0,
        }
    }

    /// True for parametric rotations where two consecutive applications on
    /// the same operands merge by adding angles.
    pub fn is_additive_rotation(self) -> bool {
        matches!(
            self,
            GateKind::Rx
                | GateKind::Ry
                | GateKind::Rz
                | GateKind::Phase
                | GateKind::CPhase
                | GateKind::CRz
                | GateKind::CCPhase
        )
    }
}

impl std::fmt::Display for GateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One concrete instruction: a gate kind, its qubit operands, bound angle
/// parameters, and (for `Measure`) an optional classical bit target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    /// What to apply.
    pub gate: GateKind,
    /// Qubit operands; `gate.arity()` entries, controls first.
    pub qubits: Vec<usize>,
    /// Bound angle parameters; `gate.num_params()` entries.
    pub params: Vec<f64>,
    /// Classical bit receiving a measurement outcome, if any.
    pub cbit: Option<usize>,
}

impl Instruction {
    /// Build an instruction, checking operand and parameter counts.
    pub fn new(gate: GateKind, qubits: Vec<usize>, params: Vec<f64>) -> Self {
        assert_eq!(qubits.len(), gate.arity(), "{gate}: wrong number of qubit operands");
        assert_eq!(params.len(), gate.num_params(), "{gate}: wrong number of parameters");
        Instruction { gate, qubits, params, cbit: None }
    }

    /// The inverse instruction, or an error for non-unitary instructions.
    pub fn inverse(&self) -> Result<Instruction, crate::CircuitError> {
        use GateKind::*;
        if !self.gate.is_unitary() {
            return Err(crate::CircuitError::NotInvertible(self.gate.name().to_string()));
        }
        let inv = match self.gate {
            S => Instruction::new(Sdg, self.qubits.clone(), vec![]),
            Sdg => Instruction::new(S, self.qubits.clone(), vec![]),
            T => Instruction::new(Tdg, self.qubits.clone(), vec![]),
            Tdg => Instruction::new(T, self.qubits.clone(), vec![]),
            Rx | Ry | Rz | Phase | CPhase | CRz | CCPhase => {
                Instruction::new(self.gate, self.qubits.clone(), vec![-self.params[0]])
            }
            U3 => {
                // U3(θ,φ,λ)⁻¹ = U3(-θ,-λ,-φ)
                Instruction::new(
                    U3,
                    self.qubits.clone(),
                    vec![-self.params[0], -self.params[2], -self.params[1]],
                )
            }
            _ => self.clone(), // self-inverse gates and Barrier
        };
        Ok(inv)
    }

    /// True when `other` acts on the same operands with the same gate kind.
    pub fn same_op(&self, other: &Instruction) -> bool {
        self.gate == other.gate && self.qubits == other.qubits
    }

    /// Largest qubit index used, if any operands exist.
    pub fn max_qubit(&self) -> Option<usize> {
        self.qubits.iter().copied().max()
    }

    /// Bitmask of every qubit this instruction touches (its support).
    /// Instructions with disjoint supports act on different qubits and
    /// therefore commute.
    ///
    /// Panics when a qubit index is ≥ [`crate::MAX_QUBITS`]: in release
    /// builds the naive `1 << q` would silently wrap and corrupt every
    /// commute/fusion decision downstream. Circuits built through
    /// [`Circuit`](crate::Circuit) are rejected before this can trigger;
    /// use [`Instruction::try_support_mask`] for untrusted instructions.
    pub fn support_mask(&self) -> usize {
        match self.try_support_mask() {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Checked form of [`Instruction::support_mask`].
    pub fn try_support_mask(&self) -> Result<usize, crate::CircuitError> {
        checked_mask(&self.qubits)
    }

    /// Bitmask of the control operands (see [`GateKind::num_controls`]).
    /// Panics for qubit indices ≥ [`crate::MAX_QUBITS`], like
    /// [`Instruction::support_mask`].
    pub fn control_mask(&self) -> usize {
        match self.try_control_mask() {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Checked form of [`Instruction::control_mask`].
    pub fn try_control_mask(&self) -> Result<usize, crate::CircuitError> {
        checked_mask(&self.qubits[..self.gate.num_controls()])
    }

    /// The non-control operands, in order.
    pub fn target_qubits(&self) -> &[usize] {
        &self.qubits[self.gate.num_controls()..]
    }
}

/// OR the qubits into a `usize` bitmask, rejecting indices that would shift
/// past the word instead of wrapping.
fn checked_mask(qubits: &[usize]) -> Result<usize, crate::CircuitError> {
    qubits.iter().try_fold(0usize, |m, &q| {
        if q >= crate::MAX_QUBITS {
            return Err(crate::CircuitError::TooManyQubits { requested: q + 1, max: crate::MAX_QUBITS });
        }
        Ok(m | (1usize << q))
    })
}

impl std::fmt::Display for Instruction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(", self.gate)?;
        let mut first = true;
        for q in &self.qubits {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "q[{q}]")?;
            first = false;
        }
        for p in &self.params {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
            first = false;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_round_trips_for_all_gates() {
        let all = [
            GateKind::H,
            GateKind::X,
            GateKind::Y,
            GateKind::Z,
            GateKind::S,
            GateKind::Sdg,
            GateKind::T,
            GateKind::Tdg,
            GateKind::Rx,
            GateKind::Ry,
            GateKind::Rz,
            GateKind::Phase,
            GateKind::U3,
            GateKind::CX,
            GateKind::CY,
            GateKind::CZ,
            GateKind::CPhase,
            GateKind::CRz,
            GateKind::Swap,
            GateKind::CCX,
            GateKind::CSwap,
            GateKind::CCPhase,
            GateKind::Measure,
            GateKind::Reset,
            GateKind::Barrier,
        ];
        for g in all {
            assert_eq!(GateKind::from_name(g.name()), Some(g), "{g}");
        }
    }

    #[test]
    fn aliases_parse() {
        assert_eq!(GateKind::from_name("cnot"), Some(GateKind::CX));
        assert_eq!(GateKind::from_name("u1"), Some(GateKind::Phase));
        assert_eq!(GateKind::from_name("toffoli"), Some(GateKind::CCX));
        assert_eq!(GateKind::from_name("nonsense"), None);
    }

    #[test]
    fn arity_and_params_consistent() {
        assert_eq!(GateKind::CCX.arity(), 3);
        assert_eq!(GateKind::U3.num_params(), 3);
        assert_eq!(GateKind::CX.num_params(), 0);
        assert_eq!(GateKind::Measure.arity(), 1);
    }

    #[test]
    #[should_panic(expected = "wrong number of qubit operands")]
    fn wrong_arity_panics() {
        Instruction::new(GateKind::CX, vec![0], vec![]);
    }

    #[test]
    fn inverse_of_rotation_negates_angle() {
        let rz = Instruction::new(GateKind::Rz, vec![3], vec![0.7]);
        let inv = rz.inverse().unwrap();
        assert_eq!(inv.gate, GateKind::Rz);
        assert_eq!(inv.params[0], -0.7);
    }

    #[test]
    fn inverse_of_s_is_sdg() {
        let s = Instruction::new(GateKind::S, vec![0], vec![]);
        assert_eq!(s.inverse().unwrap().gate, GateKind::Sdg);
        let sdg = Instruction::new(GateKind::Sdg, vec![0], vec![]);
        assert_eq!(sdg.inverse().unwrap().gate, GateKind::S);
    }

    #[test]
    fn inverse_of_u3_swaps_phi_lambda() {
        let u = Instruction::new(GateKind::U3, vec![0], vec![0.1, 0.2, 0.3]);
        let inv = u.inverse().unwrap();
        assert_eq!(inv.params, vec![-0.1, -0.3, -0.2]);
    }

    #[test]
    fn measure_is_not_invertible() {
        let m = Instruction::new(GateKind::Measure, vec![0], vec![]);
        assert!(m.inverse().is_err());
    }

    #[test]
    fn diagonal_classification_and_control_split() {
        assert!(GateKind::CZ.is_diagonal());
        assert!(GateKind::Rz.is_diagonal());
        assert!(!GateKind::CX.is_diagonal());
        assert!(!GateKind::H.is_diagonal());
        let ccx = Instruction::new(GateKind::CCX, vec![4, 1, 6], vec![]);
        assert_eq!(ccx.control_mask(), (1 << 4) | (1 << 1));
        assert_eq!(ccx.target_qubits(), &[6]);
        assert_eq!(ccx.support_mask(), (1 << 4) | (1 << 1) | (1 << 6));
        let h = Instruction::new(GateKind::H, vec![2], vec![]);
        assert_eq!(h.control_mask(), 0);
        assert_eq!(h.target_qubits(), &[2]);
        // CZ's operands are symmetric phase support, not controls.
        let cz = Instruction::new(GateKind::CZ, vec![0, 3], vec![]);
        assert_eq!(cz.control_mask(), 0);
        assert_eq!(cz.target_qubits(), &[0, 3]);
    }

    #[test]
    fn display_formats_like_xasm() {
        let cx = Instruction::new(GateKind::CX, vec![0, 1], vec![]);
        assert_eq!(cx.to_string(), "CX(q[0], q[1])");
        let ry = Instruction::new(GateKind::Ry, vec![1], vec![0.5]);
        assert_eq!(ry.to_string(), "Ry(q[1], 0.5)");
    }
}
