//! Versioned binary wire format for circuits, plus the structural hash
//! that keys the simulator's compile cache.
//!
//! The `vendor/serde` stub's derives expand to nothing (see
//! `vendor/README.md`), so nothing in this workspace can rely on
//! `#[derive(Serialize)]` producing working code. Instead of growing the
//! stub into a real derive, circuits get a small hand-rolled codec with an
//! explicit layout:
//!
//! ```text
//! bytes 0..4   magic  b"QCWF"
//! byte  4      kind   (0x01 = Circuit; 0x02 reserved for CompiledCircuit)
//! byte  5      format version (currently 1)
//! bytes 6..    little-endian payload, layout owned by (kind, version)
//! ```
//!
//! Version policy: the version byte is bumped whenever the payload layout
//! of a kind changes; decoders reject unknown versions with
//! [`WireError::UnknownVersion`] rather than guessing. Gate codes are a
//! frozen table ([`gate_code`]) — new gates append new codes, existing
//! codes are never renumbered.
//!
//! The **structural hash** ([`structural_hash`]) digests everything about a
//! circuit *except* bound angle values: qubit count, instruction stream,
//! gate kinds, operands, classical bits, and each gate's parameter *count*
//! (which fixes the parameter slot numbering). Two circuits that differ
//! only in their angles — a parameter sweep — therefore hash identically,
//! which is what lets the compile cache re-bind angles into a cached plan
//! instead of re-lowering.

use crate::circuit::Circuit;
use crate::gate::{GateKind, Instruction};
use crate::CircuitError;

/// Current wire-format version for the `Circuit` payload.
pub const CIRCUIT_WIRE_VERSION: u8 = 1;
/// Magic prefix of every wire buffer.
pub const WIRE_MAGIC: [u8; 4] = *b"QCWF";
/// Kind byte for a [`Circuit`] payload.
pub const KIND_CIRCUIT: u8 = 0x01;
/// Kind byte reserved for the simulator's `CompiledCircuit` payload.
pub const KIND_COMPILED: u8 = 0x02;

/// Typed decode/encode failure. Malformed input never panics.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// Buffer does not start with [`WIRE_MAGIC`].
    BadMagic,
    /// Kind byte does not match the expected payload kind.
    WrongKind { expected: u8, found: u8 },
    /// Version byte names a layout this decoder does not know.
    UnknownVersion(u8),
    /// Gate code outside the frozen gate table.
    UnknownGate(u8),
    /// Buffer ended before the payload did.
    Truncated { needed: usize, available: usize },
    /// Payload decoded but bytes remain.
    TrailingBytes(usize),
    /// Payload decoded to an invalid circuit (bad qubit index, oversized
    /// register, ...).
    Invalid(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "wire buffer does not start with the QCWF magic"),
            WireError::WrongKind { expected, found } => {
                write!(f, "wire kind byte {found:#04x} where {expected:#04x} was expected")
            }
            WireError::UnknownVersion(v) => write!(f, "unknown wire format version {v}"),
            WireError::UnknownGate(c) => write!(f, "unknown gate code {c:#04x}"),
            WireError::Truncated { needed, available } => {
                write!(f, "wire buffer truncated: needed {needed} more byte(s), {available} available")
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after wire payload"),
            WireError::Invalid(msg) => write!(f, "invalid wire payload: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<CircuitError> for WireError {
    fn from(e: CircuitError) -> Self {
        WireError::Invalid(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Frozen gate-code table.
// ---------------------------------------------------------------------------

/// Stable wire code of a gate kind. Codes are append-only: renumbering an
/// existing code is a format break and requires a version bump.
pub fn gate_code(gate: GateKind) -> u8 {
    match gate {
        GateKind::H => 0,
        GateKind::X => 1,
        GateKind::Y => 2,
        GateKind::Z => 3,
        GateKind::S => 4,
        GateKind::Sdg => 5,
        GateKind::T => 6,
        GateKind::Tdg => 7,
        GateKind::Rx => 8,
        GateKind::Ry => 9,
        GateKind::Rz => 10,
        GateKind::Phase => 11,
        GateKind::U3 => 12,
        GateKind::CX => 13,
        GateKind::CY => 14,
        GateKind::CZ => 15,
        GateKind::CPhase => 16,
        GateKind::CRz => 17,
        GateKind::Swap => 18,
        GateKind::CCX => 19,
        GateKind::CSwap => 20,
        GateKind::CCPhase => 21,
        GateKind::Measure => 22,
        GateKind::Reset => 23,
        GateKind::Barrier => 24,
    }
}

/// Inverse of [`gate_code`].
pub fn gate_from_code(code: u8) -> Option<GateKind> {
    Some(match code {
        0 => GateKind::H,
        1 => GateKind::X,
        2 => GateKind::Y,
        3 => GateKind::Z,
        4 => GateKind::S,
        5 => GateKind::Sdg,
        6 => GateKind::T,
        7 => GateKind::Tdg,
        8 => GateKind::Rx,
        9 => GateKind::Ry,
        10 => GateKind::Rz,
        11 => GateKind::Phase,
        12 => GateKind::U3,
        13 => GateKind::CX,
        14 => GateKind::CY,
        15 => GateKind::CZ,
        16 => GateKind::CPhase,
        17 => GateKind::CRz,
        18 => GateKind::Swap,
        19 => GateKind::CCX,
        20 => GateKind::CSwap,
        21 => GateKind::CCPhase,
        22 => GateKind::Measure,
        23 => GateKind::Reset,
        24 => GateKind::Barrier,
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Little-endian writer/reader primitives, shared with qcor-sim's
// CompiledCircuit codec.
// ---------------------------------------------------------------------------

/// Appends little-endian primitives after the magic/kind/version header.
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Start a buffer with the `QCWF` magic, kind and version bytes.
    pub fn new(kind: u8, version: u8) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&WIRE_MAGIC);
        buf.push(kind);
        buf.push(version);
        WireWriter { buf }
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern, little-endian.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Finish and take the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over a wire buffer; every read is bounds-checked.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wrap a buffer; call [`WireReader::header`] before payload reads.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Validate magic and kind, returning the version byte. The caller
    /// decides which versions it can decode.
    pub fn header(&mut self, expected_kind: u8) -> Result<u8, WireError> {
        if self.buf.len() < 6 {
            return Err(WireError::Truncated { needed: 6 - self.buf.len(), available: 0 });
        }
        if self.buf[..4] != WIRE_MAGIC {
            return Err(WireError::BadMagic);
        }
        let kind = self.buf[4];
        if kind != expected_kind {
            return Err(WireError::WrongKind { expected: expected_kind, found: kind });
        }
        self.pos = 6;
        Ok(self.buf[5])
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let available = self.buf.len() - self.pos;
        if available < n {
            return Err(WireError::Truncated { needed: n - available, available });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian IEEE-754 `f64`.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Error unless the payload consumed the whole buffer.
    pub fn finish(&self) -> Result<(), WireError> {
        let rest = self.buf.len() - self.pos;
        if rest != 0 {
            return Err(WireError::TrailingBytes(rest));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Circuit payload v1.
// ---------------------------------------------------------------------------

/// Encode a circuit into the v1 wire layout.
///
/// Payload: `u32 num_qubits`, `u32 count`, then per instruction a gate code
/// byte, `arity()` qubit `u32`s, `num_params()` `f64`s, and a classical-bit
/// presence byte followed by a `u32` when present.
pub fn encode(circuit: &Circuit) -> Vec<u8> {
    let mut w = WireWriter::new(KIND_CIRCUIT, CIRCUIT_WIRE_VERSION);
    w.u32(circuit.num_qubits() as u32);
    w.u32(circuit.len() as u32);
    for inst in circuit.instructions() {
        w.u8(gate_code(inst.gate));
        for &q in &inst.qubits {
            w.u32(q as u32);
        }
        for &p in &inst.params {
            w.f64(p);
        }
        match inst.cbit {
            Some(c) => {
                w.u8(1);
                w.u32(c as u32);
            }
            None => w.u8(0),
        }
    }
    w.finish()
}

/// Decode a v1 wire buffer back into a [`Circuit`]. All validation of the
/// ingest boundary happens here: magic/kind/version, the frozen gate table,
/// qubit bounds (via [`Circuit::try_push`]) and the [`crate::MAX_QUBITS`]
/// register cap (via [`Circuit::try_new`]).
pub fn decode(bytes: &[u8]) -> Result<Circuit, WireError> {
    let mut r = WireReader::new(bytes);
    let version = r.header(KIND_CIRCUIT)?;
    if version != CIRCUIT_WIRE_VERSION {
        return Err(WireError::UnknownVersion(version));
    }
    let num_qubits = r.u32()? as usize;
    let count = r.u32()? as usize;
    let mut circuit = Circuit::try_new(num_qubits)?;
    for _ in 0..count {
        let code = r.u8()?;
        let gate = gate_from_code(code).ok_or(WireError::UnknownGate(code))?;
        let mut qubits = Vec::with_capacity(gate.arity());
        for _ in 0..gate.arity() {
            qubits.push(r.u32()? as usize);
        }
        let mut params = Vec::with_capacity(gate.num_params());
        for _ in 0..gate.num_params() {
            params.push(r.f64()?);
        }
        let cbit = match r.u8()? {
            0 => None,
            1 => Some(r.u32()? as usize),
            flag => return Err(WireError::Invalid(format!("bad cbit flag {flag}"))),
        };
        let mut inst = Instruction::new(gate, qubits, params);
        inst.cbit = cbit;
        circuit.try_push(inst)?;
    }
    r.finish()?;
    Ok(circuit)
}

// ---------------------------------------------------------------------------
// Structural hash (word-at-a-time multiply-rotate mix) and structural
// equality.
// ---------------------------------------------------------------------------

const HASH_SEED: u64 = 0xcbf2_9ce4_8422_2325;
const HASH_MULT: u64 = 0x2545_f491_4f6c_dd1d;

// One whole word per round (not a byte at a time — the hash sits on the
// compile-cache lookup path, where a deep circuit is several hundred
// words). The hash is in-process only, never serialized, so the mixing
// function can change without a wire-format version bump.
fn mix_u64(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(HASH_MULT).rotate_left(23)
}

/// Hash of a circuit's *structure*: qubit count, gate kinds, operands,
/// classical bits, and parameter counts — but not parameter values.
/// Parameterized gates are identified by their parameter slot (their
/// position in [`Circuit::flat_params`]), which is fully determined by the
/// structure, so a sweep over angles on one structure is a single hash.
pub fn structural_hash(circuit: &Circuit) -> u64 {
    let mut h = HASH_SEED;
    h = mix_u64(h, circuit.num_qubits() as u64);
    h = mix_u64(h, circuit.len() as u64);
    for inst in circuit.instructions() {
        h = mix_u64(h, gate_code(inst.gate) as u64);
        for &q in &inst.qubits {
            h = mix_u64(h, q as u64);
        }
        h = mix_u64(h, inst.params.len() as u64);
        match inst.cbit {
            Some(c) => {
                h = mix_u64(h, 1);
                h = mix_u64(h, c as u64);
            }
            None => h = mix_u64(h, 0),
        }
    }
    h
}

/// True when two circuits share a structure (equal up to parameter
/// values). The compile cache verifies this on every hit so a hash
/// collision can never substitute one circuit's plan for another's.
pub fn structurally_equal(a: &Circuit, b: &Circuit) -> bool {
    a.num_qubits() == b.num_qubits()
        && a.len() == b.len()
        && a.instructions().iter().zip(b.instructions()).all(|(x, y)| {
            x.gate == y.gate && x.qubits == y.qubits && x.cbit == y.cbit && x.params.len() == y.params.len()
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        let mut c = Circuit::new(4);
        c.h(0)
            .cx(0, 1)
            .rz(2, 0.1234)
            .u3(3, 0.1, -0.2, 0.3)
            .ccphase(0, 1, 2, -1.5)
            .measure_to(1, 3)
            .measure(0)
            .barrier(2)
            .reset(3);
        c
    }

    #[test]
    fn gate_codes_round_trip() {
        for code in 0u8..=24 {
            let gate = gate_from_code(code).unwrap();
            assert_eq!(gate_code(gate), code);
        }
        assert_eq!(gate_from_code(25), None);
        assert_eq!(gate_from_code(255), None);
    }

    #[test]
    fn encode_decode_round_trips() {
        let c = sample();
        let bytes = encode(&c);
        assert_eq!(&bytes[..4], b"QCWF");
        assert_eq!(bytes[4], KIND_CIRCUIT);
        assert_eq!(bytes[5], CIRCUIT_WIRE_VERSION);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn empty_circuit_round_trips() {
        let c = Circuit::new(1);
        assert_eq!(decode(&encode(&c)).unwrap(), c);
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let mut bytes = encode(&sample());
        bytes[0] = b'X';
        assert_eq!(decode(&bytes), Err(WireError::BadMagic));
    }

    #[test]
    fn decode_rejects_unknown_version() {
        let mut bytes = encode(&sample());
        bytes[5] = 99;
        assert_eq!(decode(&bytes), Err(WireError::UnknownVersion(99)));
    }

    #[test]
    fn decode_rejects_wrong_kind() {
        let mut bytes = encode(&sample());
        bytes[4] = KIND_COMPILED;
        assert_eq!(
            decode(&bytes),
            Err(WireError::WrongKind { expected: KIND_CIRCUIT, found: KIND_COMPILED })
        );
    }

    #[test]
    fn decode_rejects_every_truncation() {
        let bytes = encode(&sample());
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, WireError::Truncated { .. }), "cut at {cut} gave {err:?}");
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut bytes = encode(&sample());
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn decode_rejects_unknown_gate_code() {
        let mut w = WireWriter::new(KIND_CIRCUIT, CIRCUIT_WIRE_VERSION);
        w.u32(1);
        w.u32(1);
        w.u8(200); // not in the gate table
        assert_eq!(decode(&w.finish()), Err(WireError::UnknownGate(200)));
    }

    #[test]
    fn decode_rejects_out_of_range_qubit() {
        let mut w = WireWriter::new(KIND_CIRCUIT, CIRCUIT_WIRE_VERSION);
        w.u32(2);
        w.u32(1);
        w.u8(gate_code(GateKind::H));
        w.u32(7); // register has 2 qubits
        w.u8(0);
        assert!(matches!(decode(&w.finish()), Err(WireError::Invalid(_))));
    }

    #[test]
    fn decode_rejects_oversized_register() {
        let mut w = WireWriter::new(KIND_CIRCUIT, CIRCUIT_WIRE_VERSION);
        w.u32(1000); // wider than MAX_QUBITS
        w.u32(0);
        assert!(matches!(decode(&w.finish()), Err(WireError::Invalid(_))));
    }

    #[test]
    fn structural_hash_ignores_angles_only() {
        let mut a = Circuit::new(3);
        a.ry(0, 0.1).cphase(0, 1, 0.2).measure(2);
        let mut b = Circuit::new(3);
        b.ry(0, 2.9).cphase(0, 1, -1.4).measure(2);
        assert_eq!(structural_hash(&a), structural_hash(&b));
        assert!(structurally_equal(&a, &b));

        // A different operand, gate kind, cbit or length must change it.
        let mut c = Circuit::new(3);
        c.ry(1, 0.1).cphase(0, 1, 0.2).measure(2);
        assert_ne!(structural_hash(&a), structural_hash(&c));
        assert!(!structurally_equal(&a, &c));
        let mut d = Circuit::new(3);
        d.rx(0, 0.1).cphase(0, 1, 0.2).measure(2);
        assert_ne!(structural_hash(&a), structural_hash(&d));
        let mut e = Circuit::new(3);
        e.ry(0, 0.1).cphase(0, 1, 0.2).measure_to(2, 1);
        assert_ne!(structural_hash(&a), structural_hash(&e));
    }

    #[test]
    fn flat_params_orders_slots_by_program_order() {
        let mut c = Circuit::new(2);
        c.h(0).ry(0, 0.5).u3(1, 1.0, 2.0, 3.0).cphase(0, 1, -0.25);
        assert_eq!(c.flat_params(), vec![0.5, 1.0, 2.0, 3.0, -0.25]);
    }
}
