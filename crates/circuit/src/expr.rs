//! Symbolic parameter expressions for parametric kernels.
//!
//! XASM kernels take classical arguments (the `double theta` of the paper's
//! VQE ansatz in Listing 3) that appear inside gate calls, possibly under
//! arithmetic such as `theta / 2` or `pi / 4`. [`ParamExpr`] is the small
//! expression AST those parsers produce; [`ParamExpr::eval`] folds it to a
//! concrete `f64` given variable bindings.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Error when evaluating a [`ParamExpr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Name of the unbound variable.
    pub unbound: String,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unbound kernel parameter `{}`", self.unbound)
    }
}

impl std::error::Error for EvalError {}

/// Arithmetic expression over numbers, named parameters, and `pi`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamExpr {
    /// Literal value.
    Num(f64),
    /// Named kernel parameter.
    Var(String),
    /// Negation.
    Neg(Box<ParamExpr>),
    /// Sum.
    Add(Box<ParamExpr>, Box<ParamExpr>),
    /// Difference.
    Sub(Box<ParamExpr>, Box<ParamExpr>),
    /// Product.
    Mul(Box<ParamExpr>, Box<ParamExpr>),
    /// Quotient.
    Div(Box<ParamExpr>, Box<ParamExpr>),
}

impl ParamExpr {
    /// Shorthand for a literal.
    pub fn num(v: f64) -> Self {
        ParamExpr::Num(v)
    }

    /// Shorthand for a named variable.
    pub fn var(name: impl Into<String>) -> Self {
        ParamExpr::Var(name.into())
    }

    /// Evaluate with the given variable bindings (`pi` is always bound).
    pub fn eval(&self, bindings: &HashMap<String, f64>) -> Result<f64, EvalError> {
        Ok(match self {
            ParamExpr::Num(v) => *v,
            ParamExpr::Var(name) => {
                if name == "pi" {
                    std::f64::consts::PI
                } else {
                    *bindings.get(name).ok_or_else(|| EvalError { unbound: name.clone() })?
                }
            }
            ParamExpr::Neg(e) => -e.eval(bindings)?,
            ParamExpr::Add(a, b) => a.eval(bindings)? + b.eval(bindings)?,
            ParamExpr::Sub(a, b) => a.eval(bindings)? - b.eval(bindings)?,
            ParamExpr::Mul(a, b) => a.eval(bindings)? * b.eval(bindings)?,
            ParamExpr::Div(a, b) => a.eval(bindings)? / b.eval(bindings)?,
        })
    }

    /// Evaluate an expression that must not reference any variables.
    pub fn eval_const(&self) -> Result<f64, EvalError> {
        self.eval(&HashMap::new())
    }

    /// Names of all variables referenced (excluding `pi`), in first-use order.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            ParamExpr::Num(_) => {}
            ParamExpr::Var(name) => {
                if name != "pi" && !out.iter().any(|v| v == name) {
                    out.push(name.clone());
                }
            }
            ParamExpr::Neg(e) => e.collect_vars(out),
            ParamExpr::Add(a, b) | ParamExpr::Sub(a, b) | ParamExpr::Mul(a, b) | ParamExpr::Div(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Parse an expression from text. Grammar (standard precedence):
    ///
    /// ```text
    /// expr   := term (('+'|'-') term)*
    /// term   := unary (('*'|'/') unary)*
    /// unary  := '-' unary | atom
    /// atom   := NUMBER | IDENT | '(' expr ')'
    /// ```
    pub fn parse(src: &str) -> Result<Self, String> {
        let mut p = ExprParser { src: src.as_bytes(), pos: 0 };
        let e = p.expr()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(format!("trailing input at byte {} in `{src}`", p.pos));
        }
        Ok(e)
    }
}

impl std::fmt::Display for ParamExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamExpr::Num(v) => write!(f, "{v}"),
            ParamExpr::Var(n) => write!(f, "{n}"),
            ParamExpr::Neg(e) => write!(f, "(-{e})"),
            ParamExpr::Add(a, b) => write!(f, "({a} + {b})"),
            ParamExpr::Sub(a, b) => write!(f, "({a} - {b})"),
            ParamExpr::Mul(a, b) => write!(f, "({a} * {b})"),
            ParamExpr::Div(a, b) => write!(f, "({a} / {b})"),
        }
    }
}

struct ExprParser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> ExprParser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn expr(&mut self) -> Result<ParamExpr, String> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(b'+') => {
                    self.pos += 1;
                    let rhs = self.term()?;
                    lhs = ParamExpr::Add(Box::new(lhs), Box::new(rhs));
                }
                Some(b'-') => {
                    self.pos += 1;
                    let rhs = self.term()?;
                    lhs = ParamExpr::Sub(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<ParamExpr, String> {
        let mut lhs = self.unary()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    let rhs = self.unary()?;
                    lhs = ParamExpr::Mul(Box::new(lhs), Box::new(rhs));
                }
                Some(b'/') => {
                    self.pos += 1;
                    let rhs = self.unary()?;
                    lhs = ParamExpr::Div(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn unary(&mut self) -> Result<ParamExpr, String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
            return Ok(ParamExpr::Neg(Box::new(self.unary()?)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<ParamExpr, String> {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let e = self.expr()?;
                if self.peek() != Some(b')') {
                    return Err("expected `)`".to_string());
                }
                self.pos += 1;
                Ok(e)
            }
            Some(c) if c.is_ascii_digit() || c == b'.' => {
                let start = self.pos;
                while self.pos < self.src.len() {
                    let c = self.src[self.pos];
                    let exp_sign = (c == b'+' || c == b'-')
                        && self.pos > start
                        && matches!(self.src[self.pos - 1], b'e' | b'E');
                    if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || exp_sign {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                text.parse::<f64>().map(ParamExpr::Num).map_err(|e| format!("bad number `{text}`: {e}"))
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self.pos < self.src.len()
                    && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                let name = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                Ok(ParamExpr::Var(name.to_string()))
            }
            other => Err(format!("unexpected token {other:?} in expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn eval(src: &str) -> f64 {
        ParamExpr::parse(src).unwrap().eval_const().unwrap()
    }

    #[test]
    fn literal_numbers() {
        assert_eq!(eval("3.5"), 3.5);
        assert_eq!(eval(".25"), 0.25);
        assert_eq!(eval("1e-3"), 1e-3);
        assert_eq!(eval("2.5e2"), 250.0);
    }

    #[test]
    fn precedence_and_parens() {
        assert_eq!(eval("1 + 2 * 3"), 7.0);
        assert_eq!(eval("(1 + 2) * 3"), 9.0);
        assert_eq!(eval("8 / 2 / 2"), 2.0);
        assert_eq!(eval("1 - 2 - 3"), -4.0);
    }

    #[test]
    fn unary_minus() {
        assert_eq!(eval("-4"), -4.0);
        assert_eq!(eval("--4"), 4.0);
        assert_eq!(eval("3 * -2"), -6.0);
    }

    #[test]
    fn pi_is_builtin() {
        assert!((eval("pi / 2") - PI / 2.0).abs() < 1e-15);
        assert!((eval("-pi") + PI).abs() < 1e-15);
    }

    #[test]
    fn variables_bind() {
        let e = ParamExpr::parse("theta / 2 + pi").unwrap();
        let mut b = HashMap::new();
        b.insert("theta".to_string(), 1.0);
        assert!((e.eval(&b).unwrap() - (0.5 + PI)).abs() < 1e-15);
        assert_eq!(e.variables(), vec!["theta".to_string()]);
    }

    #[test]
    fn unbound_variable_errors() {
        let e = ParamExpr::parse("gamma").unwrap();
        assert_eq!(e.eval_const().unwrap_err().unbound, "gamma");
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(ParamExpr::parse("1 + 2 )").is_err());
        assert!(ParamExpr::parse("1 +").is_err());
        assert!(ParamExpr::parse("").is_err());
    }

    #[test]
    fn display_parses_back() {
        let e = ParamExpr::parse("theta / 2 + pi * -0.5").unwrap();
        let round = ParamExpr::parse(&e.to_string()).unwrap();
        let mut b = HashMap::new();
        b.insert("theta".to_string(), 0.37);
        assert!((e.eval(&b).unwrap() - round.eval(&b).unwrap()).abs() < 1e-15);
    }
}
