//! XASM-subset kernel parser.
//!
//! QCOR kernels are written in XACC's XASM dialect inside `__qpu__`
//! functions (paper Listings 1, 3, 4). This module parses the subset those
//! listings use:
//!
//! * an optional kernel signature
//!   `__qpu__ void name(qreg q, double theta, ...) { ... }`,
//! * `using qcor::xasm;` directives (ignored),
//! * gate statements `H(q[0]);`, `Ry(q[1], theta / 2);`,
//!   `CX(q[0], q[1]);`, `Measure(q[i]);`,
//! * counted `for` loops
//!   `for (int i = 0; i < q.size(); i++) { ... }` (also `<=`, arbitrary
//!   integer bounds, nested loops), which are unrolled at parse time,
//! * `//` and `/* */` comments.
//!
//! The register size is supplied at parse time (QCOR learns it from the
//! `qalloc` call at runtime); `q.size()` resolves against it.
//!
//! ```
//! use qcor_circuit::xasm;
//! let src = r#"
//!     __qpu__ void bell(qreg q) {
//!         using qcor::xasm;
//!         H(q[0]);
//!         CX(q[0], q[1]);
//!         for (int i = 0; i < q.size(); i++) { Measure(q[i]); }
//!     }
//! "#;
//! let kernel = xasm::parse_kernel(src, 2).unwrap();
//! assert_eq!(kernel.name, "bell");
//! assert_eq!(kernel.bind(&[]).unwrap().len(), 4);
//! ```

use crate::circuit::{ParamCircuit, ParamInstruction};
use crate::expr::ParamExpr;
use crate::gate::GateKind;
use crate::CircuitError;
use std::collections::HashMap;

/// Parse an XASM kernel over a register of `num_qubits` qubits.
///
/// Accepts either a full `__qpu__ void name(qreg q, ...) { body }` kernel or
/// a bare statement list (in which case the kernel is named `main`, the
/// register is `q`, and there are no classical parameters).
pub fn parse_kernel(src: &str, num_qubits: usize) -> Result<ParamCircuit, CircuitError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let (name, reg, params, body) = p.kernel()?;
    let mut pc = ParamCircuit::new(name, num_qubits, params.clone());
    let mut env: HashMap<String, i64> = HashMap::new();
    expand(&body, &reg, &params, num_qubits, &mut env, &mut pc)?;
    Ok(pc)
}

// ----- tokens ---------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    Punct(&'static str),
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: usize,
}

fn err(line: usize, message: impl Into<String>) -> CircuitError {
    CircuitError::Parse { line, message: message.into() }
}

fn tokenize(src: &str) -> Result<Vec<Token>, CircuitError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(err(line, "unterminated block comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(String::from_utf8_lossy(&bytes[start..i]).into_owned()),
                    line,
                });
            }
            _ if c.is_ascii_digit() || (c == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)) => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i];
                    let exp_sign = (c == b'+' || c == b'-') && matches!(bytes[i - 1], b'e' | b'E');
                    if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || exp_sign {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&bytes[start..i]).unwrap();
                let v = text.parse::<f64>().map_err(|e| err(line, format!("bad number `{text}`: {e}")))?;
                out.push(Token { tok: Tok::Number(v), line });
            }
            _ => {
                // Multi-character punctuation first.
                let two: &[u8] = &bytes[i..(i + 2).min(bytes.len())];
                let punct = match two {
                    b"++" => Some("++"),
                    b"--" => Some("--"),
                    b"<=" => Some("<="),
                    b">=" => Some(">="),
                    b"+=" => Some("+="),
                    b"-=" => Some("-="),
                    b"::" => Some("::"),
                    _ => None,
                };
                if let Some(p) = punct {
                    out.push(Token { tok: Tok::Punct(p), line });
                    i += 2;
                    continue;
                }
                let one = match c {
                    b'(' => "(",
                    b')' => ")",
                    b'[' => "[",
                    b']' => "]",
                    b'{' => "{",
                    b'}' => "}",
                    b';' => ";",
                    b',' => ",",
                    b'<' => "<",
                    b'>' => ">",
                    b'=' => "=",
                    b'+' => "+",
                    b'-' => "-",
                    b'*' => "*",
                    b'/' => "/",
                    b'.' => ".",
                    other => return Err(err(line, format!("unexpected character `{}`", other as char))),
                };
                out.push(Token { tok: Tok::Punct(one), line });
                i += 1;
            }
        }
    }
    Ok(out)
}

// ----- AST -------------------------------------------------------------------

/// Integer expression for qubit indices and loop bounds.
#[derive(Debug, Clone)]
enum IntExpr {
    Num(i64),
    Var(String),
    QSize,
    Neg(Box<IntExpr>),
    Add(Box<IntExpr>, Box<IntExpr>),
    Sub(Box<IntExpr>, Box<IntExpr>),
    Mul(Box<IntExpr>, Box<IntExpr>),
    Div(Box<IntExpr>, Box<IntExpr>),
}

impl IntExpr {
    fn eval(&self, env: &HashMap<String, i64>, qsize: usize, line: usize) -> Result<i64, CircuitError> {
        Ok(match self {
            IntExpr::Num(v) => *v,
            IntExpr::Var(name) => {
                *env.get(name).ok_or_else(|| err(line, format!("unknown integer variable `{name}`")))?
            }
            IntExpr::QSize => qsize as i64,
            IntExpr::Neg(e) => -e.eval(env, qsize, line)?,
            IntExpr::Add(a, b) => a.eval(env, qsize, line)? + b.eval(env, qsize, line)?,
            IntExpr::Sub(a, b) => a.eval(env, qsize, line)? - b.eval(env, qsize, line)?,
            IntExpr::Mul(a, b) => a.eval(env, qsize, line)? * b.eval(env, qsize, line)?,
            IntExpr::Div(a, b) => {
                let d = b.eval(env, qsize, line)?;
                if d == 0 {
                    return Err(err(line, "division by zero in index expression"));
                }
                a.eval(env, qsize, line)? / d
            }
        })
    }
}

#[derive(Debug, Clone)]
enum Arg {
    Qubit(IntExpr),
    Param(ParamExpr),
}

#[derive(Debug, Clone)]
enum Stmt {
    Gate { name: String, args: Vec<Arg>, line: usize },
    For { var: String, start: IntExpr, end: IntExpr, inclusive: bool, body: Vec<Stmt>, line: usize },
}

// ----- parser ---------------------------------------------------------------

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.line)
            .unwrap_or_else(|| self.tokens.last().map(|t| t.line).unwrap_or(1))
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), CircuitError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Punct(got)) if got == p => Ok(()),
            other => Err(err(line, format!("expected `{p}`, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, CircuitError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Ident(name)) => Ok(name),
            other => Err(err(line, format!("expected identifier, found {other:?}"))),
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        match self.peek() {
            Some(Tok::Punct(got)) if *got == p => {
                self.pos += 1;
                true
            }
            _ => false,
        }
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        match self.peek() {
            Some(Tok::Ident(got)) if got == name => {
                self.pos += 1;
                true
            }
            _ => false,
        }
    }

    /// Parse `__qpu__ void name(qreg q, double a, ...) { body }` or a bare
    /// statement list. Returns (kernel name, register name, classical
    /// parameter names, body).
    fn kernel(&mut self) -> Result<(String, String, Vec<String>, Vec<Stmt>), CircuitError> {
        let mut name = "main".to_string();
        let mut reg = "q".to_string();
        let mut params = Vec::new();
        let mut braced = false;
        if self.eat_ident("__qpu__") {
            let line = self.line();
            if !self.eat_ident("void") {
                return Err(err(line, "expected `void` after `__qpu__`"));
            }
            name = self.expect_ident()?;
            self.expect_punct("(")?;
            let mut first = true;
            while self.peek() != Some(&Tok::Punct(")")) {
                if !first {
                    self.expect_punct(",")?;
                }
                first = false;
                let line = self.line();
                let ty = self.expect_ident()?;
                let pname = self.expect_ident()?;
                match ty.as_str() {
                    "qreg" => reg = pname,
                    "double" | "float" => params.push(pname),
                    other => return Err(err(line, format!("unsupported parameter type `{other}`"))),
                }
            }
            self.expect_punct(")")?;
            self.expect_punct("{")?;
            braced = true;
        }
        let body = self.stmts(&reg, braced)?;
        if braced {
            self.expect_punct("}")?;
        }
        if self.pos != self.tokens.len() {
            return Err(err(self.line(), "trailing input after kernel body"));
        }
        Ok((name, reg, params, body))
    }

    /// Parse statements until EOF or an unmatched `}` (when `braced`).
    fn stmts(&mut self, reg: &str, braced: bool) -> Result<Vec<Stmt>, CircuitError> {
        let mut out = Vec::new();
        loop {
            match self.peek() {
                None => {
                    if braced {
                        return Err(err(self.line(), "missing `}`"));
                    }
                    return Ok(out);
                }
                Some(Tok::Punct("}")) => return Ok(out),
                Some(Tok::Ident(id)) if id == "using" => {
                    // `using qcor::xasm;` — skip to the semicolon.
                    while let Some(t) = self.next() {
                        if t == Tok::Punct(";") {
                            break;
                        }
                    }
                }
                Some(Tok::Ident(id)) if id == "for" => {
                    out.push(self.for_stmt(reg)?);
                }
                Some(Tok::Ident(_)) => out.push(self.gate_stmt(reg)?),
                other => return Err(err(self.line(), format!("unexpected token {other:?}"))),
            }
        }
    }

    fn for_stmt(&mut self, reg: &str) -> Result<Stmt, CircuitError> {
        let line = self.line();
        self.pos += 1; // `for`
        self.expect_punct("(")?;
        if !self.eat_ident("int") && !self.eat_ident("auto") && !self.eat_ident("size_t") {
            return Err(err(line, "expected loop variable declaration (`int i = ...`)"));
        }
        let var = self.expect_ident()?;
        self.expect_punct("=")?;
        let start = self.int_expr(reg)?;
        self.expect_punct(";")?;
        let cond_var = self.expect_ident()?;
        if cond_var != var {
            return Err(err(line, format!("loop condition must test `{var}`")));
        }
        let inclusive = if self.eat_punct("<=") {
            true
        } else if self.eat_punct("<") {
            false
        } else {
            return Err(err(line, "loop condition must be `<` or `<=`"));
        };
        let end = self.int_expr(reg)?;
        self.expect_punct(";")?;
        // step: i++ | ++i | i += 1
        if self.eat_punct("++") {
            let step_var = self.expect_ident()?;
            if step_var != var {
                return Err(err(line, "loop step must increment the loop variable"));
            }
        } else {
            let step_var = self.expect_ident()?;
            if step_var != var {
                return Err(err(line, "loop step must increment the loop variable"));
            }
            if self.eat_punct("++") {
                // i++
            } else if self.eat_punct("+=") {
                let step = self.next();
                if !matches!(step, Some(Tok::Number(v)) if v == 1.0) {
                    return Err(err(line, "only unit-stride loops are supported"));
                }
            } else {
                return Err(err(line, "loop step must be `++` or `+= 1`"));
            }
        }
        self.expect_punct(")")?;
        self.expect_punct("{")?;
        let body = self.stmts(reg, true)?;
        self.expect_punct("}")?;
        Ok(Stmt::For { var, start, end, inclusive, body, line })
    }

    fn gate_stmt(&mut self, reg: &str) -> Result<Stmt, CircuitError> {
        let line = self.line();
        let name = self.expect_ident()?;
        self.expect_punct("(")?;
        let mut args = Vec::new();
        while self.peek() != Some(&Tok::Punct(")")) {
            if !args.is_empty() {
                self.expect_punct(",")?;
            }
            args.push(self.arg(reg)?);
        }
        self.expect_punct(")")?;
        self.expect_punct(";")?;
        Ok(Stmt::Gate { name, args, line })
    }

    /// A gate argument: `reg[int-expr]` is a qubit; anything else is a
    /// classical parameter expression.
    fn arg(&mut self, reg: &str) -> Result<Arg, CircuitError> {
        if let (Some(Tok::Ident(id)), Some(Token { tok: Tok::Punct("["), .. })) =
            (self.peek(), self.tokens.get(self.pos + 1))
        {
            if id == reg {
                self.pos += 2;
                let idx = self.int_expr(reg)?;
                self.expect_punct("]")?;
                return Ok(Arg::Qubit(idx));
            }
        }
        Ok(Arg::Param(self.param_expr(reg)?))
    }

    // Integer expressions: + - * / over literals, loop vars and q.size().
    fn int_expr(&mut self, reg: &str) -> Result<IntExpr, CircuitError> {
        let mut lhs = self.int_term(reg)?;
        loop {
            if self.eat_punct("+") {
                lhs = IntExpr::Add(Box::new(lhs), Box::new(self.int_term(reg)?));
            } else if self.eat_punct("-") {
                lhs = IntExpr::Sub(Box::new(lhs), Box::new(self.int_term(reg)?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn int_term(&mut self, reg: &str) -> Result<IntExpr, CircuitError> {
        let mut lhs = self.int_atom(reg)?;
        loop {
            if self.eat_punct("*") {
                lhs = IntExpr::Mul(Box::new(lhs), Box::new(self.int_atom(reg)?));
            } else if self.eat_punct("/") {
                lhs = IntExpr::Div(Box::new(lhs), Box::new(self.int_atom(reg)?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn int_atom(&mut self, reg: &str) -> Result<IntExpr, CircuitError> {
        let line = self.line();
        if self.eat_punct("-") {
            return Ok(IntExpr::Neg(Box::new(self.int_atom(reg)?)));
        }
        if self.eat_punct("(") {
            let e = self.int_expr(reg)?;
            self.expect_punct(")")?;
            return Ok(e);
        }
        match self.next() {
            Some(Tok::Number(v)) => {
                if v.fract() != 0.0 {
                    return Err(err(line, format!("expected integer, found {v}")));
                }
                Ok(IntExpr::Num(v as i64))
            }
            Some(Tok::Ident(id)) => {
                // `reg.size()` form
                if id == reg && self.eat_punct(".") {
                    let m = self.expect_ident()?;
                    if m != "size" {
                        return Err(err(line, format!("unknown register method `{m}`")));
                    }
                    self.expect_punct("(")?;
                    self.expect_punct(")")?;
                    return Ok(IntExpr::QSize);
                }
                Ok(IntExpr::Var(id))
            }
            other => Err(err(line, format!("expected integer expression, found {other:?}"))),
        }
    }

    // Classical parameter expressions reuse the ParamExpr grammar but must
    // be parsed from the token stream (so they mix with other arguments).
    fn param_expr(&mut self, reg: &str) -> Result<ParamExpr, CircuitError> {
        let mut lhs = self.param_term(reg)?;
        loop {
            if self.eat_punct("+") {
                lhs = ParamExpr::Add(Box::new(lhs), Box::new(self.param_term(reg)?));
            } else if self.eat_punct("-") {
                lhs = ParamExpr::Sub(Box::new(lhs), Box::new(self.param_term(reg)?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn param_term(&mut self, reg: &str) -> Result<ParamExpr, CircuitError> {
        let mut lhs = self.param_atom(reg)?;
        loop {
            if self.eat_punct("*") {
                lhs = ParamExpr::Mul(Box::new(lhs), Box::new(self.param_atom(reg)?));
            } else if self.eat_punct("/") {
                lhs = ParamExpr::Div(Box::new(lhs), Box::new(self.param_atom(reg)?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn param_atom(&mut self, reg: &str) -> Result<ParamExpr, CircuitError> {
        let line = self.line();
        if self.eat_punct("-") {
            return Ok(ParamExpr::Neg(Box::new(self.param_atom(reg)?)));
        }
        if self.eat_punct("(") {
            let e = self.param_expr(reg)?;
            self.expect_punct(")")?;
            return Ok(e);
        }
        match self.next() {
            Some(Tok::Number(v)) => Ok(ParamExpr::Num(v)),
            Some(Tok::Ident(id)) => Ok(ParamExpr::Var(id)),
            other => Err(err(line, format!("expected parameter expression, found {other:?}"))),
        }
    }
}

// ----- expansion --------------------------------------------------------------

fn expand(
    stmts: &[Stmt],
    reg: &str,
    params: &[String],
    qsize: usize,
    env: &mut HashMap<String, i64>,
    out: &mut ParamCircuit,
) -> Result<(), CircuitError> {
    let _ = reg;
    for stmt in stmts {
        match stmt {
            Stmt::Gate { name, args, line } => {
                let gate =
                    GateKind::from_name(name).ok_or_else(|| err(*line, format!("unknown gate `{name}`")))?;
                let mut qubits = Vec::new();
                let mut angles = Vec::new();
                for arg in args {
                    match arg {
                        Arg::Qubit(e) => {
                            let idx = e.eval(env, qsize, *line)?;
                            if idx < 0 || idx as usize >= qsize {
                                return Err(CircuitError::QubitOutOfRange {
                                    gate: gate.name().to_string(),
                                    qubit: idx.max(0) as usize,
                                    size: qsize,
                                });
                            }
                            qubits.push(idx as usize);
                        }
                        Arg::Param(e) => angles.push(substitute_loop_vars(e, env, params)),
                    }
                }
                if qubits.len() != gate.arity() {
                    return Err(err(
                        *line,
                        format!("{gate} expects {} qubit(s), got {}", gate.arity(), qubits.len()),
                    ));
                }
                if angles.len() != gate.num_params() {
                    return Err(err(
                        *line,
                        format!("{gate} expects {} parameter(s), got {}", gate.num_params(), angles.len()),
                    ));
                }
                out.push(ParamInstruction { gate, qubits, params: angles });
            }
            Stmt::For { var, start, end, inclusive, body, line } => {
                let lo = start.eval(env, qsize, *line)?;
                let mut hi = end.eval(env, qsize, *line)?;
                if *inclusive {
                    hi += 1;
                }
                if env.contains_key(var) {
                    return Err(err(*line, format!("loop variable `{var}` shadows an outer loop")));
                }
                for i in lo..hi {
                    env.insert(var.clone(), i);
                    expand(body, reg, params, qsize, env, out)?;
                }
                env.remove(var);
            }
        }
    }
    Ok(())
}

/// Replace loop variables (integers known at unroll time) inside a parameter
/// expression; kernel parameters stay symbolic.
fn substitute_loop_vars(e: &ParamExpr, env: &HashMap<String, i64>, params: &[String]) -> ParamExpr {
    match e {
        ParamExpr::Num(v) => ParamExpr::Num(*v),
        ParamExpr::Var(name) => {
            if params.iter().any(|p| p == name) || name == "pi" {
                ParamExpr::Var(name.clone())
            } else if let Some(v) = env.get(name) {
                ParamExpr::Num(*v as f64)
            } else {
                ParamExpr::Var(name.clone())
            }
        }
        ParamExpr::Neg(a) => ParamExpr::Neg(Box::new(substitute_loop_vars(a, env, params))),
        ParamExpr::Add(a, b) => ParamExpr::Add(
            Box::new(substitute_loop_vars(a, env, params)),
            Box::new(substitute_loop_vars(b, env, params)),
        ),
        ParamExpr::Sub(a, b) => ParamExpr::Sub(
            Box::new(substitute_loop_vars(a, env, params)),
            Box::new(substitute_loop_vars(b, env, params)),
        ),
        ParamExpr::Mul(a, b) => ParamExpr::Mul(
            Box::new(substitute_loop_vars(a, env, params)),
            Box::new(substitute_loop_vars(b, env, params)),
        ),
        ParamExpr::Div(a, b) => ParamExpr::Div(
            Box::new(substitute_loop_vars(a, env, params)),
            Box::new(substitute_loop_vars(b, env, params)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    const BELL: &str = r#"
        __qpu__ void bell(qreg q) {
            using qcor::xasm;
            H(q[0]);
            CX(q[0], q[1]);
            for (int i = 0; i < q.size(); i++) {
                Measure(q[i]);
            }
        }
    "#;

    #[test]
    fn parses_paper_bell_kernel() {
        let k = parse_kernel(BELL, 2).unwrap();
        assert_eq!(k.name, "bell");
        assert!(k.param_names.is_empty());
        let c = k.bind(&[]).unwrap();
        assert_eq!(c.len(), 4);
        assert_eq!(c.instructions()[0].gate, GateKind::H);
        assert_eq!(c.instructions()[1].gate, GateKind::CX);
        assert_eq!(c.instructions()[2].gate, GateKind::Measure);
        assert_eq!(c.instructions()[3].qubits, vec![1]);
    }

    #[test]
    fn register_size_drives_loop_unrolling() {
        let k = parse_kernel(BELL, 5).unwrap();
        let c = k.bind(&[]).unwrap();
        assert_eq!(c.len(), 7); // H + CX + 5 measures
    }

    #[test]
    fn parses_paper_vqe_ansatz() {
        let src = r#"
            __qpu__ void ansatz(qreg q, double theta) {
                X(q[0]);
                Ry(q[1], theta);
                CX(q[1], q[0]);
            }
        "#;
        let k = parse_kernel(src, 2).unwrap();
        assert_eq!(k.param_names, vec!["theta".to_string()]);
        let c = k.bind(&[0.42]).unwrap();
        assert_eq!(c.instructions()[1].gate, GateKind::Ry);
        assert!((c.instructions()[1].params[0] - 0.42).abs() < 1e-15);
        assert_eq!(c.instructions()[2].qubits, vec![1, 0]);
    }

    #[test]
    fn bare_statement_list_parses() {
        let k = parse_kernel("H(q[0]); CX(q[0], q[1]);", 2).unwrap();
        assert_eq!(k.name, "main");
        assert_eq!(k.bind(&[]).unwrap().len(), 2);
    }

    #[test]
    fn param_arithmetic_in_gate_args() {
        let src = "__qpu__ void k(qreg q, double theta) { Ry(q[0], theta / 2 + pi); }";
        let k = parse_kernel(src, 1).unwrap();
        let c = k.bind(&[1.0]).unwrap();
        assert!((c.instructions()[0].params[0] - (0.5 + std::f64::consts::PI)).abs() < 1e-12);
    }

    #[test]
    fn nested_loops_unroll() {
        let src = r#"
            for (int i = 0; i < 2; i++) {
                for (int j = 0; j < 2; j++) {
                    CPhase(q[i], q[j + 2], 0.5);
                }
            }
        "#;
        let k = parse_kernel(src, 4).unwrap();
        let c = k.bind(&[]).unwrap();
        assert_eq!(c.len(), 4);
        assert_eq!(c.instructions()[0].qubits, vec![0, 2]);
        assert_eq!(c.instructions()[3].qubits, vec![1, 3]);
    }

    #[test]
    fn loop_with_size_arithmetic() {
        let src = "for (int i = 0; i < q.size() - 1; i++) { CX(q[i], q[i + 1]); }";
        let k = parse_kernel(src, 4).unwrap();
        let c = k.bind(&[]).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.instructions()[2].qubits, vec![2, 3]);
    }

    #[test]
    fn inclusive_loop_bound() {
        let src = "for (int i = 0; i <= 2; i++) { H(q[i]); }";
        let c = parse_kernel(src, 3).unwrap().bind(&[]).unwrap();
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn loop_variable_inside_angle() {
        let src = "for (int i = 1; i <= 3; i++) { Rz(q[0], pi / i); }";
        let c = parse_kernel(src, 1).unwrap().bind(&[]).unwrap();
        assert!((c.instructions()[2].params[0] - std::f64::consts::PI / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_gate_is_an_error() {
        let e = parse_kernel("Frobnicate(q[0]);", 1).unwrap_err();
        assert!(matches!(e, CircuitError::Parse { .. }));
    }

    #[test]
    fn out_of_range_qubit_is_an_error() {
        let e = parse_kernel("H(q[3]);", 2).unwrap_err();
        assert!(matches!(e, CircuitError::QubitOutOfRange { qubit: 3, size: 2, .. }));
    }

    #[test]
    fn wrong_arity_is_an_error() {
        assert!(parse_kernel("CX(q[0]);", 2).is_err());
        assert!(parse_kernel("H(q[0], q[1]);", 2).is_err());
    }

    #[test]
    fn comments_are_ignored() {
        let src = "H(q[0]); // comment\n/* block\ncomment */ X(q[0]);";
        let c = parse_kernel(src, 1).unwrap().bind(&[]).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn shadowing_loop_variable_rejected() {
        let src = "for (int i = 0; i < 2; i++) { for (int i = 0; i < 2; i++) { H(q[i]); } }";
        assert!(parse_kernel(src, 2).is_err());
    }

    #[test]
    fn custom_register_name() {
        let src = "__qpu__ void k(qreg reg) { H(reg[0]); Measure(reg[0]); }";
        let c = parse_kernel(src, 1).unwrap().bind(&[]).unwrap();
        assert_eq!(c.len(), 2);
    }
}
