//! Circuit containers: concrete [`Circuit`] and parametric [`ParamCircuit`].

use crate::expr::ParamExpr;
use crate::gate::{GateKind, Instruction};
use crate::CircuitError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A concrete quantum circuit: a qubit count plus an instruction stream with
/// all angle parameters bound. This is what the simulator executes.
///
/// `Circuit` doubles as a builder — the gate methods (`h`, `cx`, `ry`, ...)
/// append and return `&mut Self`, so the paper's Bell kernel (Listing 1)
/// reads almost the same in Rust:
///
/// ```
/// use qcor_circuit::Circuit;
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// for i in 0..bell.num_qubits() {
///     bell.measure(i);
/// }
/// assert_eq!(bell.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Circuit {
    num_qubits: usize,
    instructions: Vec<Instruction>,
}

impl Circuit {
    /// An empty circuit over `num_qubits` qubits.
    ///
    /// Panics when `num_qubits` exceeds [`crate::MAX_QUBITS`] — the
    /// compiler packs qubit sets into `usize` bitmasks, so wider registers
    /// cannot be represented. Use [`Circuit::try_new`] for untrusted sizes.
    pub fn new(num_qubits: usize) -> Self {
        match Self::try_new(num_qubits) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// An empty circuit over `num_qubits` qubits, rejecting registers wider
    /// than [`crate::MAX_QUBITS`] with an error instead of panicking.
    pub fn try_new(num_qubits: usize) -> Result<Self, CircuitError> {
        if num_qubits > crate::MAX_QUBITS {
            return Err(CircuitError::TooManyQubits { requested: num_qubits, max: crate::MAX_QUBITS });
        }
        Ok(Circuit { num_qubits, instructions: Vec::new() })
    }

    /// Number of qubits in the register.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// True when no instructions have been appended.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The instruction stream.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Mutable access for optimizer passes.
    pub fn instructions_mut(&mut self) -> &mut Vec<Instruction> {
        &mut self.instructions
    }

    /// Append one instruction, validating qubit bounds.
    pub fn push(&mut self, inst: Instruction) -> &mut Self {
        for &q in &inst.qubits {
            assert!(
                q < self.num_qubits,
                "gate {} addresses qubit {q} but the register has {} qubits",
                inst.gate,
                self.num_qubits
            );
        }
        self.instructions.push(inst);
        self
    }

    /// Append one instruction, returning an error instead of panicking on a
    /// bad qubit index.
    pub fn try_push(&mut self, inst: Instruction) -> Result<&mut Self, CircuitError> {
        for &q in &inst.qubits {
            if q >= self.num_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    gate: inst.gate.name().to_string(),
                    qubit: q,
                    size: self.num_qubits,
                });
            }
        }
        self.instructions.push(inst);
        Ok(self)
    }

    /// Append every instruction of `other` (registers must match in size or
    /// `other` must be smaller).
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        assert!(
            other.num_qubits <= self.num_qubits,
            "cannot extend a {}-qubit circuit with a {}-qubit circuit",
            self.num_qubits,
            other.num_qubits
        );
        self.instructions.extend(other.instructions.iter().cloned());
        self
    }

    /// Append `other` with its qubit indices shifted by `offset`.
    pub fn extend_mapped(&mut self, other: &Circuit, offset: usize) -> &mut Self {
        for inst in &other.instructions {
            let mut mapped = inst.clone();
            for q in &mut mapped.qubits {
                *q += offset;
            }
            self.push(mapped);
        }
        self
    }

    /// The adjoint circuit: instructions reversed with each gate inverted.
    /// Fails if the circuit contains measurements or resets.
    pub fn inverse(&self) -> Result<Circuit, CircuitError> {
        let mut out = Circuit::new(self.num_qubits);
        for inst in self.instructions.iter().rev() {
            out.instructions.push(inst.inverse()?);
        }
        Ok(out)
    }

    /// Remap qubit indices through `map` (`map[old] = new`). The new register
    /// size is `new_size`.
    pub fn remap(&self, map: &[usize], new_size: usize) -> Result<Circuit, CircuitError> {
        let mut out = Circuit::new(new_size);
        for inst in &self.instructions {
            let mut mapped = inst.clone();
            for q in &mut mapped.qubits {
                let new = *map.get(*q).ok_or_else(|| {
                    CircuitError::Invalid(format!("remap table has no entry for qubit {q}"))
                })?;
                if new >= new_size {
                    return Err(CircuitError::QubitOutOfRange {
                        gate: inst.gate.name().to_string(),
                        qubit: new,
                        size: new_size,
                    });
                }
                *q = new;
            }
            out.instructions.push(mapped);
        }
        Ok(out)
    }

    /// Number of instructions per gate kind.
    pub fn gate_counts(&self) -> HashMap<GateKind, usize> {
        let mut counts = HashMap::new();
        for inst in &self.instructions {
            *counts.entry(inst.gate).or_insert(0) += 1;
        }
        counts
    }

    /// Circuit depth: the length of the longest chain of instructions that
    /// share qubits (barriers synchronize all qubits).
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        let mut barrier_level = 0usize;
        for inst in &self.instructions {
            if inst.gate == GateKind::Barrier {
                barrier_level = level.iter().copied().max().unwrap_or(0).max(barrier_level);
                level.fill(barrier_level);
                continue;
            }
            let next = inst.qubits.iter().map(|&q| level[q]).max().unwrap_or(0).max(barrier_level) + 1;
            for &q in &inst.qubits {
                level[q] = next;
            }
        }
        level.into_iter().max().unwrap_or(0)
    }

    /// Indices of qubits that are measured, in program order without
    /// duplicates.
    pub fn measured_qubits(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for inst in &self.instructions {
            if inst.gate == GateKind::Measure && !out.contains(&inst.qubits[0]) {
                out.push(inst.qubits[0]);
            }
        }
        out
    }

    /// True if the circuit contains at least one measurement.
    pub fn has_measurements(&self) -> bool {
        self.instructions.iter().any(|i| i.gate == GateKind::Measure)
    }

    /// All bound angle parameters, flattened in program order. Slot `i` of
    /// this vector is parameter slot `i` in the structural view of the
    /// circuit (see [`crate::wire::structural_hash`]): two circuits with
    /// equal structure differ only in this vector.
    pub fn flat_params(&self) -> Vec<f64> {
        self.instructions.iter().flat_map(|i| i.params.iter().copied()).collect()
    }

    // ----- builder methods -------------------------------------------------

    /// Append a Hadamard.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Instruction::new(GateKind::H, vec![q], vec![]))
    }
    /// Append a Pauli-X.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Instruction::new(GateKind::X, vec![q], vec![]))
    }
    /// Append a Pauli-Y.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push(Instruction::new(GateKind::Y, vec![q], vec![]))
    }
    /// Append a Pauli-Z.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push(Instruction::new(GateKind::Z, vec![q], vec![]))
    }
    /// Append an S gate.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.push(Instruction::new(GateKind::S, vec![q], vec![]))
    }
    /// Append an S-dagger.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.push(Instruction::new(GateKind::Sdg, vec![q], vec![]))
    }
    /// Append a T gate.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.push(Instruction::new(GateKind::T, vec![q], vec![]))
    }
    /// Append a T-dagger.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.push(Instruction::new(GateKind::Tdg, vec![q], vec![]))
    }
    /// Append an X-rotation.
    pub fn rx(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Instruction::new(GateKind::Rx, vec![q], vec![theta]))
    }
    /// Append a Y-rotation.
    pub fn ry(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Instruction::new(GateKind::Ry, vec![q], vec![theta]))
    }
    /// Append a Z-rotation.
    pub fn rz(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Instruction::new(GateKind::Rz, vec![q], vec![theta]))
    }
    /// Append a phase gate diag(1, e^{iθ}).
    pub fn phase(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Instruction::new(GateKind::Phase, vec![q], vec![theta]))
    }
    /// Append a general single-qubit unitary U3(θ, φ, λ).
    pub fn u3(&mut self, q: usize, theta: f64, phi: f64, lambda: f64) -> &mut Self {
        self.push(Instruction::new(GateKind::U3, vec![q], vec![theta, phi, lambda]))
    }
    /// Append a CNOT with `control` and `target`.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Instruction::new(GateKind::CX, vec![control, target], vec![]))
    }
    /// Append a controlled-Y.
    pub fn cy(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Instruction::new(GateKind::CY, vec![control, target], vec![]))
    }
    /// Append a controlled-Z.
    pub fn cz(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Instruction::new(GateKind::CZ, vec![control, target], vec![]))
    }
    /// Append a controlled phase.
    pub fn cphase(&mut self, control: usize, target: usize, theta: f64) -> &mut Self {
        self.push(Instruction::new(GateKind::CPhase, vec![control, target], vec![theta]))
    }
    /// Append a controlled Rz.
    pub fn crz(&mut self, control: usize, target: usize, theta: f64) -> &mut Self {
        self.push(Instruction::new(GateKind::CRz, vec![control, target], vec![theta]))
    }
    /// Append a SWAP.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Instruction::new(GateKind::Swap, vec![a, b], vec![]))
    }
    /// Append a Toffoli.
    pub fn ccx(&mut self, c0: usize, c1: usize, target: usize) -> &mut Self {
        self.push(Instruction::new(GateKind::CCX, vec![c0, c1, target], vec![]))
    }
    /// Append a controlled swap.
    pub fn cswap(&mut self, control: usize, a: usize, b: usize) -> &mut Self {
        self.push(Instruction::new(GateKind::CSwap, vec![control, a, b], vec![]))
    }
    /// Append a doubly-controlled phase.
    pub fn ccphase(&mut self, c0: usize, c1: usize, target: usize, theta: f64) -> &mut Self {
        self.push(Instruction::new(GateKind::CCPhase, vec![c0, c1, target], vec![theta]))
    }
    /// Append a measurement.
    pub fn measure(&mut self, q: usize) -> &mut Self {
        self.push(Instruction::new(GateKind::Measure, vec![q], vec![]))
    }
    /// Append a measurement routed to classical bit `c`.
    pub fn measure_to(&mut self, q: usize, c: usize) -> &mut Self {
        let mut inst = Instruction::new(GateKind::Measure, vec![q], vec![]);
        inst.cbit = Some(c);
        self.push(inst)
    }
    /// Measure every qubit in index order.
    pub fn measure_all(&mut self) -> &mut Self {
        for q in 0..self.num_qubits {
            self.measure(q);
        }
        self
    }
    /// Append a reset.
    pub fn reset(&mut self, q: usize) -> &mut Self {
        self.push(Instruction::new(GateKind::Reset, vec![q], vec![]))
    }
    /// Append a barrier on one qubit (blocks optimizer reordering).
    pub fn barrier(&mut self, q: usize) -> &mut Self {
        self.push(Instruction::new(GateKind::Barrier, vec![q], vec![]))
    }
}

impl std::fmt::Display for Circuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "// {} qubits, {} instructions", self.num_qubits, self.len())?;
        for inst in &self.instructions {
            writeln!(f, "{inst};")?;
        }
        Ok(())
    }
}

/// One instruction of a parametric kernel: operands are fixed but angle
/// parameters are [`ParamExpr`]s over the kernel's classical arguments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamInstruction {
    /// What to apply.
    pub gate: GateKind,
    /// Qubit operands.
    pub qubits: Vec<usize>,
    /// Symbolic angle parameters.
    pub params: Vec<ParamExpr>,
}

/// A parametric kernel template, as produced by the XASM parser for kernels
/// with classical arguments (e.g. the `ansatz(qreg q, double theta)` of
/// paper Listing 3). Call [`ParamCircuit::bind`] with concrete argument
/// values to obtain an executable [`Circuit`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamCircuit {
    /// Kernel name, if one was declared.
    pub name: String,
    /// Declared classical parameter names, in order.
    pub param_names: Vec<String>,
    num_qubits: usize,
    instructions: Vec<ParamInstruction>,
}

impl ParamCircuit {
    /// An empty template.
    pub fn new(name: impl Into<String>, num_qubits: usize, param_names: Vec<String>) -> Self {
        assert!(
            num_qubits <= crate::MAX_QUBITS,
            "kernel requests {num_qubits} qubits but at most {} are supported",
            crate::MAX_QUBITS
        );
        ParamCircuit { name: name.into(), param_names, num_qubits, instructions: Vec::new() }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// True when the template has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The symbolic instruction stream.
    pub fn instructions(&self) -> &[ParamInstruction] {
        &self.instructions
    }

    /// Append a symbolic instruction.
    pub fn push(&mut self, inst: ParamInstruction) -> &mut Self {
        assert_eq!(inst.qubits.len(), inst.gate.arity(), "{}: wrong operand count", inst.gate);
        assert_eq!(inst.params.len(), inst.gate.num_params(), "{}: wrong parameter count", inst.gate);
        for &q in &inst.qubits {
            assert!(q < self.num_qubits, "{}: qubit {q} out of range", inst.gate);
        }
        self.instructions.push(inst);
        self
    }

    /// Bind positional argument values (matching `param_names` order) and
    /// produce an executable circuit.
    pub fn bind(&self, args: &[f64]) -> Result<Circuit, CircuitError> {
        if args.len() != self.param_names.len() {
            return Err(CircuitError::Invalid(format!(
                "kernel `{}` takes {} parameter(s), got {}",
                self.name,
                self.param_names.len(),
                args.len()
            )));
        }
        let bindings: HashMap<String, f64> =
            self.param_names.iter().cloned().zip(args.iter().copied()).collect();
        self.bind_named(&bindings)
    }

    /// Bind named argument values and produce an executable circuit.
    pub fn bind_named(&self, bindings: &HashMap<String, f64>) -> Result<Circuit, CircuitError> {
        let mut out = Circuit::new(self.num_qubits);
        for inst in &self.instructions {
            let mut params = Vec::with_capacity(inst.params.len());
            for p in &inst.params {
                params.push(p.eval(bindings).map_err(|e| CircuitError::UnboundParam(e.unbound))?);
            }
            out.push(Instruction::new(inst.gate, inst.qubits.clone(), params));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        c
    }

    #[test]
    fn builder_appends_in_order() {
        let c = bell();
        assert_eq!(c.len(), 4);
        assert_eq!(c.instructions()[0].gate, GateKind::H);
        assert_eq!(c.instructions()[1].gate, GateKind::CX);
        assert_eq!(c.instructions()[1].qubits, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "addresses qubit 5")]
    fn out_of_range_panics() {
        Circuit::new(2).h(5);
    }

    #[test]
    fn try_push_reports_out_of_range() {
        let mut c = Circuit::new(2);
        let err = c.try_push(Instruction::new(GateKind::H, vec![7], vec![])).unwrap_err();
        assert!(matches!(err, CircuitError::QubitOutOfRange { qubit: 7, size: 2, .. }));
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.h(0).s(0).cx(0, 1).rz(1, 0.3);
        let inv = c.inverse().unwrap();
        assert_eq!(inv.len(), 4);
        assert_eq!(inv.instructions()[0].gate, GateKind::Rz);
        assert_eq!(inv.instructions()[0].params[0], -0.3);
        assert_eq!(inv.instructions()[2].gate, GateKind::Sdg);
    }

    #[test]
    fn inverse_fails_on_measurement() {
        assert!(bell().inverse().is_err());
    }

    #[test]
    fn depth_counts_parallel_layers() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2); // one layer
        assert_eq!(c.depth(), 1);
        c.cx(0, 1); // second layer
        c.h(2); // still second layer (q2 free)
        assert_eq!(c.depth(), 2);
        c.cx(1, 2); // third layer
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn barrier_synchronizes_depth() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.barrier(0);
        c.h(1); // after the barrier: must be layer 2 even though q1 was free
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn gate_counts_are_correct() {
        let c = bell();
        let counts = c.gate_counts();
        assert_eq!(counts[&GateKind::H], 1);
        assert_eq!(counts[&GateKind::CX], 1);
        assert_eq!(counts[&GateKind::Measure], 2);
    }

    #[test]
    fn measured_qubits_deduplicated_in_order() {
        let mut c = Circuit::new(3);
        c.measure(2).measure(0).measure(2);
        assert_eq!(c.measured_qubits(), vec![2, 0]);
    }

    #[test]
    fn extend_mapped_shifts_indices() {
        let mut big = Circuit::new(4);
        big.extend_mapped(&bell(), 2);
        assert_eq!(big.instructions()[1].qubits, vec![2, 3]);
    }

    #[test]
    fn remap_applies_table() {
        let c = bell();
        let mapped = c.remap(&[1, 0], 2).unwrap();
        assert_eq!(mapped.instructions()[0].qubits, vec![1]);
        assert_eq!(mapped.instructions()[1].qubits, vec![1, 0]);
    }

    #[test]
    fn param_circuit_binds_positionally() {
        let mut pc = ParamCircuit::new("ansatz", 2, vec!["theta".to_string()]);
        pc.push(ParamInstruction { gate: GateKind::X, qubits: vec![0], params: vec![] });
        pc.push(ParamInstruction {
            gate: GateKind::Ry,
            qubits: vec![1],
            params: vec![ParamExpr::parse("theta / 2").unwrap()],
        });
        let c = pc.bind(&[1.0]).unwrap();
        assert_eq!(c.instructions()[1].params[0], 0.5);
        assert!(pc.bind(&[]).is_err());
        assert!(pc.bind(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn param_circuit_unbound_var_errors() {
        let mut pc = ParamCircuit::new("k", 1, vec![]);
        pc.push(ParamInstruction {
            gate: GateKind::Rz,
            qubits: vec![0],
            params: vec![ParamExpr::var("mystery")],
        });
        assert!(matches!(pc.bind(&[]), Err(CircuitError::UnboundParam(_))));
    }

    #[test]
    fn display_emits_one_instruction_per_line() {
        let text = bell().to_string();
        assert!(text.contains("H(q[0]);"));
        assert!(text.contains("CX(q[0], q[1]);"));
    }
}
