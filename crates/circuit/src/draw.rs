//! ASCII circuit rendering, for docs, debugging and examples.
//!
//! ```
//! use qcor_circuit::Circuit;
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1).measure_all();
//! println!("{}", qcor_circuit::draw::draw(&c));
//! ```
//!
//! renders as
//!
//! ```text
//! q0: ─[H]──●──[M]─────
//!           │
//! q1: ─────[X]─────[M]─
//! ```

use crate::circuit::Circuit;
use crate::gate::GateKind;

/// Render a circuit as fixed-width ASCII art, one row per qubit (plus
/// connector rows between adjacent qubits).
pub fn draw(circuit: &Circuit) -> String {
    let n = circuit.num_qubits();
    if n == 0 {
        return String::new();
    }
    // Column-sliced layout: each instruction occupies its own column for
    // simplicity (no packing), each column is as wide as its widest cell.
    let mut wire_cells: Vec<Vec<String>> = vec![Vec::new(); n]; // per qubit
    let mut link_cells: Vec<Vec<bool>> = vec![Vec::new(); n.saturating_sub(1)]; // vertical links

    for inst in circuit.instructions() {
        let (labels, verticals) = cells_for(inst, n);
        for (q, cell) in labels.into_iter().enumerate() {
            wire_cells[q].push(cell);
        }
        for (g, link) in verticals.into_iter().enumerate() {
            link_cells[g].push(link);
        }
    }

    let cols = wire_cells[0].len();
    let widths: Vec<usize> =
        (0..cols).map(|c| wire_cells.iter().map(|row| row[c].chars().count()).max().unwrap_or(1)).collect();

    let mut out = String::new();
    for q in 0..n {
        // Wire row.
        out.push_str(&format!("q{q}: "));
        for c in 0..cols {
            let cell = &wire_cells[q][c];
            let pad = widths[c] - cell.chars().count();
            out.push('─');
            out.push_str(cell);
            for _ in 0..pad {
                out.push('─');
            }
            out.push('─');
        }
        out.push('\n');
        // Link row between q and q+1.
        if q + 1 < n {
            let prefix_width = format!("q{q}: ").chars().count();
            let mut row = " ".repeat(prefix_width);
            for c in 0..cols {
                let has_link = link_cells[q][c];
                row.push(' ');
                let w = widths[c];
                let mid = w / 2;
                for i in 0..w {
                    row.push(if has_link && i == mid { '│' } else { ' ' });
                }
                row.push(' ');
            }
            if row.trim().is_empty() {
                // keep blank separators only when a link exists in ANY column
                if link_cells[q].iter().any(|&l| l) {
                    out.push_str(row.trim_end());
                    out.push('\n');
                }
            } else {
                out.push_str(row.trim_end());
                out.push('\n');
            }
        }
    }
    out
}

/// Per-qubit cell labels plus per-gap vertical-link flags for one column.
fn cells_for(inst: &crate::gate::Instruction, n: usize) -> (Vec<String>, Vec<bool>) {
    let mut labels = vec!["─".to_string(); n];
    let mut links = vec![false; n.saturating_sub(1)];
    let mark_span = |links: &mut Vec<bool>, a: usize, b: usize| {
        let (lo, hi) = (a.min(b), a.max(b));
        for link in &mut links[lo..hi] {
            *link = true;
        }
    };
    let q = &inst.qubits;
    match inst.gate {
        GateKind::Measure => labels[q[0]] = "[M]".to_string(),
        GateKind::Reset => labels[q[0]] = "[0]".to_string(),
        GateKind::Barrier => labels[q[0]] = "░".to_string(),
        GateKind::CX => {
            labels[q[0]] = "●".to_string();
            labels[q[1]] = "[X]".to_string();
            mark_span(&mut links, q[0], q[1]);
        }
        GateKind::CY => {
            labels[q[0]] = "●".to_string();
            labels[q[1]] = "[Y]".to_string();
            mark_span(&mut links, q[0], q[1]);
        }
        GateKind::CZ => {
            labels[q[0]] = "●".to_string();
            labels[q[1]] = "●".to_string();
            mark_span(&mut links, q[0], q[1]);
        }
        GateKind::CPhase | GateKind::CRz => {
            labels[q[0]] = "●".to_string();
            labels[q[1]] = format!(
                "[{}({:.2})]",
                if inst.gate == GateKind::CPhase { "P" } else { "Rz" },
                inst.params[0]
            );
            mark_span(&mut links, q[0], q[1]);
        }
        GateKind::Swap => {
            labels[q[0]] = "x".to_string();
            labels[q[1]] = "x".to_string();
            mark_span(&mut links, q[0], q[1]);
        }
        GateKind::CCX => {
            labels[q[0]] = "●".to_string();
            labels[q[1]] = "●".to_string();
            labels[q[2]] = "[X]".to_string();
            mark_span(&mut links, q[0], q[2]);
            mark_span(&mut links, q[1], q[2]);
        }
        GateKind::CSwap => {
            labels[q[0]] = "●".to_string();
            labels[q[1]] = "x".to_string();
            labels[q[2]] = "x".to_string();
            mark_span(&mut links, q[0], q[2]);
            mark_span(&mut links, q[1], q[2]);
        }
        GateKind::CCPhase => {
            labels[q[0]] = "●".to_string();
            labels[q[1]] = "●".to_string();
            labels[q[2]] = format!("[P({:.2})]", inst.params[0]);
            mark_span(&mut links, q[0], q[2]);
            mark_span(&mut links, q[1], q[2]);
        }
        kind => {
            // Single-qubit boxes, with parameters where present.
            let label = if inst.params.is_empty() {
                format!("[{}]", kind.name())
            } else if inst.params.len() == 1 {
                format!("[{}({:.2})]", kind.name(), inst.params[0])
            } else {
                let ps: Vec<String> = inst.params.iter().map(|p| format!("{p:.2}")).collect();
                format!("[{}({})]", kind.name(), ps.join(","))
            };
            labels[q[0]] = label;
        }
    }
    (labels, links)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_drawing_has_expected_symbols() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let art = draw(&c);
        assert!(art.contains("q0:"), "{art}");
        assert!(art.contains("q1:"), "{art}");
        assert!(art.contains("[H]"), "{art}");
        assert!(art.contains("●"), "{art}");
        assert!(art.contains("[X]"), "{art}");
        assert!(art.contains("│"), "{art}");
        assert_eq!(art.matches("[M]").count(), 2, "{art}");
    }

    #[test]
    fn rotations_show_angles() {
        let mut c = Circuit::new(1);
        c.ry(0, 0.5);
        let art = draw(&c);
        assert!(art.contains("[Ry(0.50)]"), "{art}");
    }

    #[test]
    fn toffoli_links_span_qubits() {
        let mut c = Circuit::new(3);
        c.ccx(0, 2, 1);
        let art = draw(&c);
        assert_eq!(art.matches('●').count(), 2, "{art}");
        assert!(art.contains("[X]"), "{art}");
    }

    #[test]
    fn rows_align_per_qubit() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).swap(1, 2).measure_all();
        let art = draw(&c);
        let wire_lines: Vec<&str> = art.lines().filter(|l| l.starts_with('q')).collect();
        assert_eq!(wire_lines.len(), 3);
        let w0 = wire_lines[0].chars().count();
        assert!(wire_lines.iter().all(|l| l.chars().count() == w0), "{art}");
    }

    #[test]
    fn empty_circuit_draws_nothing_surprising() {
        let c = Circuit::new(2);
        let art = draw(&c);
        assert!(art.contains("q0:"));
        assert!(art.contains("q1:"));
    }

    #[test]
    fn u3_shows_three_params() {
        let mut c = Circuit::new(1);
        c.u3(0, 0.1, 0.2, 0.3);
        let art = draw(&c);
        assert!(art.contains("[U3(0.10,0.20,0.30)]"), "{art}");
    }
}
