//! OpenQASM 2 subset parser and writer.
//!
//! QCOR/XACC accept OpenQASM alongside XASM (the paper cites OpenQASM as the
//! other kernel language); this module provides enough of OpenQASM 2 to
//! exchange the circuits this reproduction uses: `qreg`/`creg`
//! declarations, the qelib1 gate names our [`GateKind`] set
//! covers, `measure`, `reset` and `barrier`.
//!
//! Multiple quantum registers are supported by concatenating them into one
//! index space in declaration order (classical registers likewise).

use crate::circuit::Circuit;
use crate::expr::ParamExpr;
use crate::gate::{GateKind, Instruction};
use crate::CircuitError;
use std::collections::HashMap;

fn err(line: usize, message: impl Into<String>) -> CircuitError {
    CircuitError::Parse { line, message: message.into() }
}

#[derive(Debug, Clone)]
struct Register {
    offset: usize,
    size: usize,
}

/// Parse OpenQASM 2 source into a [`Circuit`].
pub fn parse(src: &str) -> Result<Circuit, CircuitError> {
    let mut qregs: HashMap<String, Register> = HashMap::new();
    let mut cregs: HashMap<String, Register> = HashMap::new();
    let mut num_qubits = 0usize;
    let mut num_cbits = 0usize;
    let mut instructions: Vec<Instruction> = Vec::new();

    // Strip comments, then split on `;`. Track line numbers per statement.
    let mut cleaned = String::with_capacity(src.len());
    let mut chars = src.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '/' && chars.peek() == Some(&'/') {
            for c2 in chars.by_ref() {
                if c2 == '\n' {
                    cleaned.push('\n');
                    break;
                }
            }
        } else {
            cleaned.push(c);
        }
    }

    let mut line_no = 1usize;
    for raw_stmt in cleaned.split(';') {
        let stmt_line = line_no;
        line_no += raw_stmt.matches('\n').count();
        let stmt = raw_stmt.trim();
        if stmt.is_empty() {
            continue;
        }
        let lower = stmt.to_ascii_lowercase();
        if lower.starts_with("openqasm") || lower.starts_with("include") {
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("qreg") {
            let (name, size) = parse_decl(rest, stmt_line)?;
            qregs.insert(name, Register { offset: num_qubits, size });
            num_qubits += size;
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("creg") {
            let (name, size) = parse_decl(rest, stmt_line)?;
            cregs.insert(name, Register { offset: num_cbits, size });
            num_cbits += size;
            continue;
        }
        if lower.starts_with("barrier") {
            // Barriers are per-qubit in our IR; expand over all referenced qubits.
            let operands = stmt["barrier".len()..].trim();
            for q in parse_operand_list(operands, &qregs, stmt_line)? {
                instructions.push(Instruction::new(GateKind::Barrier, vec![q], vec![]));
            }
            continue;
        }
        if lower.starts_with("measure") {
            let rest = stmt["measure".len()..].trim();
            let (lhs, rhs) =
                rest.split_once("->").ok_or_else(|| err(stmt_line, "measure requires `-> creg`"))?;
            let qs = parse_operand_list(lhs.trim(), &qregs, stmt_line)?;
            let cs = parse_operand_list(rhs.trim(), &cregs, stmt_line)?;
            if qs.len() != cs.len() {
                return Err(err(stmt_line, "measure operand sizes differ"));
            }
            for (q, c) in qs.into_iter().zip(cs) {
                let mut inst = Instruction::new(GateKind::Measure, vec![q], vec![]);
                inst.cbit = Some(c);
                instructions.push(inst);
            }
            continue;
        }
        if lower.starts_with("reset") {
            let operands = stmt["reset".len()..].trim();
            for q in parse_operand_list(operands, &qregs, stmt_line)? {
                instructions.push(Instruction::new(GateKind::Reset, vec![q], vec![]));
            }
            continue;
        }
        // Gate application: `name(params)? operand(, operand)*`
        let (head, operands) = split_gate_head(stmt, stmt_line)?;
        let (gate_name, params_src) = match head.find('(') {
            Some(open) => {
                let close =
                    head.rfind(')').ok_or_else(|| err(stmt_line, "missing `)` in gate parameters"))?;
                (head[..open].trim(), Some(&head[open + 1..close]))
            }
            None => (head.trim(), None),
        };
        let gate = GateKind::from_name(gate_name)
            .ok_or_else(|| err(stmt_line, format!("unknown gate `{gate_name}`")))?;
        let mut params = Vec::new();
        if let Some(src) = params_src {
            for piece in src.split(',') {
                let e = ParamExpr::parse(piece.trim())
                    .map_err(|m| err(stmt_line, format!("bad parameter `{piece}`: {m}")))?;
                params.push(e.eval_const().map_err(|e| CircuitError::UnboundParam(e.unbound))?);
            }
        }
        if params.len() != gate.num_params() {
            return Err(err(
                stmt_line,
                format!("{gate} expects {} parameter(s), got {}", gate.num_params(), params.len()),
            ));
        }
        let qubits = parse_operand_list(operands, &qregs, stmt_line)?;
        if qubits.len() != gate.arity() {
            return Err(err(
                stmt_line,
                format!("{gate} expects {} operand(s), got {}", gate.arity(), qubits.len()),
            ));
        }
        instructions.push(Instruction::new(gate, qubits, params));
    }

    let mut circuit = Circuit::try_new(num_qubits)?;
    for inst in instructions {
        circuit.try_push(inst)?;
    }
    Ok(circuit)
}

/// Split a gate statement into the head (`name(params)`) and operand text.
fn split_gate_head(stmt: &str, line: usize) -> Result<(&str, &str), CircuitError> {
    // The operands start after the paren matching the first `(` (parameter
    // expressions may nest parens, e.g. `rz((pi/2)*3) q[0]`) or after the
    // first whitespace run when there are no parameters.
    if let Some(open) = stmt.find('(') {
        let mut depth = 0usize;
        for (i, ch) in stmt.char_indices().skip(open) {
            match ch {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok((&stmt[..=i], stmt[i + 1..].trim()));
                    }
                }
                _ => {}
            }
        }
        Err(err(line, "missing `)`"))
    } else {
        let split =
            stmt.find(char::is_whitespace).ok_or_else(|| err(line, "gate statement missing operands"))?;
        Ok((&stmt[..split], stmt[split..].trim()))
    }
}

fn parse_decl(rest: &str, line: usize) -> Result<(String, usize), CircuitError> {
    let rest = rest.trim();
    let open = rest.find('[').ok_or_else(|| err(line, "register declaration needs `[size]`"))?;
    let close = rest.find(']').ok_or_else(|| err(line, "missing `]`"))?;
    let name = rest[..open].trim().to_string();
    if name.is_empty() {
        return Err(err(line, "register declaration missing a name"));
    }
    let size: usize = rest[open + 1..close].trim().parse().map_err(|_| err(line, "bad register size"))?;
    Ok((name, size))
}

/// Parse `q[0], r[2]` or whole-register operands (`q`) into flat indices.
fn parse_operand_list(
    src: &str,
    regs: &HashMap<String, Register>,
    line: usize,
) -> Result<Vec<usize>, CircuitError> {
    let mut out = Vec::new();
    for piece in src.split(',') {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        if let Some(open) = piece.find('[') {
            let close = piece.find(']').ok_or_else(|| err(line, "missing `]`"))?;
            let name = piece[..open].trim();
            let reg = regs.get(name).ok_or_else(|| err(line, format!("unknown register `{name}`")))?;
            let idx: usize =
                piece[open + 1..close].trim().parse().map_err(|_| err(line, "bad operand index"))?;
            if idx >= reg.size {
                return Err(err(line, format!("index {idx} out of range for `{name}[{}]`", reg.size)));
            }
            out.push(reg.offset + idx);
        } else {
            let reg = regs.get(piece).ok_or_else(|| err(line, format!("unknown register `{piece}`")))?;
            out.extend(reg.offset..reg.offset + reg.size);
        }
    }
    Ok(out)
}

/// Serialize a circuit to OpenQASM 2. Gates outside qelib1 (`CCPhase`) are
/// decomposed into qelib-compatible sequences.
pub fn to_qasm(circuit: &Circuit) -> String {
    let n = circuit.num_qubits();
    // The classical register must cover every explicit cbit target as well
    // as the counter-assigned bits of bare `measure` instructions —
    // `measure_to(q, c)` with c ≥ num_qubits would otherwise emit QASM
    // that fails to re-parse.
    let mut creg_size = n;
    let mut auto = 0usize;
    for inst in circuit.instructions() {
        if inst.gate == GateKind::Measure {
            let c = inst.cbit.unwrap_or_else(|| {
                let c = auto;
                auto += 1;
                c
            });
            creg_size = creg_size.max(c + 1);
        }
    }
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    out.push_str(&format!("qreg q[{n}];\n"));
    out.push_str(&format!("creg c[{creg_size}];\n"));
    let mut next_cbit = 0usize;
    for inst in circuit.instructions() {
        let q = &inst.qubits;
        let line = match inst.gate {
            GateKind::H => format!("h q[{}];", q[0]),
            GateKind::X => format!("x q[{}];", q[0]),
            GateKind::Y => format!("y q[{}];", q[0]),
            GateKind::Z => format!("z q[{}];", q[0]),
            GateKind::S => format!("s q[{}];", q[0]),
            GateKind::Sdg => format!("sdg q[{}];", q[0]),
            GateKind::T => format!("t q[{}];", q[0]),
            GateKind::Tdg => format!("tdg q[{}];", q[0]),
            GateKind::Rx => format!("rx({}) q[{}];", fmt_f(inst.params[0]), q[0]),
            GateKind::Ry => format!("ry({}) q[{}];", fmt_f(inst.params[0]), q[0]),
            GateKind::Rz => format!("rz({}) q[{}];", fmt_f(inst.params[0]), q[0]),
            GateKind::Phase => format!("u1({}) q[{}];", fmt_f(inst.params[0]), q[0]),
            GateKind::U3 => format!(
                "u3({},{},{}) q[{}];",
                fmt_f(inst.params[0]),
                fmt_f(inst.params[1]),
                fmt_f(inst.params[2]),
                q[0]
            ),
            GateKind::CX => format!("cx q[{}],q[{}];", q[0], q[1]),
            GateKind::CY => format!("cy q[{}],q[{}];", q[0], q[1]),
            GateKind::CZ => format!("cz q[{}],q[{}];", q[0], q[1]),
            GateKind::CPhase => format!("cu1({}) q[{}],q[{}];", fmt_f(inst.params[0]), q[0], q[1]),
            GateKind::CRz => format!("crz({}) q[{}],q[{}];", fmt_f(inst.params[0]), q[0], q[1]),
            GateKind::Swap => format!("swap q[{}],q[{}];", q[0], q[1]),
            GateKind::CCX => format!("ccx q[{}],q[{}],q[{}];", q[0], q[1], q[2]),
            GateKind::CSwap => format!("cswap q[{}],q[{}],q[{}];", q[0], q[1], q[2]),
            GateKind::CCPhase => {
                // Standard two-control phase decomposition.
                let t = inst.params[0] / 2.0;
                format!(
                    "cu1({th}) q[{b}],q[{c}];\ncx q[{a}],q[{b}];\ncu1({mth}) q[{b}],q[{c}];\ncx q[{a}],q[{b}];\ncu1({th}) q[{a}],q[{c}];",
                    th = fmt_f(t),
                    mth = fmt_f(-t),
                    a = q[0],
                    b = q[1],
                    c = q[2]
                )
            }
            GateKind::Measure => {
                let c = inst.cbit.unwrap_or_else(|| {
                    let c = next_cbit;
                    next_cbit += 1;
                    c
                });
                format!("measure q[{}] -> c[{}];", q[0], c)
            }
            GateKind::Reset => format!("reset q[{}];", q[0]),
            GateKind::Barrier => format!("barrier q[{}];", q[0]),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

fn fmt_f(v: f64) -> String {
    // Rust's `Display` for f64 prints the shortest decimal string that
    // parses back to the same bits — an exact round-trip. The previous
    // `{v:.17}` fixed-point form truncated small magnitudes (17 decimal
    // *places* is fewer than 17 significant digits for |v| < 1), so e.g.
    // rz(1e-19) silently became rz(0) after emit→parse.
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_program() {
        let src = r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[2];
            creg c[2];
            h q[0];
            cx q[0],q[1];
            measure q[0] -> c[0];
            measure q[1] -> c[1];
        "#;
        let c = parse(src).unwrap();
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.len(), 4);
        assert_eq!(c.instructions()[3].cbit, Some(1));
    }

    #[test]
    fn whole_register_measure() {
        let src = "qreg q[3]; creg c[3]; h q[0]; measure q -> c;";
        let c = parse(src).unwrap();
        assert_eq!(c.len(), 4);
        assert_eq!(c.instructions()[2].qubits, vec![1]);
        assert_eq!(c.instructions()[2].cbit, Some(1));
    }

    #[test]
    fn parameterized_gates_with_pi() {
        let src = "qreg q[1]; rz(pi/2) q[0]; u1(-pi/4) q[0]; u3(0.1, 0.2, 0.3) q[0];";
        let c = parse(src).unwrap();
        assert!((c.instructions()[0].params[0] - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
        assert!((c.instructions()[1].params[0] + std::f64::consts::FRAC_PI_4).abs() < 1e-15);
        assert_eq!(c.instructions()[2].params.len(), 3);
    }

    #[test]
    fn multiple_qregs_concatenate() {
        let src = "qreg a[2]; qreg b[2]; cx a[1],b[0];";
        let c = parse(src).unwrap();
        assert_eq!(c.num_qubits(), 4);
        assert_eq!(c.instructions()[0].qubits, vec![1, 2]);
    }

    #[test]
    fn comments_and_includes_skipped() {
        let src = "// a comment\nOPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\nh q[0]; // trailing\n";
        assert_eq!(parse(src).unwrap().len(), 1);
    }

    #[test]
    fn barrier_and_reset() {
        let src = "qreg q[2]; barrier q; reset q[0];";
        let c = parse(src).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.instructions()[2].gate, GateKind::Reset);
    }

    #[test]
    fn unknown_gate_rejected() {
        assert!(parse("qreg q[1]; frob q[0];").is_err());
    }

    #[test]
    fn out_of_range_index_rejected() {
        assert!(parse("qreg q[1]; h q[4];").is_err());
    }

    #[test]
    fn writer_round_trips() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cx(0, 1)
            .rz(2, 0.12345)
            .cphase(1, 2, -0.5)
            .swap(0, 2)
            .u3(1, 0.1, 0.2, 0.3)
            .measure_to(0, 0)
            .measure_to(1, 1);
        let qasm = to_qasm(&c);
        let back = parse(&qasm).unwrap();
        assert_eq!(back.num_qubits(), 3);
        assert_eq!(back.len(), c.len());
        for (a, b) in back.instructions().iter().zip(c.instructions()) {
            assert_eq!(a.gate, b.gate);
            assert_eq!(a.qubits, b.qubits);
            for (pa, pb) in a.params.iter().zip(&b.params) {
                assert!((pa - pb).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn writer_decomposes_ccphase() {
        let mut c = Circuit::new(3);
        c.ccphase(0, 1, 2, 0.8);
        let qasm = to_qasm(&c);
        let back = parse(&qasm).unwrap();
        assert_eq!(back.len(), 5); // 3 cu1 + 2 cx
    }
}
