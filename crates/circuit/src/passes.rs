//! Peephole circuit optimizer.
//!
//! The paper's §VII motivates asynchronous "quantum JIT compilation": circuit
//! optimization is expensive enough (hours, in Shi et al. \[22\]) that it pays
//! to offload it while other work proceeds. This module is the compilation
//! workload used by that scenario in this reproduction: a pass manager over
//! peephole passes that shrink an instruction stream without changing the
//! circuit's semantics.
//!
//! Passes only combine *adjacent* operations, where adjacency means no
//! intervening instruction touches any of the operands (barriers block
//! matching on their qubit, measurements and resets block everything they
//! touch).

use crate::circuit::Circuit;
use crate::gate::{GateKind, Instruction};
use std::f64::consts::TAU;

/// A rewrite over a circuit. Returns `true` when it changed anything.
pub trait Pass {
    /// Human-readable pass name for logs.
    fn name(&self) -> &'static str;
    /// Apply the rewrite once.
    fn run(&self, circuit: &mut Circuit) -> bool;
}

/// Remove pairs of adjacent mutually-inverse gates (`H H`, `CX CX`,
/// `S Sdg`, `T Tdg`, `Rz(θ) Rz(-θ)`, ...).
#[derive(Debug, Default, Clone, Copy)]
pub struct CancelInversePairs;

/// Merge adjacent additive rotations on identical operands:
/// `Rz(a) Rz(b) → Rz(a+b)` and likewise for `Rx`, `Ry`, `Phase`, `CPhase`,
/// `CRz`, `CCPhase`.
#[derive(Debug, Default, Clone, Copy)]
pub struct MergeRotations;

/// Drop rotations whose angle is an exact identity: any additive rotation
/// with angle ≈ 0, and pure phase gates (`Phase`/`CPhase`/`CCPhase`) with
/// angle ≈ 2πk (the axis rotations `Rx/Ry/Rz/CRz` at 2π equal −I, a global
/// phase we conservatively keep unless the angle is ≈ 4πk).
#[derive(Debug, Default, Clone, Copy)]
pub struct RemoveIdentities;

/// Tolerance for treating an angle as an exact identity.
const ANGLE_EPS: f64 = 1e-12;

/// Find the next instruction at or after `start` that shares a qubit with
/// `inst`. Returns `(index, overlaps_fully)` where `overlaps_fully` is true
/// when it has exactly the same operand list.
fn next_touching(circuit: &Circuit, inst: &Instruction, start: usize) -> Option<usize> {
    circuit.instructions()[start..]
        .iter()
        .position(|other| other.qubits.iter().any(|q| inst.qubits.contains(q)))
        .map(|off| start + off)
}

impl Pass for CancelInversePairs {
    fn name(&self) -> &'static str {
        "cancel-inverse-pairs"
    }

    fn run(&self, circuit: &mut Circuit) -> bool {
        let mut changed = false;
        let mut i = 0;
        while i < circuit.len() {
            let inst = circuit.instructions()[i].clone();
            let cancellable = inst.gate.is_unitary() && inst.gate != GateKind::Barrier;
            if cancellable {
                if let Some(j) = next_touching(circuit, &inst, i + 1) {
                    let other = &circuit.instructions()[j];
                    let is_inverse = other.qubits == inst.qubits
                        && inst
                            .inverse()
                            .map(|inv| {
                                inv.gate == other.gate
                                    && inv
                                        .params
                                        .iter()
                                        .zip(&other.params)
                                        .all(|(a, b)| (a - b).abs() < ANGLE_EPS)
                            })
                            .unwrap_or(false);
                    if is_inverse {
                        let insts = circuit.instructions_mut();
                        insts.remove(j);
                        insts.remove(i);
                        changed = true;
                        // Re-examine from the previous index: removing the
                        // pair may expose a new adjacent pair.
                        i = i.saturating_sub(1);
                        continue;
                    }
                }
            }
            i += 1;
        }
        changed
    }
}

impl Pass for MergeRotations {
    fn name(&self) -> &'static str {
        "merge-rotations"
    }

    fn run(&self, circuit: &mut Circuit) -> bool {
        let mut changed = false;
        let mut i = 0;
        while i < circuit.len() {
            let inst = circuit.instructions()[i].clone();
            if inst.gate.is_additive_rotation() {
                if let Some(j) = next_touching(circuit, &inst, i + 1) {
                    let other = &circuit.instructions()[j];
                    if other.same_op(&inst) {
                        let merged = inst.params[0] + other.params[0];
                        let insts = circuit.instructions_mut();
                        insts[i].params[0] = merged;
                        insts.remove(j);
                        changed = true;
                        continue; // the merged gate may merge again
                    }
                }
            }
            i += 1;
        }
        changed
    }
}

impl Pass for RemoveIdentities {
    fn name(&self) -> &'static str {
        "remove-identities"
    }

    fn run(&self, circuit: &mut Circuit) -> bool {
        let before = circuit.len();
        circuit.instructions_mut().retain(|inst| {
            if !inst.gate.is_additive_rotation() {
                return true;
            }
            let theta = inst.params[0];
            let period = match inst.gate {
                // diag phases are exactly periodic in 2π
                GateKind::Phase | GateKind::CPhase | GateKind::CCPhase => TAU,
                // axis rotations pick up a global −1 at 2π; only 4π is the identity
                _ => 2.0 * TAU,
            };
            let rem = theta.rem_euclid(period);
            !(rem < ANGLE_EPS || (period - rem) < ANGLE_EPS)
        });
        circuit.len() != before
    }
}

/// Runs a pass pipeline to a fixed point.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    max_iterations: usize,
}

impl Default for PassManager {
    fn default() -> Self {
        Self::standard()
    }
}

impl PassManager {
    /// An empty pass manager.
    pub fn new() -> Self {
        PassManager { passes: Vec::new(), max_iterations: 64 }
    }

    /// The standard pipeline: identity removal, rotation merging, inverse
    /// cancellation.
    pub fn standard() -> Self {
        let mut pm = Self::new();
        pm.add(RemoveIdentities);
        pm.add(MergeRotations);
        pm.add(CancelInversePairs);
        pm
    }

    /// Append a pass to the pipeline.
    pub fn add(&mut self, pass: impl Pass + 'static) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Cap the number of full-pipeline iterations (default 64).
    pub fn max_iterations(&mut self, n: usize) -> &mut Self {
        self.max_iterations = n.max(1);
        self
    }

    /// Run the pipeline until no pass changes the circuit (or the iteration
    /// cap is hit). Returns the number of instructions removed.
    pub fn run(&self, circuit: &mut Circuit) -> usize {
        let before = circuit.len();
        for _ in 0..self.max_iterations {
            let mut changed = false;
            for pass in &self.passes {
                changed |= pass.run(circuit);
            }
            if !changed {
                break;
            }
        }
        before - circuit.len()
    }
}

/// Convenience: run the standard pipeline on a circuit.
pub fn optimize(circuit: &mut Circuit) -> usize {
    PassManager::standard().run(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_h_pair_cancels() {
        let mut c = Circuit::new(1);
        c.h(0).h(0);
        assert_eq!(optimize(&mut c), 2);
        assert!(c.is_empty());
    }

    #[test]
    fn cancellation_cascades() {
        // H X X H → H H → empty
        let mut c = Circuit::new(1);
        c.h(0).x(0).x(0).h(0);
        optimize(&mut c);
        assert!(c.is_empty());
    }

    #[test]
    fn s_sdg_pair_cancels() {
        let mut c = Circuit::new(1);
        c.s(0).sdg(0);
        optimize(&mut c);
        assert!(c.is_empty());
    }

    #[test]
    fn rotation_inverse_pair_cancels() {
        let mut c = Circuit::new(1);
        c.rz(0, 0.7).rz(0, -0.7);
        optimize(&mut c);
        assert!(c.is_empty());
    }

    #[test]
    fn intervening_gate_blocks_cancellation() {
        let mut c = Circuit::new(1);
        c.h(0).t(0).h(0);
        optimize(&mut c);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn disjoint_qubit_does_not_block() {
        // H(0) X(1) H(0): the X on qubit 1 does not touch qubit 0.
        let mut c = Circuit::new(2);
        c.h(0).x(1).x(1).h(0);
        optimize(&mut c);
        assert!(c.is_empty());
    }

    #[test]
    fn cx_pair_cancels_only_with_same_orientation() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(0, 1);
        optimize(&mut c);
        assert!(c.is_empty());

        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(1, 0);
        optimize(&mut c);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn rotations_merge_and_vanish() {
        let mut c = Circuit::new(1);
        c.rz(0, 0.25).rz(0, 0.5).rz(0, -0.75);
        optimize(&mut c);
        assert!(c.is_empty());
    }

    #[test]
    fn rotations_merge_to_single_gate() {
        let mut c = Circuit::new(1);
        c.ry(0, 0.25).ry(0, 0.5);
        optimize(&mut c);
        assert_eq!(c.len(), 1);
        assert!((c.instructions()[0].params[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn cphase_merges_across_disjoint_gates() {
        let mut c = Circuit::new(3);
        c.cphase(0, 1, 0.2).h(2).cphase(0, 1, 0.3);
        optimize(&mut c);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn phase_full_turn_removed_but_rz_full_turn_kept() {
        let mut c = Circuit::new(1);
        c.phase(0, TAU);
        optimize(&mut c);
        assert!(c.is_empty(), "Phase(2π) is exactly the identity");

        let mut c = Circuit::new(1);
        c.rz(0, TAU);
        optimize(&mut c);
        assert_eq!(c.len(), 1, "Rz(2π) = −I is only a global phase; keep it");

        let mut c = Circuit::new(1);
        c.rz(0, 2.0 * TAU);
        optimize(&mut c);
        assert!(c.is_empty(), "Rz(4π) is exactly the identity");
    }

    #[test]
    fn barrier_blocks_cancellation() {
        let mut c = Circuit::new(1);
        c.h(0).barrier(0).h(0);
        optimize(&mut c);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn measure_blocks_cancellation() {
        let mut c = Circuit::new(1);
        c.h(0).measure(0).h(0);
        optimize(&mut c);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn circuit_inverse_composition_fully_cancels() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).rz(2, 0.3).ccx(0, 1, 2).s(2);
        let inv = c.inverse().unwrap();
        let mut composed = c.clone();
        composed.extend(&inv);
        optimize(&mut composed);
        assert!(composed.is_empty(), "U U† should optimize to the empty circuit");
    }

    #[test]
    fn pass_manager_reports_removed_count() {
        let mut c = Circuit::new(1);
        c.h(0).h(0).t(0);
        let removed = optimize(&mut c);
        assert_eq!(removed, 2);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn pass_names_are_stable() {
        assert_eq!(CancelInversePairs.name(), "cancel-inverse-pairs");
        assert_eq!(MergeRotations.name(), "merge-rotations");
        assert_eq!(RemoveIdentities.name(), "remove-identities");
    }
}
