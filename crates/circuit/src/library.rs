//! Library circuits: Bell/GHZ state preparation and the quantum Fourier
//! transform used throughout Shor's kernel.
//!
//! Bit convention: registers are little-endian — qubit `0` is the least
//! significant bit of the integer a register encodes. [`qft`] implements
//! |x⟩ → (1/√M) Σ_y e^{2πi x y / M} |y⟩ with M = 2^m *including* the final
//! qubit-reversal swaps, so its output uses the same little-endian
//! convention as its input.

use crate::circuit::Circuit;
use std::f64::consts::PI;

/// The `n`-qubit Bell/GHZ preparation without measurements:
/// H on qubit 0 followed by a CNOT chain.
pub fn ghz_state(n: usize) -> Circuit {
    assert!(n >= 1, "GHZ needs at least one qubit");
    let mut c = Circuit::new(n);
    c.h(0);
    for i in 0..n.saturating_sub(1) {
        c.cx(i, i + 1);
    }
    c
}

/// The paper's 2-qubit Bell kernel (Listing 1): state preparation plus
/// measurement of every qubit.
pub fn bell_kernel() -> Circuit {
    let mut c = ghz_state(2);
    c.measure_all();
    c
}

/// `n`-qubit GHZ kernel with measurements.
pub fn ghz_kernel(n: usize) -> Circuit {
    let mut c = ghz_state(n);
    c.measure_all();
    c
}

/// Quantum Fourier transform on qubits `[0, n)` of an `n`-qubit register,
/// including the final swaps (little-endian in, little-endian out).
pub fn qft(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    append_qft(&mut c, &(0..n).collect::<Vec<_>>());
    c
}

/// Inverse QFT on `n` qubits.
pub fn iqft(n: usize) -> Circuit {
    qft(n).inverse().expect("QFT contains only unitaries")
}

/// Append a QFT acting on the given qubit list (little-endian: `qubits[0]`
/// is the least significant bit) to an existing circuit.
pub fn append_qft(c: &mut Circuit, qubits: &[usize]) {
    let m = qubits.len();
    // Standard QFT network on bits reordered MSB-first, then swaps to
    // restore little-endian ordering.
    for i in (0..m).rev() {
        c.h(qubits[i]);
        for j in (0..i).rev() {
            // Controlled phase π / 2^(i-j)
            let angle = PI / (1u64 << (i - j)) as f64;
            c.cphase(qubits[j], qubits[i], angle);
        }
    }
    for i in 0..m / 2 {
        c.swap(qubits[i], qubits[m - 1 - i]);
    }
}

/// Append the inverse QFT on the given qubit list.
pub fn append_iqft(c: &mut Circuit, qubits: &[usize]) {
    let mut tmp = Circuit::new(c.num_qubits());
    append_qft(&mut tmp, qubits);
    let inv = tmp.inverse().expect("QFT contains only unitaries");
    c.extend(&inv);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    #[test]
    fn bell_kernel_matches_listing_1() {
        let c = bell_kernel();
        assert_eq!(c.num_qubits(), 2);
        let kinds: Vec<GateKind> = c.instructions().iter().map(|i| i.gate).collect();
        assert_eq!(kinds, vec![GateKind::H, GateKind::CX, GateKind::Measure, GateKind::Measure]);
    }

    #[test]
    fn ghz_scales_linearly() {
        let c = ghz_kernel(5);
        assert_eq!(c.len(), 1 + 4 + 5);
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn ghz_zero_panics() {
        ghz_state(0);
    }

    #[test]
    fn qft_gate_count() {
        // n H gates + n(n-1)/2 controlled phases + floor(n/2) swaps
        for n in 1..8 {
            let c = qft(n);
            let counts = c.gate_counts();
            assert_eq!(counts.get(&GateKind::H).copied().unwrap_or(0), n);
            assert_eq!(counts.get(&GateKind::CPhase).copied().unwrap_or(0), n * (n - 1) / 2);
            assert_eq!(counts.get(&GateKind::Swap).copied().unwrap_or(0), n / 2);
        }
    }

    #[test]
    fn iqft_composes_to_identity_structurally() {
        let mut c = qft(4);
        c.extend(&iqft(4));
        crate::passes::optimize(&mut c);
        assert!(c.is_empty(), "QFT · IQFT should cancel to the empty circuit");
    }

    #[test]
    fn append_qft_on_sub_register() {
        let mut c = Circuit::new(6);
        append_qft(&mut c, &[2, 3, 4]);
        assert!(c.instructions().iter().all(|i| i.qubits.iter().all(|&q| (2..5).contains(&q))));
    }
}
