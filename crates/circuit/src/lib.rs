//! # qcor-circuit — quantum circuit IR and kernel languages
//!
//! QCOR programs express quantum kernels in a DSL (the paper uses XACC's
//! XASM; OpenQASM is also supported by XACC) that the QCOR compiler lowers
//! to an instruction stream executed by an `Accelerator`. This crate is that
//! layer of the reproduction:
//!
//! * [`GateKind`] / [`Instruction`] / [`Circuit`] — the concrete instruction
//!   set and container consumed by the simulator,
//! * [`ParamCircuit`] — a parametric kernel template (symbolic angles such
//!   as the `theta` of the paper's VQE ansatz, Listing 3) that is bound to
//!   concrete values at invocation time,
//! * [`xasm`] — a parser for the XASM subset used by the paper's kernels
//!   (Listings 1, 3, 4),
//! * [`qasm`] — an OpenQASM 2 subset parser and writer,
//! * [`passes`] — peephole optimizer passes (the "quantum JIT compilation"
//!   workload of the paper's §VII discussion),
//! * [`library`] — Bell/GHZ/QFT builders,
//! * [`arith`] — Draper QFT arithmetic and the Beauregard modular
//!   exponentiation construction used by Shor's kernel (paper ref. \[20\]).

pub mod arith;
mod circuit;
pub mod draw;
mod expr;
mod gate;
pub mod library;
pub mod passes;
pub mod qasm;
pub mod wire;
pub mod xasm;

pub use circuit::{Circuit, ParamCircuit, ParamInstruction};
pub use expr::{EvalError, ParamExpr};
pub use gate::{GateKind, Instruction};
pub use wire::WireError;

/// Hard upper bound on register width. The compiler and simulator pack
/// qubit sets into `usize` bitmasks (`support_mask`, control masks, phase
/// sweeps), so a qubit index of 64 or more would shift past the word and —
/// in release builds — silently wrap, corrupting fusion decisions. Circuits
/// wider than this are rejected at construction and at wire decode.
pub const MAX_QUBITS: usize = 64;

/// Errors produced while parsing or manipulating circuits.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// A gate referenced a qubit index outside the register.
    QubitOutOfRange { gate: String, qubit: usize, size: usize },
    /// The register is wider than the `usize`-bitmask budget ([`MAX_QUBITS`]).
    TooManyQubits { requested: usize, max: usize },
    /// Parse error with a line number and message.
    Parse { line: usize, message: String },
    /// A parameter expression referenced an unbound variable.
    UnboundParam(String),
    /// Attempted to invert a non-unitary instruction (measure/reset).
    NotInvertible(String),
    /// Anything else.
    Invalid(String),
}

impl std::fmt::Display for CircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { gate, qubit, size } => {
                write!(f, "gate {gate} addresses qubit {qubit} but the register has {size} qubits")
            }
            CircuitError::TooManyQubits { requested, max } => {
                write!(f, "circuit requests {requested} qubits but bitmask-based compilation supports at most {max}")
            }
            CircuitError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            CircuitError::UnboundParam(name) => write!(f, "unbound kernel parameter `{name}`"),
            CircuitError::NotInvertible(what) => write!(f, "instruction `{what}` is not invertible"),
            CircuitError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CircuitError {}
