//! Property tests for the circuit IR, parsers and optimizer.

use proptest::prelude::*;
use qcor_circuit::{passes, xasm, Circuit, GateKind, Instruction};

/// Strategy producing a random concrete instruction over `n` qubits (n ≥ 3).
fn instruction_strategy(n: usize) -> impl Strategy<Value = Instruction> {
    let q = 0..n;
    let angle = -10.0f64..10.0;
    prop_oneof![
        q.clone().prop_map(|a| Instruction::new(GateKind::H, vec![a], vec![])),
        q.clone().prop_map(|a| Instruction::new(GateKind::X, vec![a], vec![])),
        q.clone().prop_map(|a| Instruction::new(GateKind::S, vec![a], vec![])),
        q.clone().prop_map(|a| Instruction::new(GateKind::T, vec![a], vec![])),
        (q.clone(), angle.clone()).prop_map(|(a, t)| Instruction::new(GateKind::Rx, vec![a], vec![t])),
        (q.clone(), angle.clone()).prop_map(|(a, t)| Instruction::new(GateKind::Ry, vec![a], vec![t])),
        (q.clone(), angle.clone()).prop_map(|(a, t)| Instruction::new(GateKind::Rz, vec![a], vec![t])),
        (q.clone(), angle.clone()).prop_map(|(a, t)| Instruction::new(GateKind::Phase, vec![a], vec![t])),
        (q.clone(), q.clone(), angle).prop_filter_map("distinct", |(a, b, t)| {
            (a != b).then(|| Instruction::new(GateKind::CPhase, vec![a, b], vec![t]))
        }),
        (q.clone(), q.clone()).prop_filter_map("distinct", |(a, b)| {
            (a != b).then(|| Instruction::new(GateKind::CX, vec![a, b], vec![]))
        }),
        (q.clone(), q.clone()).prop_filter_map("distinct", |(a, b)| {
            (a != b).then(|| Instruction::new(GateKind::Swap, vec![a, b], vec![]))
        }),
        (q.clone(), q.clone(), q).prop_filter_map("distinct", |(a, b, c)| {
            (a != b && b != c && a != c).then(|| Instruction::new(GateKind::CCX, vec![a, b, c], vec![]))
        }),
    ]
}

fn circuit_strategy(n: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(instruction_strategy(n), 0..max_len).prop_map(move |insts| {
        let mut c = Circuit::new(n);
        for i in insts {
            c.push(i);
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn display_round_trips_through_xasm(c in circuit_strategy(4, 30)) {
        let text = c.to_string();
        let parsed = xasm::parse_kernel(&text, 4).unwrap().bind(&[]).unwrap();
        prop_assert_eq!(parsed.len(), c.len());
        for (a, b) in parsed.instructions().iter().zip(c.instructions()) {
            prop_assert_eq!(a.gate, b.gate);
            prop_assert_eq!(&a.qubits, &b.qubits);
            for (pa, pb) in a.params.iter().zip(&b.params) {
                prop_assert!((pa - pb).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn qasm_round_trips(c in circuit_strategy(4, 30)) {
        let text = qcor_circuit::qasm::to_qasm(&c);
        let parsed = qcor_circuit::qasm::parse(&text).unwrap();
        prop_assert_eq!(parsed.len(), c.len());
        for (a, b) in parsed.instructions().iter().zip(c.instructions()) {
            prop_assert_eq!(a.gate, b.gate);
            prop_assert_eq!(&a.qubits, &b.qubits);
            for (pa, pb) in a.params.iter().zip(&b.params) {
                prop_assert!((pa - pb).abs() < 1e-9);
            }
        }
    }

    // Fixpoint property for the QASM ingress/egress pair: parsing what we
    // emit must converge after one round. `parse(to_qasm(c))` may differ
    // from `c` only where QASM cannot express our IR exactly (CCPhase is
    // decomposed, bare `measure` gains an explicit cbit) — but emitting and
    // re-parsing *that* circuit must be the identity, angles bit-exact.
    #[test]
    fn qasm_emit_parse_reaches_fixpoint(c in circuit_strategy(4, 30)) {
        let c1 = qcor_circuit::qasm::parse(&qcor_circuit::qasm::to_qasm(&c)).unwrap();
        let c2 = qcor_circuit::qasm::parse(&qcor_circuit::qasm::to_qasm(&c1)).unwrap();
        prop_assert_eq!(&c2, &c1, "second emit/parse round must be the identity");
    }

    // Angles survive emit→parse exactly, not just to a tolerance: the
    // writer prints shortest-round-trip decimals and the reader parses
    // them back to the same bits.
    #[test]
    fn qasm_round_trip_is_bit_exact_on_angles(c in circuit_strategy(4, 30)) {
        let parsed = qcor_circuit::qasm::parse(&qcor_circuit::qasm::to_qasm(&c)).unwrap();
        prop_assert_eq!(parsed.len(), c.len());
        for (a, b) in parsed.instructions().iter().zip(c.instructions()) {
            prop_assert_eq!(a.gate, b.gate);
            prop_assert_eq!(&a.qubits, &b.qubits);
            for (pa, pb) in a.params.iter().zip(&b.params) {
                prop_assert_eq!(pa.to_bits(), pb.to_bits(), "angle must round-trip exactly");
            }
        }
    }

    // The binary wire format round-trips every builder circuit exactly.
    #[test]
    fn wire_round_trips_builder_circuits(c in circuit_strategy(4, 40)) {
        let bytes = qcor_circuit::wire::encode(&c);
        let back = qcor_circuit::wire::decode(&bytes).unwrap();
        prop_assert_eq!(back, c);
    }

    // Truncating an encoded circuit anywhere yields a typed error, never a
    // panic or a silently-shortened circuit.
    #[test]
    fn wire_decode_rejects_truncations(c in circuit_strategy(4, 12)) {
        let bytes = qcor_circuit::wire::encode(&c);
        for cut in 0..bytes.len() {
            prop_assert!(matches!(
                qcor_circuit::wire::decode(&bytes[..cut]),
                Err(qcor_circuit::WireError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn optimizer_never_grows_and_is_idempotent(mut c in circuit_strategy(4, 40)) {
        let before = c.len();
        passes::optimize(&mut c);
        prop_assert!(c.len() <= before);
        let after_first = c.len();
        passes::optimize(&mut c);
        prop_assert_eq!(c.len(), after_first, "optimize must be idempotent");
    }

    #[test]
    fn double_inverse_is_identity(c in circuit_strategy(4, 25)) {
        let back = c.inverse().unwrap().inverse().unwrap();
        prop_assert_eq!(back, c);
    }

    #[test]
    fn u_udagger_optimizes_to_empty(c in circuit_strategy(3, 12)) {
        let mut composed = c.clone();
        composed.extend(&c.inverse().unwrap());
        passes::optimize(&mut composed);
        prop_assert!(composed.is_empty());
    }

    #[test]
    fn depth_at_most_len(c in circuit_strategy(4, 40)) {
        prop_assert!(c.depth() <= c.len());
    }
}
