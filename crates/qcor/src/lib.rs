//! # qcor — the user-facing facade
//!
//! This crate is the `qcor::` namespace that application code, the
//! examples, and the integration tests import — the Rust analogue of the
//! single `qcor` C++ namespace in the paper. It contains no logic of its
//! own: everything is re-exported from the layer crates
//!
//! ```text
//! qcor-pool → qcor-sim / qcor-circuit → qcor-xacc → qcor-pauli → qcor-core → qcor
//! ```
//!
//! The paper's Bell kernel (Listing 4) through this facade:
//!
//! ```
//! use qcor::{initialize, qalloc, InitOptions, Kernel};
//!
//! initialize(InitOptions::default().threads(1)).unwrap();
//! let q = qalloc(2);
//! let bell = Kernel::from_xasm(
//!     "__qpu__ void bell(qreg q) {
//!          H(q[0]); CX(q[0], q[1]);
//!          for (int i = 0; i < q.size(); i++) { Measure(q[i]); }
//!      }",
//!     2,
//! )
//! .unwrap();
//! bell.invoke(&q, &[]).unwrap();
//! assert_eq!(q.total_shots(), 1024);
//! ```

// The runtime API: initialize / initialize_legacy_shared, qalloc, QReg,
// Kernel, QPUManager (+ RoutingPolicy multi-backend routing, load-weighted
// under capability policies), spawn / async_task / submit and the
// ExecutionService behind them (bounded two-lane kernel queue with
// per-tenant deficit-weighted fair queuing — TaskSpec / set_thread_tenant
// / QCOR_TENANT_WEIGHTS — block / reject / shed-oldest backpressure,
// work-conserving in-task joins and optional work-conserving dispatch,
// TaskFuture::cancel with cooperative mid-execution stop, eagerly-evicted
// per-task deadlines, TaskPriority lanes, and live introspection via
// ExecutionService::introspect / QCOR_DEBUG_ENDPOINT), execute /
// execute_with, objective functions, optimizers, and QcorError.
pub use qcor_core::*;

// Kernel-language and circuit tooling, addressable as `qcor::xasm::…`
// just like the `qcor::` JIT utilities in the paper's listings.
pub use qcor_circuit::{draw, library, passes, qasm, xasm};
pub use qcor_circuit::{Circuit, CircuitError, GateKind, Instruction, ParamCircuit};

// The accelerator service registry (XACC's `getAccelerator` analogue) and
// its error type, for code that registers custom backends.
pub use qcor_xacc::{registry, XaccError};

// The threading substrate, exposed for advanced users who tune pool sizes
// the way the paper tunes OMP_NUM_THREADS.
pub use qcor_pool::{available_parallelism, num_threads_from_env, PoolBuilder, Schedule, ThreadPool};

// The simulator's batched shot scheduler: shot loops are partitioned into
// chunks sized by an adaptive granularity heuristic and executed as work
// items on a shared pool, with per-chunk derived RNG streams (fixed
// `(seed, tasks, chunk_shots)` ⇒ byte-identical merged counts). Exposed
// for programs that drive the simulator directly or tune chunking.
pub use qcor_sim as sim;
pub use qcor_sim::{
    run_shots, run_shots_planned, run_shots_task_parallel, Counts, Granularity, RunConfig, ShotPlan,
};

// Cooperative cancellation: task code polls `cancel_requested()` at its
// own safe points; the chunked shot scheduler checks between chunk jobs
// (`run_shots_cancellable` / `ShotRun`), so a cancelled sweep stops at the
// next chunk boundary with the completed prefix's exact counts.
pub use qcor_sim::{cancel_requested, run_shots_cancellable, CancelToken, ShotRun};

// Compile-then-execute: a `CompiledCircuit` lowers a circuit once into
// fused kernel ops (precomputed matrices, merged phase sweeps, two-qubit
// block fusion, control-aware kernels) and replays it per shot.
// `RunConfig::fusion`, `InitOptions::gate_fusion` and `QCOR_GATE_FUSION`
// select it (default on).
pub use qcor_sim::{fusion_env_default, CompiledCircuit, KernelOp};

// Amplitude precision: `RunConfig::precision`, `InitOptions::precision`
// and `QCOR_PRECISION` select between the full f64 executor and the
// single-precision compiled replay (`qcor_sim::fp32`), which halves state
// memory and matches f64 amplitudes to ~1e-4.
pub use qcor_sim::{precision_env_default, CompiledCircuit32, Precision, StateVector32};

// Sharded execution. Amplitude sharding (`RunConfig::amp_shards`,
// `InitOptions::amp_shards`, `QCOR_AMP_SHARDS`) splits every kernel sweep
// into per-shard batch jobs on the pool, bit-identical to the sequential
// sweep on any pool size. Process-level shot sharding (`QCOR_SHOT_PROCS`,
// `qcor_sim::shard`) partitions a run's chunk schedule across OS
// processes — binaries that call `run_sharded_spawn` (or honor
// `QCOR_SHOT_PROCS` via `run_shots_sharded_env`) must route re-executions
// through `maybe_shard_worker` at the top of `main`.
pub use qcor_sim::{
    amp_shards_env_default, maybe_shard_worker, run_sharded, run_sharded_spawn, run_shots_sharded_env,
    shot_procs_env_default, AmpShards,
};

// Noise-model execution. `compile_noisy` lowers a circuit plus a
// `NoiseModel` once into fused kernel ops interleaved with channel ops;
// the exact density path replays them as superoperator sweeps
// (`DensityMatrix` implements `ApplyState`, the primitive-kernel surface
// compiled replay dispatches to) while `run_noisy_shots` samples
// trajectories on the same batched ShotPlan chunking as the pure-state
// executor, so seeded noisy counts are byte-identical on any pool size.
// `InitOptions::noise_mode` / `QCOR_NOISE_MODE` select `trajectory`,
// `density`, or the legacy `interpreted` loop on the `qpp-noisy` backend.
pub use qcor_sim::{
    apply_readout_error, compile_noisy, noise_mode_env_default, run_noisy_shots, run_noisy_shots_planned,
    ApplyState, DensityMatrix, NoiseMode, NoiseModel, NoisyCompiled, NoisyOp,
};

// Grouped Pauli measurement: `pauli::grouping::group_qubit_wise`
// partitions a Hamiltonian into qubit-wise-commuting measurement groups
// and `pauli::expectation::estimate_with` estimates ⟨H⟩ with exactly one
// circuit execution — one batched ShotPlan — per group rather than one
// per term. The sampled objective strategy (`strategy = "sampled"`) and
// `qcor_algos::vqe::sampled_energy` ride on it.
pub use qcor_pauli as pauli;
pub use qcor_pauli::{Pauli, PauliString, PauliSum};
