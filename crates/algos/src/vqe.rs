//! The variational quantum eigensolver of paper Listing 3, plus the
//! asynchronous multi-start driver sketched in §VII ("the pleasantly
//! parallel nature of the optimization process can be utilized with
//! multiple asynchronous quantum kernel instances minimizing over
//! θ-space").

use qcor::{
    create_objective_function, create_optimizer, qalloc, ExecutionService, HetMap, Kernel, ObjectiveFunction,
    OptimizerResult, QcorError,
};
use qcor_circuit::Circuit;
use qcor_pauli::{deuteron_hamiltonian, PauliSum};
use qcor_pool::ThreadPool;
use qcor_sim::{derive_stream_seed, run_shots, RunConfig};
use std::sync::Arc;

/// The ansatz of paper Listing 3.
pub const DEUTERON_ANSATZ_XASM: &str = r#"
__qpu__ void ansatz(qreg q, double theta) {
    X(q[0]);
    Ry(q[1], theta);
    CX(q[1], q[0]);
}
"#;

/// Compile the Listing 3 ansatz kernel.
pub fn deuteron_ansatz() -> Kernel {
    Kernel::from_xasm(DEUTERON_ANSATZ_XASM, 2).expect("static ansatz source is valid")
}

/// Result of a VQE run.
#[derive(Debug, Clone, PartialEq)]
pub struct VqeResult {
    /// Minimum energy found.
    pub energy: f64,
    /// Optimal variational parameters.
    pub params: Vec<f64>,
    /// Objective evaluations consumed.
    pub evaluations: usize,
    /// The starting point that won (multi-start only; equals the initial
    /// guess otherwise).
    pub start: Vec<f64>,
}

/// Run VQE for an arbitrary ansatz/Hamiltonian with the named optimizer
/// (exact expectation evaluation).
pub fn run_vqe(
    ansatz: Kernel,
    hamiltonian: PauliSum,
    n_params: usize,
    optimizer_name: &str,
    x0: &[f64],
) -> Result<VqeResult, QcorError> {
    let n_qubits = hamiltonian.num_qubits().max(2);
    let q = qalloc(n_qubits);
    let objective: ObjectiveFunction = create_objective_function(
        ansatz,
        hamiltonian,
        q,
        n_params,
        &HetMap::new().with("gradient-strategy", "central").with("step", 1e-3),
    )?;
    let optimizer = create_optimizer(optimizer_name, &HetMap::new())
        .ok_or_else(|| QcorError::Kernel(format!("unknown optimizer `{optimizer_name}`")))?;
    let OptimizerResult { opt_val, opt_params, evaluations, .. } = optimizer.optimize(&objective, x0);
    Ok(VqeResult { energy: opt_val, params: opt_params, evaluations, start: x0.to_vec() })
}

/// The full Listing 3 program: Deuteron VQE from θ = 0 with L-BFGS
/// (the `nlopt`/`l-bfgs` configuration of the paper).
pub fn deuteron_vqe() -> Result<VqeResult, QcorError> {
    run_vqe(deuteron_ansatz(), deuteron_hamiltonian(), 1, "l-bfgs", &[0.0])
}

/// Grouped sampled expectation of `hamiltonian` over the state `prep`
/// prepares. The Hamiltonian is partitioned into qubit-wise-commuting
/// measurement groups (`qcor_pauli::grouping::group_qubit_wise`) and the
/// simulator executes **exactly one batched `ShotPlan` per group** —
/// never one per Pauli term — each on its own derived RNG stream, so the
/// estimate is deterministic for a fixed `(seed, shots)` on any pool
/// size.
pub fn sampled_energy(
    prep: &Circuit,
    hamiltonian: &PauliSum,
    shots: usize,
    seed: u64,
    pool: &Arc<ThreadPool>,
) -> f64 {
    let mut group = 0usize;
    qcor_pauli::expectation::estimate_with(hamiltonian, prep, |circuit| {
        let config = RunConfig { shots, seed: Some(derive_stream_seed(seed, group)), ..RunConfig::default() };
        group += 1;
        run_shots(circuit, Arc::clone(pool), &config)
    })
}

/// VQE with shot-based objective evaluation (`strategy = "sampled"`) on
/// the active backend: every energy evaluation measures the grouped
/// Hamiltonian, one backend execution per qubit-wise-commuting group.
/// Requires an initialized runtime ([`qcor::initialize`]), which supplies
/// the shot budget and base seed.
pub fn run_vqe_sampled(
    ansatz: Kernel,
    hamiltonian: PauliSum,
    n_params: usize,
    optimizer_name: &str,
    x0: &[f64],
) -> Result<VqeResult, QcorError> {
    let n_qubits = hamiltonian.num_qubits().max(2);
    let q = qalloc(n_qubits);
    let objective: ObjectiveFunction = create_objective_function(
        ansatz,
        hamiltonian,
        q,
        n_params,
        // A coarser finite-difference step than the exact path: central
        // differences at 1e-3 would drown in shot noise.
        &HetMap::new().with("gradient-strategy", "central").with("step", 1e-2).with("strategy", "sampled"),
    )?;
    let optimizer = create_optimizer(optimizer_name, &HetMap::new())
        .ok_or_else(|| QcorError::Kernel(format!("unknown optimizer `{optimizer_name}`")))?;
    let OptimizerResult { opt_val, opt_params, evaluations, .. } = optimizer.optimize(&objective, x0);
    Ok(VqeResult { energy: opt_val, params: opt_params, evaluations, start: x0.to_vec() })
}

/// Multi-start VQE: an asynchronous driver task fans one task per
/// starting point out onto the global kernel queue and joins them
/// **in-task**, returning the best result. This is the §VII VQE
/// parallelization scenario. The in-task sibling joins are legal because
/// `TaskFuture::wait` is work-conserving — a driver whose starts are
/// still queued runs them on its own executor instead of parking — so an
/// arbitrary number of concurrent sweeps never exhausts the service's
/// thread budget.
pub fn deuteron_vqe_multistart(starts: &[f64], optimizer_name: &'static str) -> Result<VqeResult, QcorError> {
    let starts = starts.to_vec();
    qcor::async_task(move || {
        let futures: Vec<_> = starts
            .iter()
            .map(|&theta0| {
                qcor::async_task(move || {
                    run_vqe(deuteron_ansatz(), deuteron_hamiltonian(), 1, optimizer_name, &[theta0])
                })
            })
            .collect();
        join_best(futures)
    })
    .get()
}

/// Multi-start VQE submitted to an explicit [`ExecutionService`]: heavy
/// sweeps inherit the service's bounded queue and backpressure policy
/// instead of the global defaults. The driver runs as a task of the
/// service and joins its per-start siblings in-task (work-conserving
/// join). A start that the service sheds (`ShedOldest`) surfaces as
/// [`QcorError::TaskShed`] rather than being lost silently.
pub fn deuteron_vqe_multistart_on(
    service: &Arc<ExecutionService>,
    starts: &[f64],
    optimizer_name: &'static str,
) -> Result<VqeResult, QcorError> {
    let starts = starts.to_vec();
    let svc = Arc::clone(service);
    service
        .submit(move || {
            let futures = starts
                .iter()
                .map(|&theta0| {
                    svc.submit(move || {
                        run_vqe(deuteron_ansatz(), deuteron_hamiltonian(), 1, optimizer_name, &[theta0])
                    })
                })
                .collect::<Result<Vec<_>, _>>()?;
            join_best(futures)
        })?
        .wait()?
}

fn join_best(futures: Vec<qcor::TaskFuture<Result<VqeResult, QcorError>>>) -> Result<VqeResult, QcorError> {
    let mut best: Option<VqeResult> = None;
    for f in futures {
        // The error-aware join: queue-level outcomes (shed tasks) surface
        // as errors instead of panics.
        let result = f.wait()??;
        let better = match &best {
            Some(b) => result.energy < b.energy,
            None => true,
        };
        if better {
            best = Some(result);
        }
    }
    best.ok_or_else(|| QcorError::Kernel("multi-start VQE needs at least one start".into()))
}

/// Reference ground-state energy of the Deuteron Hamiltonian on this
/// ansatz (for tests and EXPERIMENTS.md).
pub const DEUTERON_GROUND_STATE: f64 = -1.748_865;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing_3_program_reaches_ground_state() {
        let r = deuteron_vqe().unwrap();
        assert!((r.energy - DEUTERON_GROUND_STATE).abs() < 1e-3, "{r:?}");
        assert!(r.evaluations > 2);
    }

    #[test]
    fn all_optimizers_reach_ground_state() {
        for name in ["l-bfgs", "nelder-mead", "adam"] {
            let r = run_vqe(deuteron_ansatz(), deuteron_hamiltonian(), 1, name, &[0.1]).unwrap();
            assert!((r.energy - DEUTERON_GROUND_STATE).abs() < 5e-3, "{name}: {r:?}");
        }
    }

    #[test]
    fn multistart_beats_or_matches_single_start() {
        let single = run_vqe(deuteron_ansatz(), deuteron_hamiltonian(), 1, "l-bfgs", &[3.0]).unwrap();
        let multi = deuteron_vqe_multistart(&[-2.0, 0.0, 1.0, 3.0], "l-bfgs").unwrap();
        assert!(multi.energy <= single.energy + 1e-9);
        assert!((multi.energy - DEUTERON_GROUND_STATE).abs() < 1e-3, "{multi:?}");
    }

    #[test]
    fn multistart_on_bounded_service_matches_global_path() {
        use qcor::{BackpressurePolicy, ExecServiceConfig};
        // A 2-thread service with a tiny blocking queue: all four starts
        // flow through without loss (the in-task driver helps drain its
        // own siblings), and the best energy still lands.
        let svc = Arc::new(ExecutionService::new(
            ExecServiceConfig::default().threads(2).capacity(2).policy(BackpressurePolicy::Block),
        ));
        let multi = deuteron_vqe_multistart_on(&svc, &[-2.0, 0.0, 1.0, 3.0], "l-bfgs").unwrap();
        assert!((multi.energy - DEUTERON_GROUND_STATE).abs() < 1e-3, "{multi:?}");
        assert_eq!(svc.stats().shed, 0);
    }

    #[test]
    fn sampled_energy_issues_exactly_one_plan_per_commuting_group() {
        let h = deuteron_hamiltonian();
        let groups = qcor_pauli::grouping::group_qubit_wise(&h).groups.len();
        let mut prep = Circuit::new(2);
        prep.x(0).ry(1, 0.594).cx(1, 0);
        let pool = Arc::new(ThreadPool::new(1));
        // The shot-plan counter is process-global and other tests in this
        // binary issue plans concurrently, so retry until a quiet window
        // gives an exact reading; the lower bound must hold every time.
        let mut deltas = Vec::new();
        for attempt in 0..16u64 {
            let before = qcor_sim::stats::shot_plans_issued();
            let e = sampled_energy(&prep, &h, 8192, 100 + attempt, &pool);
            let delta = qcor_sim::stats::shot_plans_issued() - before;
            assert!((e - (-1.7487)).abs() < 0.2, "E = {e}");
            assert!(delta >= groups as u64, "{delta} plans for {groups} groups");
            if delta == groups as u64 {
                return;
            }
            deltas.push(delta);
        }
        panic!("never observed exactly {groups} plans: {deltas:?}");
    }

    #[test]
    fn sampled_energy_is_deterministic_for_a_fixed_seed() {
        let h = deuteron_hamiltonian();
        let mut prep = Circuit::new(2);
        prep.x(0).ry(1, 0.3).cx(1, 0);
        let a = sampled_energy(&prep, &h, 4096, 42, &Arc::new(ThreadPool::new(1)));
        let b = sampled_energy(&prep, &h, 4096, 42, &Arc::new(ThreadPool::new(4)));
        assert_eq!(a, b, "seeded grouped estimate must be pool-size invariant");
    }

    #[test]
    fn sampled_vqe_lands_near_the_ground_state() {
        std::thread::spawn(|| {
            qcor::initialize(qcor::InitOptions::default().threads(1).shots(8192).seed(11)).unwrap();
            let r =
                run_vqe_sampled(deuteron_ansatz(), deuteron_hamiltonian(), 1, "nelder-mead", &[0.4]).unwrap();
            assert!((r.energy - DEUTERON_GROUND_STATE).abs() < 0.3, "{r:?}");
            assert!(r.evaluations > 2);
            qcor::QPUManager::instance().clear_current();
        })
        .join()
        .unwrap();
    }

    #[test]
    fn unknown_optimizer_errors() {
        assert!(run_vqe(deuteron_ansatz(), deuteron_hamiltonian(), 1, "quantum-annealing", &[0.0]).is_err());
    }

    #[test]
    fn empty_multistart_errors() {
        assert!(deuteron_vqe_multistart(&[], "l-bfgs").is_err());
    }
}
