//! # qcor-algos — quantum-classical algorithms on the qcor runtime
//!
//! The workloads of the paper's motivation and evaluation sections:
//!
//! * [`bell`] — the Bell kernel of Listings 1/4 and its task-parallel
//!   launchers (the Figure 3 workload),
//! * [`shor`] — Shor's algorithm end to end: the classical driver of paper
//!   Algorithm 1, its parallel variant (Algorithm 2), and two period-
//!   finding kernels — a textbook phase-estimation version and the
//!   Beauregard 2n+3-qubit construction the paper's kernel is based on
//!   (the Figures 4/5 workload),
//! * [`vqe`] — the variational eigensolver of Listing 3 with the
//!   asynchronous multi-start driver of §VII,
//! * [`qaoa`] — QAOA MaxCut, the other variational workload QCOR programs
//!   commonly express.

pub mod bell;
pub mod qaoa;
pub mod shor;
pub mod vqe;
