//! QAOA for MaxCut — the other variational quantum-classical workload the
//! paper names (§I) as expressible in QCOR.

use qcor::{Kernel, QcorError};
use qcor_circuit::Circuit;
use qcor_pauli::PauliSum;

/// An undirected weighted graph.
#[derive(Debug, Clone)]
pub struct Graph {
    /// Number of vertices.
    pub n: usize,
    /// `(u, v, weight)` edges.
    pub edges: Vec<(usize, usize, f64)>,
}

impl Graph {
    /// Build a graph, validating vertex indices.
    pub fn new(n: usize, edges: Vec<(usize, usize, f64)>) -> Self {
        for &(u, v, _) in &edges {
            assert!(u < n && v < n && u != v, "bad edge ({u}, {v}) for {n} vertices");
        }
        Graph { n, edges }
    }

    /// The unweighted cycle C_n.
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 3);
        Graph::new(n, (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect())
    }

    /// Cut value of an assignment (`true`/`false` per vertex).
    pub fn cut_value(&self, assignment: &[bool]) -> f64 {
        self.edges.iter().filter(|&&(u, v, _)| assignment[u] != assignment[v]).map(|&(_, _, w)| w).sum()
    }

    /// Brute-force maximum cut: `(value, assignment)`. Exponential — for
    /// verification on small graphs only.
    pub fn brute_force_maxcut(&self) -> (f64, Vec<bool>) {
        assert!(self.n <= 20, "brute force limited to 20 vertices");
        let mut best = (f64::NEG_INFINITY, vec![false; self.n]);
        for mask in 0..(1usize << self.n) {
            let assignment: Vec<bool> = (0..self.n).map(|i| mask >> i & 1 == 1).collect();
            let value = self.cut_value(&assignment);
            if value > best.0 {
                best = (value, assignment);
            }
        }
        best
    }
}

/// The MaxCut cost Hamiltonian Σ_(u,v) w/2 · (Z_u Z_v − 1); its minimum
/// eigenvalue is −maxcut.
pub fn maxcut_hamiltonian(g: &Graph) -> PauliSum {
    let mut h = PauliSum::zero();
    for &(u, v, w) in &g.edges {
        h = h + (PauliSum::z(u) * PauliSum::z(v)) * (w / 2.0) + PauliSum::constant(-w / 2.0);
    }
    h
}

/// Build the depth-`p` QAOA ansatz kernel: H⊗n, then `p` alternations of
/// the cost layer exp(−iγ Σ w/2·Z_uZ_v) (CX–Rz–CX per edge) and the mixer
/// exp(−iβ ΣX) (Rx per vertex). Takes `2p` parameters ordered
/// `[γ_1, β_1, ..., γ_p, β_p]`.
pub fn qaoa_ansatz(g: &Graph, p: usize) -> Kernel {
    assert!(p >= 1, "QAOA needs at least one layer");
    let g = g.clone();
    let n = g.n;
    Kernel::from_fn(format!("qaoa_p{p}"), 2 * p, move |params| {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        for layer in 0..p {
            let (gamma, beta) = (params[2 * layer], params[2 * layer + 1]);
            for &(u, v, w) in &g.edges {
                c.cx(u, v);
                c.rz(v, gamma * w);
                c.cx(u, v);
            }
            for q in 0..n {
                c.rx(q, 2.0 * beta);
            }
        }
        c
    })
}

/// QAOA outcome.
#[derive(Debug, Clone)]
pub struct QaoaResult {
    /// Final variational energy ⟨H_C⟩ (≈ −expected cut).
    pub energy: f64,
    /// Optimal parameters `[γ, β, ...]`.
    pub params: Vec<f64>,
    /// Expected cut value −energy.
    pub expected_cut: f64,
    /// Brute-force optimum for reference.
    pub optimal_cut: f64,
}

/// Optimize depth-`p` QAOA on `g` (exact expectation, Nelder–Mead — robust
/// for the oscillatory QAOA landscape) and report the expected cut.
pub fn solve_maxcut(g: &Graph, p: usize, x0: &[f64]) -> Result<QaoaResult, QcorError> {
    assert_eq!(x0.len(), 2 * p, "need 2p initial parameters");
    let result = crate::vqe::run_vqe(qaoa_ansatz(g, p), maxcut_hamiltonian(g), 2 * p, "nelder-mead", x0)?;
    let (optimal_cut, _) = g.brute_force_maxcut();
    Ok(QaoaResult { energy: result.energy, params: result.params, expected_cut: -result.energy, optimal_cut })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_graph_cut_values() {
        let g = Graph::cycle(4);
        assert_eq!(g.cut_value(&[true, false, true, false]), 4.0);
        assert_eq!(g.cut_value(&[true, true, false, false]), 2.0);
        assert_eq!(g.brute_force_maxcut().0, 4.0);
    }

    #[test]
    fn hamiltonian_minimum_is_negative_maxcut() {
        // C4: H has 4 ZZ terms with coefficient 1/2 and constant −2; the
        // alternating assignment gives ⟨ZZ⟩ = −1 on each edge → −4.
        let g = Graph::cycle(4);
        let h = maxcut_hamiltonian(&g);
        assert_eq!(h.num_qubits(), 4);
        // Evaluate on the computational state |0101⟩ via exact expectation.
        let mut prep = Circuit::new(4);
        prep.x(1).x(3);
        let mut state = qcor_sim::StateVector::new(4);
        let mut rng = {
            use rand::SeedableRng;
            rand::rngs::StdRng::seed_from_u64(0)
        };
        qcor_sim::run_once(&mut state, &prep, &mut rng);
        let e = qcor_pauli::expectation::exact(&state, &h);
        assert!((e + 4.0).abs() < 1e-12, "E = {e}");
    }

    #[test]
    fn qaoa_p1_on_c4_approximates_maxcut() {
        let g = Graph::cycle(4);
        // Known good p=1 region: γ ≈ π/4, β ≈ π/8.
        let r = solve_maxcut(&g, 1, &[0.7, 0.35]).unwrap();
        assert_eq!(r.optimal_cut, 4.0);
        assert!(r.expected_cut > 2.9, "p=1 should reach ≥ ~3 on C4, got {}", r.expected_cut);
    }

    #[test]
    fn qaoa_p2_improves_over_p1() {
        let g = Graph::cycle(4);
        let r1 = solve_maxcut(&g, 1, &[0.7, 0.35]).unwrap();
        let r2 = solve_maxcut(&g, 2, &[0.7, 0.35, 0.4, 0.2]).unwrap();
        assert!(
            r2.expected_cut >= r1.expected_cut - 0.05,
            "p=2 ({}) should not regress from p=1 ({})",
            r2.expected_cut,
            r1.expected_cut
        );
    }

    #[test]
    fn triangle_with_weights() {
        let g = Graph::new(3, vec![(0, 1, 2.0), (1, 2, 1.0), (0, 2, 1.0)]);
        let (best, _) = g.brute_force_maxcut();
        assert_eq!(best, 3.0); // cut {0} vs {1,2}: edges (0,1) + (0,2) = 3
    }

    #[test]
    #[should_panic(expected = "bad edge")]
    fn bad_edges_panic() {
        Graph::new(2, vec![(0, 5, 1.0)]);
    }
}
