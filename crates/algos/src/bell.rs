//! The Bell kernel workload (paper Listings 1 and 4).

use qcor::{initialize, qalloc, InitOptions, Kernel, QReg, QcorError, TaskFuture};

/// The exact kernel source of paper Listing 1 / Listing 4.
pub const BELL_XASM: &str = r#"
__qpu__ void bell(qreg q) {
    using qcor::xasm;
    H(q[0]);
    CX(q[0], q[1]);
    for (int i = 0; i < q.size(); i++) {
        Measure(q[i]);
    }
}
"#;

/// Compile the Bell kernel.
pub fn bell_kernel() -> Kernel {
    Kernel::from_xasm(BELL_XASM, 2).expect("static Bell kernel source is valid")
}

/// The `foo()` of paper Listing 4: allocate two qubits, run the Bell
/// kernel on the calling thread's accelerator, return the register.
pub fn foo() -> Result<QReg, QcorError> {
    let q = qalloc(2);
    bell_kernel().invoke(&q, &[])?;
    Ok(q)
}

/// Launch `tasks` Bell kernels in parallel (Listing 4's two `std::thread`s,
/// generalized), each on its own thread with its own accelerator instance
/// configured with `threads_per_task` simulator threads and `shots` shots.
///
/// The calling thread does not need to be initialized; each task
/// initializes itself, which is exactly what the `qcor::thread` wrapper
/// automates.
pub fn run_bells_parallel(
    tasks: usize,
    threads_per_task: usize,
    shots: usize,
    seed: Option<u64>,
) -> Result<Vec<QReg>, QcorError> {
    let futures: Vec<TaskFuture<Result<QReg, QcorError>>> = (0..tasks)
        .map(|t| {
            qcor::spawn(move || {
                let opts = InitOptions::default().threads(threads_per_task).shots(shots);
                let opts = match seed {
                    Some(s) => opts.seed(s.wrapping_add(t as u64)),
                    None => opts,
                };
                initialize(opts)?;
                foo()
            })
        })
        .collect();
    futures.into_iter().map(TaskFuture::get).collect()
}

/// Run `tasks` Bell kernels one after the other (the paper's conventional
/// "one-by-one" baseline), each with `threads_per_kernel` simulator
/// threads.
pub fn run_bells_one_by_one(
    tasks: usize,
    threads_per_kernel: usize,
    shots: usize,
    seed: Option<u64>,
) -> Result<Vec<QReg>, QcorError> {
    let mut out = Vec::with_capacity(tasks);
    for t in 0..tasks {
        let opts = InitOptions::default().threads(threads_per_kernel).shots(shots);
        let opts = match seed {
            Some(s) => opts.seed(s.wrapping_add(t as u64)),
            None => opts,
        };
        // Fresh instance per kernel, exactly like the fixed runtime does.
        initialize(opts)?;
        out.push(foo()?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bell_counts(q: &QReg, shots: usize) {
        assert_eq!(q.total_shots(), shots);
        let counts = q.measurement_counts();
        assert!(counts.keys().all(|k| k == "00" || k == "11"), "{counts:?}");
        let p00 = q.probability("00");
        assert!((p00 - 0.5).abs() < 0.2, "p(00) = {p00}");
    }

    #[test]
    fn one_by_one_produces_clean_bell_counts() {
        std::thread::spawn(|| {
            let regs = run_bells_one_by_one(2, 1, 256, Some(10)).unwrap();
            for q in &regs {
                assert_bell_counts(q, 256);
            }
        })
        .join()
        .unwrap();
    }

    #[test]
    fn parallel_produces_clean_bell_counts() {
        let regs = run_bells_parallel(2, 1, 256, Some(20)).unwrap();
        assert_eq!(regs.len(), 2);
        for q in &regs {
            assert_bell_counts(q, 256);
        }
    }

    #[test]
    fn parallel_and_one_by_one_agree_statistically() {
        std::thread::spawn(|| {
            let par = run_bells_parallel(2, 1, 2048, Some(30)).unwrap();
            let seq = run_bells_one_by_one(2, 1, 2048, Some(40)).unwrap();
            for (a, b) in par.iter().zip(&seq) {
                assert!((a.probability("00") - b.probability("00")).abs() < 0.1);
            }
        })
        .join()
        .unwrap();
    }

    #[test]
    fn many_parallel_tasks() {
        let regs = run_bells_parallel(8, 1, 64, Some(50)).unwrap();
        assert_eq!(regs.len(), 8);
        for q in &regs {
            assert_eq!(q.total_shots(), 64);
        }
    }
}
