//! Textbook order-finding kernel: quantum phase estimation over the
//! modular-multiplication unitary, with the modular exponentiation applied
//! as a controlled classical permutation of the work register.
//!
//! Layout: work register `x` = qubits `[0, n)` (initialized to 1),
//! counting register = qubits `[n, n + t)`.

use qcor_circuit::arith::{bit_width, mod_pow};
use qcor_circuit::library;
use qcor_circuit::Circuit;
use qcor_pool::ThreadPool;
use qcor_sim::{run_once, StateVector};
use rand::Rng;
use std::sync::Arc;

/// One phase-estimation sample: returns the measured counting value `y`
/// (t bits). The state is simulated on `pool`.
pub fn sample_phase(a: u64, n_mod: u64, t_bits: u32, pool: Arc<ThreadPool>, rng: &mut impl Rng) -> u64 {
    assert!(n_mod >= 3, "modulus must be at least 3");
    assert_eq!(qcor_circuit::arith::gcd(a % n_mod, n_mod), 1, "base must be coprime with N");
    let n = bit_width(n_mod);
    let t = t_bits as usize;
    let total = n + t;
    let mut state = StateVector::with_pool(total, pool);

    // |x⟩ = |1⟩, counting register in uniform superposition.
    let mut prep = Circuit::new(total);
    prep.x(0);
    for j in 0..t {
        prep.h(n + j);
    }
    run_once(&mut state, &prep, rng);

    // Controlled-U_{a^{2^j}} per counting qubit, as a permutation of the
    // work register: values ≥ N are untouched (identity), matching the
    // unitary's action on the relevant subspace.
    let work: Vec<usize> = (0..n).collect();
    let space = 1usize << n;
    for j in 0..t {
        let a_pow = mod_pow(a, 1u64 << j, n_mod);
        let perm: Vec<usize> = (0..space)
            .map(|x| if (x as u64) < n_mod { (a_pow * x as u64 % n_mod) as usize } else { x })
            .collect();
        state.apply_controlled_permutation(1 << (n + j), &work, &perm);
    }

    // Inverse QFT on the counting register, then measure it.
    let counting: Vec<usize> = (n..n + t).collect();
    let mut iqft = Circuit::new(total);
    library::append_iqft(&mut iqft, &counting);
    run_once(&mut state, &iqft, rng);

    let mut y = 0u64;
    for (pos, &q) in counting.iter().enumerate() {
        if state.measure(q, rng) == 1 {
            y |= 1 << pos;
        }
    }
    y
}

/// The period-finding kernel (`SHOR_KERNEL` of paper Algorithm 1): draws
/// `shots` phase samples. The default counting width is `2n` bits.
pub fn shor_kernel(a: u64, n_mod: u64, shots: usize, pool: Arc<ThreadPool>, rng: &mut impl Rng) -> Vec<u64> {
    let t_bits = 2 * bit_width(n_mod) as u32;
    (0..shots).map(|_| sample_phase(a, n_mod, t_bits, Arc::clone(&pool), rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shor::fractions::convergent_denominators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn seq_pool() -> Arc<ThreadPool> {
        Arc::new(ThreadPool::new(1))
    }

    #[test]
    fn phase_peaks_recover_order_of_7_mod_15() {
        // ord_15(7) = 4.
        let mut rng = StdRng::seed_from_u64(1);
        let samples = shor_kernel(7, 15, 12, seq_pool(), &mut rng);
        let mut found = false;
        for y in samples {
            for r in convergent_denominators(y, 8, 15) {
                if mod_pow(7, r, 15) == 1 {
                    assert_eq!(r % 4, 0, "any valid exponent is a multiple of the order");
                    found = true;
                }
            }
        }
        assert!(found, "at least one sample must recover the order");
    }

    #[test]
    fn order_of_2_mod_7_is_3() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples = shor_kernel(2, 7, 12, seq_pool(), &mut rng);
        let mut found = false;
        for y in samples {
            for r in convergent_denominators(y, 6, 7) {
                if r > 0 && mod_pow(2, r, 7) == 1 && r % 3 == 0 {
                    found = true;
                }
            }
        }
        assert!(found, "order 3 must be recoverable");
    }

    #[test]
    fn measurement_distribution_peaks_at_multiples() {
        // For a=7, N=15 (r=4, t=8): ideal peaks at y ∈ {0, 64, 128, 192}.
        let mut rng = StdRng::seed_from_u64(3);
        let mut near_peak = 0usize;
        let shots = 40;
        for _ in 0..shots {
            let y = sample_phase(7, 15, 8, seq_pool(), &mut rng);
            let nearest = [0u64, 64, 128, 192, 256].iter().map(|p| p.abs_diff(y)).min().unwrap();
            if nearest <= 2 {
                near_peak += 1;
            }
        }
        // r divides 2^t exactly here, so the distribution is ideal:
        // every sample lands exactly on a peak.
        assert!(near_peak >= shots * 9 / 10, "{near_peak}/{shots} near peaks");
    }

    #[test]
    fn parallel_pool_gives_valid_samples() {
        let pool = Arc::new(ThreadPool::new(3));
        let mut rng = StdRng::seed_from_u64(4);
        let y = sample_phase(7, 15, 8, pool, &mut rng);
        assert!(y < 256);
    }

    #[test]
    #[should_panic(expected = "coprime")]
    fn non_coprime_base_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        sample_phase(5, 15, 4, seq_pool(), &mut rng);
    }
}
