//! Beauregard order-finding kernel (paper reference \[20\]): 2n+3 qubits,
//! gate-level modular exponentiation, and the semiclassical one-qubit
//! inverse QFT (iterative phase estimation with measurement feedback).
//!
//! Per sample, the phase φ = s/r is read out bit by bit: iteration `i`
//! (from the least significant fraction bit upward) applies the controlled
//! U_{a^{2^{i−1}}} built from Draper adders, rotates the control by the
//! correction determined by previously measured bits, and measures it.
//! This needs mid-circuit measurement and classical feedback, which this
//! reproduction drives directly against the simulator state — the same
//! interactivity a hardware runtime needs from its control system.

use qcor_circuit::arith::{bit_width, ShorLayout};
use qcor_circuit::Circuit;
use qcor_pool::ThreadPool;
use qcor_sim::{run_once, StateVector};
use rand::Rng;
use std::f64::consts::TAU;
use std::sync::Arc;

/// Cached per-(a, N) modular-exponentiation step circuits.
pub struct ModExpEngine {
    layout: ShorLayout,
    n_mod: u64,
    /// `steps[k]` implements controlled-U_{a^{2^k}}.
    steps: Vec<Circuit>,
    /// Number of phase bits read out (2n).
    pub t_bits: usize,
}

impl ModExpEngine {
    /// Build the step circuits for base `a` modulo `n_mod`.
    pub fn new(a: u64, n_mod: u64) -> Self {
        assert!(n_mod >= 3, "modulus must be at least 3");
        assert_eq!(qcor_circuit::arith::gcd(a % n_mod, n_mod), 1, "base must be coprime with N");
        let layout = ShorLayout::for_modulus(n_mod);
        let t_bits = 2 * bit_width(n_mod);
        let steps = (0..t_bits as u32).map(|k| layout.controlled_modexp_step(a, k, n_mod)).collect();
        ModExpEngine { layout, n_mod, steps, t_bits }
    }

    /// Total qubits (2n + 3).
    pub fn num_qubits(&self) -> usize {
        self.layout.num_qubits()
    }

    /// Total gate count across all cached steps.
    pub fn gate_count(&self) -> usize {
        self.steps.iter().map(Circuit::len).sum()
    }

    /// Draw one phase sample `y` (t bits) via semiclassical QPE.
    pub fn sample_phase(&self, pool: Arc<ThreadPool>, rng: &mut impl Rng) -> u64 {
        let ctrl = self.layout.ctrl;
        let t = self.t_bits;
        let mut state = StateVector::with_pool(self.num_qubits(), pool);

        // x ← 1.
        let mut prep = Circuit::new(self.num_qubits());
        prep.x(self.layout.x[0]);
        run_once(&mut state, &prep, rng);

        // bits[i] = φ_i (1-indexed; φ_1 is the most significant fraction bit).
        let mut bits = vec![0u8; t + 2];
        for i in (1..=t).rev() {
            let mut round = Circuit::new(self.num_qubits());
            round.h(ctrl);
            round.extend(&self.steps[i - 1]); // controlled U^{2^{i-1}}

            // Semiclassical correction from the already-measured lower bits.
            let mut angle = 0.0;
            for (l, &bit) in bits.iter().enumerate().take(t + 1).skip(i + 1) {
                if bit == 1 {
                    angle -= TAU / (1u64 << (l - i + 1)) as f64;
                }
            }
            if angle != 0.0 {
                round.phase(ctrl, angle);
            }
            round.h(ctrl);
            run_once(&mut state, &round, rng);
            let m = state.measure(ctrl, rng);
            bits[i] = m;
            if m == 1 {
                // Return the control to |0⟩ for the next round.
                let mut fix = Circuit::new(self.num_qubits());
                fix.x(ctrl);
                run_once(&mut state, &fix, rng);
            }
        }
        let mut y = 0u64;
        for (i, &bit) in bits.iter().enumerate().take(t + 1).skip(1) {
            if bit == 1 {
                y |= 1 << (t - i);
            }
        }
        y
    }

    /// The modulus this engine was built for.
    pub fn modulus(&self) -> u64 {
        self.n_mod
    }
}

/// The Beauregard period-finding kernel: `shots` phase samples for base
/// `a` mod `n_mod`, simulated on `pool`.
pub fn shor_kernel(a: u64, n_mod: u64, shots: usize, pool: Arc<ThreadPool>, rng: &mut impl Rng) -> Vec<u64> {
    let engine = ModExpEngine::new(a, n_mod);
    (0..shots).map(|_| engine.sample_phase(Arc::clone(&pool), rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shor::fractions::convergent_denominators;
    use qcor_circuit::arith::mod_pow;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn seq_pool() -> Arc<ThreadPool> {
        Arc::new(ThreadPool::new(1))
    }

    /// Gate-level check of the controlled modular multiplier: with the
    /// control set, |x⟩ must map to |a·x mod N⟩ with ancillas restored.
    #[test]
    fn controlled_ua_multiplies_classically() {
        let n_mod = 15u64;
        let a = 7u64;
        let layout = ShorLayout::for_modulus(n_mod);
        let step = layout.controlled_modexp_step(a, 0, n_mod); // U_a
        let mut rng = StdRng::seed_from_u64(0);
        for x0 in [1u64, 2, 4, 7, 11] {
            let mut state = StateVector::new(layout.num_qubits());
            let mut prep = Circuit::new(layout.num_qubits());
            prep.x(layout.ctrl);
            for (pos, &q) in layout.x.iter().enumerate() {
                if x0 >> pos & 1 == 1 {
                    prep.x(q);
                }
            }
            run_once(&mut state, &prep, &mut rng);
            run_once(&mut state, &step, &mut rng);
            // Expected basis state: ctrl=1, x = a·x0 mod N, b = 0, anc = 0.
            let expect_x = a * x0 % n_mod;
            let mut expect_idx = 1usize << layout.ctrl;
            for (pos, &q) in layout.x.iter().enumerate() {
                if expect_x >> pos & 1 == 1 {
                    expect_idx |= 1 << q;
                }
            }
            let p = state.amp(expect_idx).norm_sqr();
            assert!(
                p > 0.999,
                "x0={x0}: expected |{expect_x}⟩ with prob 1, got {p} (state norm {})",
                state.norm_sqr()
            );
        }
    }

    #[test]
    fn control_off_is_identity() {
        let n_mod = 15u64;
        let layout = ShorLayout::for_modulus(n_mod);
        let step = layout.controlled_modexp_step(7, 0, n_mod);
        let mut rng = StdRng::seed_from_u64(0);
        let mut state = StateVector::new(layout.num_qubits());
        let mut prep = Circuit::new(layout.num_qubits());
        prep.x(layout.x[0]).x(layout.x[1]); // x = 3, ctrl = 0
        run_once(&mut state, &prep, &mut rng);
        run_once(&mut state, &step, &mut rng);
        let expect_idx = (1 << layout.x[0]) | (1 << layout.x[1]);
        assert!(state.amp(expect_idx).norm_sqr() > 0.999);
    }

    #[test]
    fn recovers_order_of_7_mod_15() {
        let mut rng = StdRng::seed_from_u64(11);
        let samples = shor_kernel(7, 15, 8, seq_pool(), &mut rng);
        let mut found = false;
        for y in samples {
            for r in convergent_denominators(y, 8, 15) {
                if mod_pow(7, r, 15) == 1 {
                    found = true;
                }
            }
        }
        assert!(found, "Beauregard kernel must recover a valid order");
    }

    #[test]
    fn engine_reports_sane_metadata() {
        let engine = ModExpEngine::new(2, 7);
        assert_eq!(engine.num_qubits(), 2 * 3 + 3);
        assert_eq!(engine.t_bits, 6);
        assert_eq!(engine.modulus(), 7);
        assert!(engine.gate_count() > 500, "gate-level modexp is large");
    }
}
