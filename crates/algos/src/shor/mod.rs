//! Shor's algorithm end to end (paper Algorithms 1 and 2).
//!
//! The classical driver repeatedly picks a random base `a`, checks
//! `gcd(a, N)`, invokes the period-finding kernel, estimates the order `r`
//! from the measured phases by continued fractions, and derives factors
//! from `gcd(a^{r/2} ± 1, N)`. The parallel variant launches the per-base
//! attempts as asynchronous tasks (Algorithm 2's `async SHOR(N, a)`).

pub mod beauregard;
pub mod fractions;
pub mod textbook;

use fractions::{convergent_denominators, lcm};
use qcor_circuit::arith::{bit_width, gcd, mod_pow};
use qcor_pool::ThreadPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Which period-finding kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Phase estimation with the modular exponentiation applied as a
    /// classical permutation (n + 2n qubits, fast).
    Textbook,
    /// Gate-level Beauregard construction (2n+3 qubits, the paper's
    /// kernel basis).
    Beauregard,
}

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct ShorConfig {
    /// Shots per kernel invocation (the paper uses 10).
    pub shots: usize,
    /// Maximum random bases to try.
    pub max_attempts: usize,
    /// Kernel choice.
    pub kernel: KernelKind,
    /// Simulator threads for the kernel's state vector.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ShorConfig {
    fn default() -> Self {
        ShorConfig { shots: 10, max_attempts: 16, kernel: KernelKind::Textbook, threads: 1, seed: 0 }
    }
}

/// Result of a successful factorization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Factors {
    /// The two non-trivial factors, ascending.
    pub p: u64,
    /// Second factor.
    pub q: u64,
    /// The base that produced them (0 when found classically).
    pub base: u64,
    /// The order that produced them (0 when found classically).
    pub order: u64,
}

fn ordered(a: u64, b: u64, base: u64, order: u64) -> Factors {
    Factors { p: a.min(b), q: a.max(b), base, order }
}

/// `SHOR(N, a)` (paper Algorithm 1 lines 10–17): run the kernel, estimate
/// the order, and derive factors. Returns `None` when this base fails.
pub fn shor_attempt(
    n: u64,
    a: u64,
    config: &ShorConfig,
    pool: Arc<ThreadPool>,
    rng: &mut impl Rng,
) -> Option<Factors> {
    let samples = match config.kernel {
        KernelKind::Textbook => textbook::shor_kernel(a, n, config.shots, pool, rng),
        KernelKind::Beauregard => beauregard::shor_kernel(a, n, config.shots, pool, rng),
    };
    let t_bits = 2 * bit_width(n) as u32;
    let order = estimate_order(a, n, &samples, t_bits)?;
    factors_from_order(n, a, order)
}

/// Estimate the multiplicative order of `a` mod `n` from phase samples:
/// continued-fraction denominators of each sample, plus least common
/// multiples of pairs (peaks often reveal only divisors of `r`).
pub fn estimate_order(a: u64, n: u64, samples: &[u64], t_bits: u32) -> Option<u64> {
    let mut candidates: Vec<u64> = Vec::new();
    for &y in samples {
        candidates.extend(convergent_denominators(y, t_bits, n));
    }
    candidates.sort_unstable();
    candidates.dedup();
    // Pairwise LCMs recover r when two samples exposed different divisors.
    let pairwise: Vec<u64> = candidates
        .iter()
        .flat_map(|&x| candidates.iter().map(move |&y| lcm(x, y)))
        .filter(|&v| v > 1 && v <= n)
        .collect();
    candidates.extend(pairwise);
    candidates.sort_unstable();
    candidates.dedup();
    candidates.into_iter().find(|&r| r > 0 && mod_pow(a, r, n) == 1)
}

/// Lines 14–17 of Algorithm 1: derive factors from an order.
pub fn factors_from_order(n: u64, a: u64, r: u64) -> Option<Factors> {
    if r % 2 == 1 {
        return None;
    }
    let half = mod_pow(a, r / 2, n);
    if half == n - 1 {
        // a^{r/2} ≡ −1 (mod N): trivial.
        return None;
    }
    let g1 = gcd(half + 1, n);
    let g2 = gcd(half + n - 1, n); // half − 1 without underflow
    for g in [g1, g2] {
        if g > 1 && g < n {
            return Some(ordered(g, n / g, a, r));
        }
    }
    None
}

/// `MAIN(N)` (paper Algorithm 1): full sequential factorization.
pub fn factorize(n: u64, config: &ShorConfig) -> Option<Factors> {
    if n < 4 {
        return None;
    }
    if n.is_multiple_of(2) {
        return Some(ordered(2, n / 2, 0, 0));
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let pool = Arc::new(ThreadPool::new(config.threads));
    for _ in 0..config.max_attempts {
        let a = rng.gen_range(2..n);
        let k = gcd(a, n);
        if k != 1 {
            // Lucky classical hit (Algorithm 1 line 8).
            return Some(ordered(k, n / k, a, 0));
        }
        if let Some(f) = shor_attempt(n, a, config, Arc::clone(&pool), &mut rng) {
            return Some(f);
        }
    }
    None
}

/// Parallel `MAIN(N)` (paper Algorithm 2): launch `tasks` asynchronous
/// `SHOR(N, aₚ)` attempts, each with its own base, simulator pool and RNG
/// stream, and take the first success.
pub fn factorize_parallel(n: u64, config: &ShorConfig, tasks: usize) -> Option<Factors> {
    if n < 4 {
        return None;
    }
    if n.is_multiple_of(2) {
        return Some(ordered(2, n / 2, 0, 0));
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Draw distinct coprime bases up front; duplicates would waste tasks.
    let mut bases = Vec::new();
    let mut guard = 0;
    while bases.len() < tasks && guard < 64 * tasks {
        guard += 1;
        let a = rng.gen_range(2..n);
        if gcd(a, n) != 1 {
            return Some(ordered(gcd(a, n), n / gcd(a, n), a, 0));
        }
        if !bases.contains(&a) {
            bases.push(a);
        }
    }
    // The period-finding fan-out runs as a driver task that spawns one
    // sibling per base and joins them **in-task** — legal because
    // `TaskFuture::wait` is work-conserving (a driver whose attempts are
    // still queued executes them on its own permit instead of parking),
    // so concurrent factorizations cannot exhaust the kernel queue's
    // thread budget.
    let config = config.clone();
    qcor::async_task(move || {
        let futures: Vec<_> = bases
            .into_iter()
            .enumerate()
            .map(|(i, a)| {
                let config = config.clone();
                qcor::async_task(move || {
                    let pool = Arc::new(ThreadPool::new(config.threads));
                    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(1 + i as u64));
                    shor_attempt(n, a, &config, pool, &mut rng)
                })
            })
            .collect();
        let mut result = None;
        for f in futures {
            // Joining everything keeps this deterministic; a production
            // driver could cancel the stragglers instead. The error-aware
            // join treats a task shed by queue backpressure as "no factors
            // from this base" rather than a panic — the remaining attempts
            // still count.
            if let Ok(Some(found)) = f.wait() {
                result.get_or_insert(found);
            }
        }
        result
    })
    .get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_from_order_happy_path() {
        // ord_15(7) = 4: 7² = 49 ≡ 4; gcd(3,15)=3, gcd(5,15)=5.
        let f = factors_from_order(15, 7, 4).unwrap();
        assert_eq!((f.p, f.q), (3, 5));
    }

    #[test]
    fn odd_order_is_rejected() {
        assert!(factors_from_order(15, 7, 3).is_none());
    }

    #[test]
    fn trivial_square_root_is_rejected() {
        // ord_15(14) = 2 and 14 ≡ −1 (mod 15): must be rejected.
        assert!(factors_from_order(15, 14, 2).is_none());
    }

    #[test]
    fn estimate_order_from_ideal_samples() {
        // t = 8, r = 4: peaks 64 (s=1) and 192 (s=3) expose r directly,
        // 128 (s=2) exposes only r=2; the LCM path still recovers 4.
        assert_eq!(estimate_order(7, 15, &[64], 8), Some(4));
        assert_eq!(estimate_order(7, 15, &[128, 192], 8), Some(4));
        assert_eq!(estimate_order(7, 15, &[0], 8), None);
    }

    #[test]
    fn factorize_15_textbook() {
        let f = factorize(15, &ShorConfig { seed: 7, ..Default::default() }).unwrap();
        assert_eq!((f.p, f.q), (3, 5));
    }

    #[test]
    fn factorize_21_textbook() {
        let f = factorize(21, &ShorConfig { seed: 3, shots: 16, ..Default::default() }).unwrap();
        assert_eq!((f.p, f.q), (3, 7));
    }

    #[test]
    fn factorize_15_beauregard() {
        let config = ShorConfig { kernel: KernelKind::Beauregard, shots: 6, seed: 5, ..Default::default() };
        let f = factorize(15, &config).unwrap();
        assert_eq!((f.p, f.q), (3, 5));
    }

    #[test]
    fn even_numbers_shortcut() {
        let f = factorize(22, &ShorConfig::default()).unwrap();
        assert_eq!((f.p, f.q), (2, 11));
    }

    #[test]
    fn tiny_inputs_rejected() {
        assert!(factorize(3, &ShorConfig::default()).is_none());
    }

    #[test]
    fn parallel_factorize_15() {
        let f = factorize_parallel(15, &ShorConfig { seed: 9, ..Default::default() }, 3).unwrap();
        assert!(f.p * f.q == 15 && f.p > 1 && f.q > 1, "{f:?}");
    }
}
