//! Continued-fraction post-processing for order finding.
//!
//! A phase-estimation measurement `y` over `t` counting bits approximates
//! `y / 2^t ≈ s / r` with the order `r` as denominator; the convergents of
//! the continued-fraction expansion of `y / 2^t` recover candidate `r`s
//! (paper Algorithm 1, line 13: "estimate r from the measurements").

/// The convergent denominators of `y / 2^t`, ascending, bounded by
/// `max_denominator`. Zero phases yield an empty list.
pub fn convergent_denominators(y: u64, t_bits: u32, max_denominator: u64) -> Vec<u64> {
    if y == 0 {
        return Vec::new();
    }
    let mut num = y as u128;
    let mut den = 1u128 << t_bits;
    // Continued-fraction coefficients of num/den, building convergents
    // h_k / k_k with the standard recurrence.
    // Seed with the standard h_{-2} = 0, h_{-1} = 1 / k_{-2} = 1, k_{-1} = 0.
    let (mut h_prev, mut h) = (0u128, 1u128);
    let (mut k_prev, mut k) = (1u128, 0u128);
    let mut out = Vec::new();
    while den != 0 {
        let a = num / den;
        (num, den) = (den, num % den);
        let h_next = a * h + h_prev;
        let k_next = a * k + k_prev;
        (h_prev, h) = (h, h_next);
        (k_prev, k) = (k, k_next);
        if k > 1 {
            if k as u64 as u128 != k || k as u64 > max_denominator {
                break;
            }
            out.push(k as u64);
        }
        let _ = h; // numerators are not needed for order finding
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Least common multiple (saturating at `u64::MAX`).
pub fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return 0;
    }
    let g = qcor_circuit::arith::gcd(a, b);
    (a / g).saturating_mul(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_measurement_gives_no_candidates() {
        assert!(convergent_denominators(0, 8, 100).is_empty());
    }

    #[test]
    fn exact_phase_recovers_denominator() {
        // y/2^t = 3/8 exactly: denominators of convergents include 8.
        let c = convergent_denominators(3 * (1 << 5), 8, 64);
        assert!(c.contains(&8), "{c:?}");
    }

    #[test]
    fn approximate_phase_recovers_order() {
        // Order r = 4 for a=7, N=15 with t = 8 counting bits: the ideal
        // measurement peaks are y ≈ s·2^t/r = 0, 64, 128, 192.
        for y in [64u64, 192] {
            let c = convergent_denominators(y, 8, 15);
            assert!(c.contains(&4), "y={y}: {c:?}");
        }
        // y = 128 gives s/r = 1/2 → denominator 2 (a divisor of r).
        let c = convergent_denominators(128, 8, 15);
        assert!(c.contains(&2), "{c:?}");
    }

    #[test]
    fn noisy_peak_still_recovers() {
        // y = 65 ≈ 64: 65/256 has a convergent with denominator 4.
        let c = convergent_denominators(65, 8, 15);
        assert!(c.contains(&4), "{c:?}");
    }

    #[test]
    fn respects_max_denominator() {
        let c = convergent_denominators(123, 12, 10);
        assert!(c.iter().all(|&d| d <= 10), "{c:?}");
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(1, 9), 9);
        assert_eq!(lcm(0, 5), 0);
        assert_eq!(lcm(7, 7), 7);
    }
}
