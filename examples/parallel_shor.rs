//! Parallel Shor (paper Algorithm 2 / §II): factor N with several
//! asynchronous SHOR(N, a) attempts running concurrently, each with its
//! own simulator instance — the task-level parallelism of Figure 2.
//!
//! ```text
//! cargo run -p qcor --release --example parallel_shor [N]
//! ```

use qcor_algos::shor::{factorize_parallel, shor_attempt, KernelKind, ShorConfig};
use qcor_pool::ThreadPool;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let n: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(15);
    let config = ShorConfig {
        shots: 10, // the paper's per-kernel shot count
        kernel: KernelKind::Textbook,
        threads: 1,
        seed: 2023,
        ..Default::default()
    };

    println!("factoring N = {n} with 3 parallel SHOR tasks (textbook kernel, 10 shots each)...");
    let start = Instant::now();
    match factorize_parallel(n, &config, 3) {
        Some(f) => {
            println!(
                "N = {} = {} x {}   (base a = {}, order r = {})   [{:?}]",
                n,
                f.p,
                f.q,
                f.base,
                f.order,
                start.elapsed()
            );
            assert_eq!(f.p * f.q, n);
        }
        None => println!("no factors found — try a composite N (15, 21, 33, 35)"),
    }

    // Algorithm 1 often wins the classical lottery (gcd(a, N) > 1 returns a
    // factor before any quantum work). Force the quantum path once with a
    // coprime base, through the gate-level Beauregard kernel the paper's
    // evaluation uses: SHOR(N=15, a=7) — order 4 → factors 3 and 5.
    println!("\nexplicit quantum attempt: SHOR(N=15, a=7), Beauregard 2n+3 kernel...");
    let config = ShorConfig { kernel: KernelKind::Beauregard, shots: 8, seed: 11, ..config };
    let pool = Arc::new(ThreadPool::new(config.threads));
    let mut rng = StdRng::seed_from_u64(config.seed);
    let start = Instant::now();
    match shor_attempt(15, 7, &config, pool, &mut rng) {
        Some(f) => {
            println!(
                "N = 15 = {} x {}   (order of a = 7 is r = {})   [{:?}]",
                f.p,
                f.q,
                f.order,
                start.elapsed()
            );
            assert_eq!((f.p, f.q), (3, 5));
            assert_eq!(f.order % 4, 0);
        }
        None => println!("quantum attempt did not converge (rerun with another seed)"),
    }
}
