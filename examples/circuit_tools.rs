//! Tour of the kernel toolchain: parse an XASM kernel, draw it, run the
//! JIT optimizer passes, export OpenQASM — the compiler-side plumbing the
//! runtime dispatches through.
//!
//! ```text
//! cargo run -p qcor --example circuit_tools
//! ```

use qcor_circuit::{draw, passes, qasm, xasm};

fn main() {
    let src = r#"
        __qpu__ void demo(qreg q) {
            using qcor::xasm;
            H(q[0]);
            CX(q[0], q[1]);
            T(q[1]);
            Tdg(q[1]);              // cancels with the T
            Rz(q[2], 0.4);
            Rz(q[2], 0.35);         // merges
            for (int i = 0; i < q.size() - 1; i++) {
                CX(q[i], q[i + 1]);
                CX(q[i], q[i + 1]); // self-cancelling pair
            }
            Measure(q[0]);
            Measure(q[1]);
            Measure(q[2]);
        }
    "#;

    let kernel = xasm::parse_kernel(src, 3).expect("valid XASM");
    let mut circuit = kernel.bind(&[]).expect("no parameters to bind");

    println!("parsed `{}` ({} instructions, depth {}):\n", kernel.name, circuit.len(), circuit.depth());
    println!("{}", draw::draw(&circuit));

    let removed = passes::optimize(&mut circuit);
    println!(
        "after optimizer passes (removed {removed} instructions, {} remain, depth {}):\n",
        circuit.len(),
        circuit.depth()
    );
    println!("{}", draw::draw(&circuit));

    println!("OpenQASM 2 export:\n");
    println!("{}", qasm::to_qasm(&circuit));

    // Round-trip sanity: the exported text parses back to the same size.
    let back = qasm::parse(&qasm::to_qasm(&circuit)).expect("own output parses");
    assert_eq!(back.len(), circuit.len());
    println!("round-trip OK ({} instructions)", back.len());
}
