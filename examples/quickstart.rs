//! Quickstart: the paper's Listing 1 — allocate a register, run the Bell
//! kernel, print the buffer (reproducing the Listing 2 output shape).
//!
//! ```text
//! cargo run -p qcor --example quickstart
//! ```

use qcor::{initialize, qalloc, InitOptions, Kernel};

fn main() {
    // Select the qpp (state-vector simulator) backend for this thread.
    initialize(InitOptions::default().shots(1024)).expect("qpp backend is built in");

    // Create a two-qubit register (qalloc(2) of Listing 1).
    let q = qalloc(2);

    // The Bell kernel, written in XASM exactly as in the paper.
    let bell = Kernel::from_xasm(
        r#"
        __qpu__ void bell(qreg q) {
            using qcor::xasm;
            H(q[0]);
            CX(q[0], q[1]);
            for (int i = 0; i < q.size(); i++) {
                Measure(q[i]);
            }
        }
        "#,
        q.size(),
    )
    .expect("valid XASM");

    // Run the quantum kernel.
    bell.invoke(&q, &[]).expect("execution succeeds");

    // Dump the results — the Listing 2 JSON document, e.g.
    //   "Measurements": { "00": 513, "11": 511 }
    q.print();

    let p00 = q.probability("00");
    let p11 = q.probability("11");
    println!("\np(00) = {p00:.3}, p(11) = {p11:.3} over {} shots", q.total_shots());
    assert!((p00 + p11 - 1.0).abs() < 1e-9, "Bell outcomes are perfectly correlated");
}
