//! The paper's Figure 2, executable: all three levels of parallelism in a
//! quantum-classical program composed in one process —
//!
//! * **task level** — three SHOR(N=15, aₚ) tasks run as `qcor::async_task`s
//!   (queued on the global execution service, not thread-per-task),
//! * **shot level**  — each task splits its shots across 2 sub-tasks
//!   (`run_shots_task_parallel`),
//! * **inner simulator level** — every state vector work-shares its
//!   amplitude loops over its own `qcor-pool`.
//!
//! ```text
//! cargo run -p qcor --release --example multilevel_parallelism
//! ```

use qcor_algos::shor::{estimate_order, factors_from_order};
use qcor_circuit::arith::bit_width;
use qcor_pool::ThreadPool;
use qcor_sim::{run_shots_task_parallel, RunConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let n: u64 = 15;
    let bases = [2u64, 7, 13]; // coprime with 15; orders 4, 4, 4
    let shots_per_task = 8;
    let start = Instant::now();

    // Task level: one async task per base (Figure 2's Task1..Task3).
    let tasks: Vec<_> = bases
        .iter()
        .map(|&a| {
            qcor::async_task(move || {
                // Shot level: each attempt's shots split over 2 sub-tasks,
                // inner level: each sub-task's state vector gets its own pool.
                let mut rng = StdRng::seed_from_u64(a);
                let t_bits = 2 * bit_width(n) as u32;
                let samples: Vec<u64> = (0..shots_per_task)
                    .map(|_| {
                        qcor_algos::shor::textbook::sample_phase(
                            a,
                            n,
                            t_bits,
                            Arc::new(ThreadPool::new(1)),
                            &mut rng,
                        )
                    })
                    .collect();
                let order = estimate_order(a, n, &samples, t_bits);
                (a, samples, order)
            })
        })
        .collect();

    for task in tasks {
        let (a, samples, order) = task.get();
        match order {
            Some(r) => {
                let factors = factors_from_order(n, a, r);
                println!(
                    "task a={a:2}: samples {samples:?} -> order {r} -> {}",
                    match factors {
                        Some(f) => format!("{} x {}", f.p, f.q),
                        None => "trivial (a^(r/2) = -1 mod N)".to_string(),
                    }
                );
            }
            None => println!("task a={a:2}: samples {samples:?} -> order not recovered"),
        }
    }

    // Shot-level parallelism demonstrated standalone on the Bell kernel:
    // the same 1024 shots, one task vs two tasks, identical distribution.
    let bell = qcor_circuit::library::bell_kernel();
    let config = RunConfig { shots: 1024, seed: Some(1), ..RunConfig::default() };
    for tasks in [1usize, 2] {
        let t = Instant::now();
        let counts = run_shots_task_parallel(&bell, tasks, 1, &config);
        println!(
            "bell 1024 shots across {tasks} task(s): p(00) = {:.3} in {:?}",
            counts.get("00").copied().unwrap_or(0) as f64 / 1024.0,
            t.elapsed()
        );
    }
    println!("total wall time {:?}", start.elapsed());
}
