//! Asynchronous quantum JIT compilation (paper §VII, after Shi et al.):
//! circuit optimization is expensive, so offload it with `qcor::async_task`
//! (one work item on the bounded kernel queue, executed by the shared
//! service pool) and overlap other quantum/classical work; launch the
//! compiled kernel only when it is ready — `future.get()` as in Listing 5.
//!
//! ```text
//! cargo run -p qcor --release --example async_jit
//! ```

use qcor::{initialize, qalloc, InitOptions, Kernel};
use qcor_circuit::{library, passes, Circuit};
use std::time::Instant;

/// A deliberately redundant kernel, standing in for compiler-generated
/// code: QFT·IQFT (pure identity) wrapped around a GHZ preparation.
fn unoptimized_kernel(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.extend(&library::ghz_state(n));
    c.extend(&library::qft(n));
    c.extend(&library::iqft(n));
    for q in 0..n {
        c.rz(q, 0.4).rz(q, -0.4); // cancels
    }
    c.measure_all();
    c
}

fn main() {
    initialize(InitOptions::default().shots(512).seed(7)).unwrap();
    let n = 10;

    // Kick off "JIT compilation" (the optimizer pipeline) asynchronously.
    let compile_task = qcor::async_task(move || {
        let mut circuit = unoptimized_kernel(n);
        let before = circuit.len();
        let removed = passes::optimize(&mut circuit);
        (circuit, before, removed)
    });

    // Overlap other classical/quantum work on the main thread
    // (Listing 5's "Other classical/quantum work").
    let q_bell = qalloc(2);
    Kernel::from_xasm("H(q[0]); CX(q[0], q[1]); Measure(q[0]); Measure(q[1]);", 2)
        .unwrap()
        .invoke(&q_bell, &[])
        .unwrap();
    println!("overlapped Bell run finished: {} shots collected", q_bell.total_shots());

    // Collect the compiled kernel (future.get()) and execute it.
    let (optimized, before, removed) = compile_task.get();
    println!("JIT pass removed {removed} of {before} instructions ({} remain)", optimized.len());

    let q = qalloc(n);
    let start = Instant::now();
    qcor::execute(&q, &optimized).unwrap();
    println!("optimized kernel executed in {:?}", start.elapsed());

    // The optimized circuit is still the GHZ kernel: all-zeros or all-ones.
    let counts = q.measurement_counts();
    let zeros = "0".repeat(n);
    let ones = "1".repeat(n);
    assert!(counts.keys().all(|k| *k == zeros || *k == ones), "{counts:?}");
    println!("GHZ counts intact after optimization: {counts:?}");
}
