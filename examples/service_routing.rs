//! The async execution service end to end: a bounded kernel queue with
//! backpressure, draining onto a fixed thread budget, with the QPUManager
//! routing tasks across all four cloneable backends — one process serving
//! a mixed workload fleet (the ROADMAP's "heavy traffic" shape).
//!
//! ```text
//! cargo run -p qcor --release --example service_routing
//! ```

use qcor::{
    initialize, qalloc, BackpressurePolicy, ExecServiceConfig, ExecutionService, InitOptions, Kernel,
    QPUManager, QcorError,
};

const BELL: &str = "H(q[0]); CX(q[0], q[1]); Measure(q[0]); Measure(q[1]);";

fn main() {
    // A deliberately tiny service: 2 executor threads, queue capacity 4.
    let svc = ExecutionService::new(
        ExecServiceConfig::default().threads(3).capacity(4).policy(BackpressurePolicy::Block),
    );
    println!(
        "service: {} pool threads, capacity {}, {:?}\n",
        svc.pool_threads(),
        svc.capacity(),
        svc.policy()
    );

    // 16 kernels, far beyond capacity: Block backpressure throttles the
    // producer, and round-robin routing steers every task to the next
    // backend in the rotation.
    let backends = ["qpp", "qpp-noisy", "qpp-density", "remote"];
    let futures: Vec<_> = (0..16u64)
        .map(|i| {
            svc.submit(move || {
                initialize(InitOptions::default().threads(1).shots(256).seed(i).route_round_robin([
                    "qpp",
                    "qpp-noisy",
                    "qpp-density",
                    "remote",
                ]))?;
                let ctx = QPUManager::instance().get_qpu().expect("just initialized");
                let q = qalloc(2);
                Kernel::from_xasm(BELL, 2)?.invoke(&q, &[])?;
                let clean = q.probability("00") + q.probability("11");
                Ok::<_, QcorError>((ctx.qpu.name(), clean))
            })
            .expect("Block submissions cannot overflow")
        })
        .collect();

    let mut per_backend = std::collections::BTreeMap::<String, usize>::new();
    for (i, f) in futures.into_iter().enumerate() {
        let (backend, clean) = f.wait().expect("no shedding under Block").expect("kernel runs");
        *per_backend.entry(backend.clone()).or_default() += 1;
        println!("task {i:2} -> {backend:<12} p(00)+p(11) = {clean:.3}");
    }

    println!("\nbackend distribution over the rotation:");
    for name in backends {
        println!("  {name:<12} {} tasks", per_backend.get(name).copied().unwrap_or(0));
    }
    let stats = svc.stats();
    println!(
        "\nqueue stats: {} submitted, {} completed, peak queue {} (capacity {}), {} shed, {} rejected",
        stats.submitted,
        stats.completed,
        stats.peak_queue_len,
        svc.capacity(),
        stats.shed,
        stats.rejected
    );
    assert_eq!(stats.completed, 16);
    assert!(stats.peak_queue_len <= svc.capacity());
}
