//! QAOA MaxCut on small graphs — a second variational workload expressed
//! through the same objective/optimizer API as VQE.
//!
//! ```text
//! cargo run -p qcor --release --example qaoa_maxcut
//! ```

use qcor_algos::qaoa::{solve_maxcut, Graph};

fn main() {
    // The 4-cycle: maxcut = 4.
    let c4 = Graph::cycle(4);
    let r = solve_maxcut(&c4, 1, &[0.7, 0.35]).unwrap();
    println!(
        "C4, p=1:  expected cut = {:.3} / optimal {}  (gamma = {:.3}, beta = {:.3})",
        r.expected_cut, r.optimal_cut, r.params[0], r.params[1]
    );

    let r2 = solve_maxcut(&c4, 2, &[0.7, 0.35, 0.4, 0.2]).unwrap();
    println!("C4, p=2:  expected cut = {:.3} / optimal {}", r2.expected_cut, r2.optimal_cut);

    // A weighted 5-vertex graph.
    let g = Graph::new(5, vec![(0, 1, 1.0), (0, 2, 2.0), (1, 2, 1.0), (1, 3, 1.5), (2, 4, 1.0), (3, 4, 2.0)]);
    let (best, assignment) = g.brute_force_maxcut();
    let r = solve_maxcut(&g, 2, &[0.6, 0.3, 0.4, 0.2]).unwrap();
    println!(
        "W5, p=2:  expected cut = {:.3} / optimal {:.1} (brute-force partition {:?})",
        r.expected_cut, best, assignment
    );
    let ratio = r.expected_cut / best;
    println!("approximation ratio = {ratio:.3}");
    assert!(ratio > 0.6, "QAOA should beat random assignment");
}
