//! The paper's Listing 3: VQE on the Deuteron Hamiltonian with the
//! two-qubit ansatz, plus the §VII asynchronous multi-start variant.
//!
//! ```text
//! cargo run -p qcor --release --example vqe_deuteron
//! ```

use qcor::{create_objective_function, create_optimizer, qalloc, HetMap, Kernel};
use qcor_algos::vqe::{deuteron_vqe_multistart, DEUTERON_GROUND_STATE};
use qcor_pauli::deuteron_hamiltonian;

fn main() {
    // ---- Listing 3, line by line -------------------------------------
    // Allocate 2 qubits.
    let q = qalloc(2);

    // Programmer sets the number of variational params.
    let n_variational_params = 1;

    // Create the Deuteron Hamiltonian:
    //   5.907 - 2.1433 X0X1 - 2.1433 Y0Y1 + .21829 Z0 - 6.125 Z1
    let h = deuteron_hamiltonian();

    // The ansatz kernel (XASM, as in the paper).
    let ansatz = Kernel::from_xasm(
        "__qpu__ void ansatz(qreg q, double theta) { X(q[0]); Ry(q[1], theta); CX(q[1], q[0]); }",
        2,
    )
    .unwrap();

    // Create the ObjectiveFunction with a central-difference gradient.
    let objective = create_objective_function(
        ansatz,
        h,
        q,
        n_variational_params,
        &HetMap::new().with("gradient-strategy", "central").with("step", 1e-3),
    )
    .unwrap();

    // Create the Optimizer ("nlopt" resolves to the in-tree L-BFGS).
    let optimizer = create_optimizer("nlopt", &HetMap::new().with("nlopt-optimizer", "l-bfgs")).unwrap();

    // Optimize.
    let result = optimizer.optimize(&objective, &[0.0]);
    println!("{:.6}", result.opt_val);
    println!(
        "theta* = {:.4}, reference ground state = {:.6}, error = {:.2e}",
        result.opt_params[0],
        DEUTERON_GROUND_STATE,
        (result.opt_val - DEUTERON_GROUND_STATE).abs()
    );

    // ---- §VII: pleasantly parallel θ-space exploration ----------------
    let multi = deuteron_vqe_multistart(&[-2.5, -1.0, 0.0, 1.5, 3.0], "l-bfgs").unwrap();
    println!(
        "\nmulti-start (5 async tasks): E = {:.6} from start θ0 = {:.2} after {} evaluations",
        multi.energy, multi.start[0], multi.evaluations
    );
    assert!((multi.energy - DEUTERON_GROUND_STATE).abs() < 1e-3);
}
