//! Minimal API-compatible stand-in for the `parking_lot` crate, backed by
//! `std::sync`. The container building this workspace has no access to
//! crates.io, so the subset of the API the workspace uses is reimplemented
//! here: `Mutex`/`RwLock` with non-poisoning guards and a `Condvar` whose
//! `wait` borrows the guard mutably instead of consuming it.
//!
//! Poisoning is deliberately swallowed (`parking_lot` has no poisoning): a
//! panic while a lock is held must not wedge every later `lock()` call,
//! because the thread-pool tests exercise exactly that scenario.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// Mutual exclusion primitive; `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Guard for [`Mutex`]. The inner `Option` exists so [`Condvar::wait`] can
/// temporarily take the std guard out while blocking.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard taken during Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard taken during Condvar::wait")
    }
}

/// Condition variable whose `wait` re-acquires the same guard in place.
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already taken");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Timed wait; returns `true` if the wait timed out (matching
    /// `parking_lot::WaitTimeoutResult::timed_out`). Spurious wakeups are
    /// possible, exactly as with [`Condvar::wait`].
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let inner = guard.0.take().expect("guard already taken");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.0 = Some(inner);
        result.timed_out()
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }
}
