//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline
//! serde stub. The workspace derives these on IR types for forward
//! compatibility but never serializes through them, so the derives expand to
//! nothing: the types stay annotated, and swapping in real serde later
//! requires no source changes.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
