//! Minimal stand-in for the `criterion` benchmark harness. The container
//! building this workspace has no access to crates.io, so the subset the
//! benches use — `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — is reimplemented as a
//! plain wall-clock timer.
//!
//! Measurement model: after one warm-up call, each benchmark runs up to
//! `sample_size` samples or until `measurement_time` elapses (whichever
//! comes first) and reports min/mean/max per iteration. `--quick` (or
//! `CRITERION_QUICK=1`) caps every benchmark at a single post-warm-up
//! sample so a full baseline sweep stays cheap. Statistical machinery
//! (outlier rejection, regressions, HTML reports) is out of scope.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_id.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the closure given to `bench_function`; `iter` runs and times
/// the routine.
pub struct Bencher<'a> {
    config: &'a Config,
    /// (label, samples) — filled by `iter`, reported by the caller.
    result: Option<Samples>,
}

struct Samples {
    times: Vec<Duration>,
}

impl Bencher<'_> {
    /// Time `routine` for the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, untimed
        let budget = self.config.measurement_time;
        let max_samples = if self.config.quick { 1 } else { self.config.sample_size.max(1) };
        let started = Instant::now();
        let mut times = Vec::with_capacity(max_samples);
        for done in 0..max_samples {
            let t0 = Instant::now();
            black_box(routine());
            times.push(t0.elapsed());
            if done + 1 < max_samples && started.elapsed() >= budget {
                break;
            }
        }
        self.result = Some(Samples { times });
    }

    /// `iter` variant that takes pre-cloned input per call; the stub times
    /// setup + routine together (benches in this workspace don't use it,
    /// it exists for drop-in compatibility).
    pub fn iter_with_setup<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(&mut self, mut setup: S, mut routine: F) {
        let mut wrapped = || routine(setup());
        self.iter(&mut wrapped);
    }
}

#[derive(Clone)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    quick: bool,
}

impl Default for Config {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let quick = args.iter().any(|a| a == "--quick")
            || std::env::var("CRITERION_QUICK").map(|v| v == "1").unwrap_or(false);
        Config {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            quick,
        }
    }
}

fn report(group: Option<&str>, id: &str, samples: &Samples) {
    let times = &samples.times;
    if times.is_empty() {
        return;
    }
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    let min = times.iter().min().copied().unwrap_or_default();
    let max = times.iter().max().copied().unwrap_or_default();
    let name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    println!("{name:<48} time: [{min:>12.3?} {mean:>12.3?} {max:>12.3?}]  samples: {}", times.len());
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { config: &self.config, result: None };
        f(&mut b);
        if let Some(samples) = b.result {
            report(None, &id.id, &samples);
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), config: self.config.clone(), _parent: self }
    }
}

/// Group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { config: &self.config, result: None };
        f(&mut b);
        if let Some(samples) = b.result {
            report(Some(&self.name), &id.id, &samples);
        }
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher { config: &self.config, result: None };
        f(&mut b, input);
        if let Some(samples) = b.result {
            report(Some(&self.name), &id.id, &samples);
        }
        self
    }

    pub fn finish(&mut self) {}
}

/// Declare a group-runner function from a list of `fn(&mut Criterion)`
/// targets, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare `fn main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
