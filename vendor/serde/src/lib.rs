//! Minimal stand-in for `serde`: the two trait names and their no-op
//! derives. The workspace annotates circuit-IR types with
//! `#[derive(Serialize, Deserialize)]` but nothing serializes through serde
//! yet (the JSON the paper's Listing 2 prints is hand-rolled), so empty
//! traits keep the annotations compiling until the real crate is available.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
