//! Minimal API-compatible stand-in for the `crossbeam` crate (channels
//! only), backed by `std::sync`. The container building this workspace has
//! no access to crates.io, so the subset the workspace uses — multi-producer
//! **multi-consumer** `unbounded`/`bounded` channels whose `Receiver` is
//! `Clone` — is reimplemented here with a `Mutex<VecDeque>` plus two
//! condvars. Throughput is far below real crossbeam, but the thread-pool
//! sends one message per parallel construct per worker, so the channel is
//! nowhere near the hot path.

pub mod channel;
