//! MPMC channels with the `crossbeam::channel` surface used by the
//! workspace: `unbounded`, `bounded`, cloneable `Sender`/`Receiver`,
//! blocking `send`/`recv`, and disconnect errors.
//!
//! # Lost-wakeup audit (the condvar discipline)
//!
//! This stub was audited against the `shot_statistics` futex-hang
//! signature (both threads parked, 0 CPU) after `CountLatch`/`WaitGroup`
//! were cleared in the pool's `latch.rs` audit. Findings: every wait loop
//! already re-checked its predicate under the lock (correct), but
//! notifications were issued **after** dropping the state lock, and pops
//! relied on a single `notify_one` per state change. On std's condvar
//! semantics that is sufficient; it is nevertheless hardened here to the
//! same discipline `latch.rs` documents, closing the two theoretical
//! windows a conforming-but-unhelpful condvar implementation leaves open:
//!
//! 1. **Notify while holding the lock.** A signal sent between a waiter's
//!    in-lock predicate check and its park cannot exist when the signaler
//!    holds the same lock — the waiter is either already parked (signal
//!    wakes it) or has not yet re-checked (it sees the new state and
//!    never parks).
//! 2. **Wakeup chaining (baton passing).** `notify_one` wakes *a* waiter,
//!    not necessarily one that can make progress, and a signal delivered
//!    to an already-woken thread is absorbed. Every consumer therefore
//!    re-notifies when it leaves observable work behind: a `recv` that
//!    pops while more messages remain passes the baton to the next parked
//!    receiver, and a bounded `send` that still leaves free capacity
//!    passes the baton to the next parked sender. A stranded waiter with
//!    satisfiable work is then impossible regardless of how signals were
//!    paired with threads.
//!
//! Disconnect paths (`Sender`/`Receiver` drop) use `notify_all`, also
//! under the lock. The always-on `*_wakeup_race_*` tests below mirror the
//! `latch_wakeup_race_*` hammers; `tests/tests/pool_stress.rs` adds the
//! `QCOR_STRESS=1` ping-pong hammer over this module.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Error returned by [`Sender::send`] when every receiver has been dropped.
/// The unsent value is handed back.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

// Like real crossbeam: `Debug` without requiring `T: Debug`.
impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender has been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    /// `None` = unbounded.
    capacity: Option<usize>,
}

impl<T> Chan<T> {
    fn new(capacity: Option<usize>) -> Arc<Self> {
        Arc::new(Chan {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        })
    }
}

/// Sending half of a channel. Clone freely; the channel disconnects for
/// receivers once the last clone is dropped.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Sender<T> {
    /// Block until there is room (bounded channels), then enqueue `value`.
    /// Fails only when every [`Receiver`] is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(cap) = self.chan.capacity {
            while state.queue.len() >= cap && state.receivers > 0 {
                state = self.chan.not_full.wait(state).unwrap_or_else(PoisonError::into_inner);
            }
        }
        if state.receivers == 0 {
            return Err(SendError(value));
        }
        state.queue.push_back(value);
        // Notify while holding the lock (see the module audit), and pass
        // the not-full baton on: if capacity remains after this push,
        // another parked sender can make progress right now and must not
        // depend on a signal that may have been absorbed elsewhere.
        self.chan.not_empty.notify_one();
        if let Some(cap) = self.chan.capacity {
            if state.queue.len() < cap {
                self.chan.not_full.notify_one();
            }
        }
        drop(state);
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().unwrap_or_else(PoisonError::into_inner).senders += 1;
        Sender { chan: Arc::clone(&self.chan) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.senders -= 1;
        if state.senders == 0 {
            // Under the lock: a receiver between its predicate check and
            // its park must either see the zero count or be parked when
            // this fires.
            self.chan.not_empty.notify_all();
        }
        drop(state);
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender(..)")
    }
}

/// Receiving half of a channel. Clone freely — each message is delivered to
/// exactly one receiver (work-stealing semantics, as in crossbeam).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Receiver<T> {
    /// Block until a message arrives. Fails only when the channel is empty
    /// and every [`Sender`] is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(value) = state.queue.pop_front() {
                self.notify_after_pop(&state);
                drop(state);
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.chan.not_empty.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
        match state.queue.pop_front() {
            Some(value) => {
                self.notify_after_pop(&state);
                drop(state);
                Ok(value)
            }
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// The post-pop notification protocol, run while still holding the
    /// state lock: one slot was freed (wake a parked sender), and if
    /// messages remain queued the not-empty baton is passed to the next
    /// parked receiver (see the module audit).
    fn notify_after_pop(&self, state: &State<T>) {
        self.chan.not_full.notify_one();
        if !state.queue.is_empty() {
            self.chan.not_empty.notify_one();
        }
    }

    /// Number of queued messages (snapshot).
    pub fn len(&self) -> usize {
        self.chan.state.lock().unwrap_or_else(PoisonError::into_inner).queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().unwrap_or_else(PoisonError::into_inner).receivers += 1;
        Receiver { chan: Arc::clone(&self.chan) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.receivers -= 1;
        if state.receivers == 0 {
            // Under the lock, like Sender::drop: blocked senders must
            // observe the disconnect or be parked when this fires.
            self.chan.not_full.notify_all();
        }
        drop(state);
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver(..)")
    }
}

/// Channel with no capacity limit; `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Chan::new(None);
    (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
}

/// Channel holding at most `cap` queued messages; `send` blocks while full.
/// A zero capacity is clamped to 1 (this stub has no rendezvous mode; the
/// workspace never uses `bounded(0)`).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let chan = Chan::new(Some(cap.max(1)));
    (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_errors_when_senders_gone() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_when_receivers_gone() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn cloned_receivers_split_messages() {
        let (tx, rx1) = unbounded::<u32>();
        let rx2 = rx1.clone();
        let n = 1000u32;
        let t1 = std::thread::spawn(move || (0..).map_while(|_| rx1.recv().ok()).sum::<u32>());
        let t2 = std::thread::spawn(move || (0..).map_while(|_| rx2.recv().ok()).sum::<u32>());
        for i in 1..=n {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total = t1.join().unwrap() + t2.join().unwrap();
        assert_eq!(total, n * (n + 1) / 2);
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }

    /// How many wait/notify race iterations the audit tests run — same
    /// scheme as `latch.rs`: a quick always-on default, thousands under
    /// `QCOR_STRESS=1`. A lost wakeup shows up as a hang, which the test
    /// harness timeout turns into a failure.
    fn race_iterations() -> usize {
        if std::env::var("QCOR_STRESS").map(|v| v == "1").unwrap_or(false) {
            20_000
        } else {
            500
        }
    }

    #[test]
    fn channel_wakeup_race_single_send_recv() {
        // Tightest window: the receiver races a lone sender between its
        // empty-queue check and its park (the shot_statistics hang shape:
        // one worker blocked in recv, one producer sending).
        for i in 0..race_iterations() {
            let (tx, rx) = unbounded::<usize>();
            let t = std::thread::spawn(move || tx.send(i).unwrap());
            assert_eq!(rx.recv(), Ok(i));
            t.join().unwrap();
        }
    }

    #[test]
    fn channel_wakeup_race_two_receivers_two_sends() {
        // Two parked receivers, two back-to-back sends: if a second
        // notify_one were absorbed by the first (already-woken) receiver,
        // the second receiver would sleep forever next to a queued item.
        // The baton pass in `recv` makes that impossible.
        for _ in 0..race_iterations() {
            let (tx, rx1) = unbounded::<u8>();
            let rx2 = rx1.clone();
            let r1 = std::thread::spawn(move || rx1.recv().unwrap());
            let r2 = std::thread::spawn(move || rx2.recv().unwrap());
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let got = r1.join().unwrap() + r2.join().unwrap();
            assert_eq!(got, 3);
        }
    }

    #[test]
    fn channel_wakeup_race_two_blocked_senders() {
        // Bounded(1) with two parked senders and one receiver draining
        // three items: each pop frees one slot; the send-side baton pass
        // keeps both senders progressing even if a signal lands on an
        // already-woken thread.
        for _ in 0..race_iterations() {
            let (tx1, rx) = bounded::<u8>(1);
            let tx2 = tx1.clone();
            tx1.send(0).unwrap(); // fill the slot so both senders park
            let s1 = std::thread::spawn(move || tx1.send(1).unwrap());
            let s2 = std::thread::spawn(move || tx2.send(2).unwrap());
            let mut got = 0u8;
            for _ in 0..3 {
                got += rx.recv().unwrap();
            }
            assert_eq!(got, 3);
            s1.join().unwrap();
            s2.join().unwrap();
        }
    }

    #[test]
    fn channel_wakeup_race_disconnect_while_parked() {
        // A receiver parked on an empty channel must observe the last
        // sender's drop (and vice versa for a sender parked on a full
        // bounded channel whose receiver drops).
        for _ in 0..race_iterations() {
            let (tx, rx) = unbounded::<u8>();
            let r = std::thread::spawn(move || rx.recv());
            drop(tx);
            assert_eq!(r.join().unwrap(), Err(RecvError));

            let (tx, rx) = bounded::<u8>(1);
            tx.send(9).unwrap();
            let s = std::thread::spawn(move || tx.send(10));
            drop(rx);
            assert_eq!(s.join().unwrap(), Err(SendError(10)));
        }
    }
}
