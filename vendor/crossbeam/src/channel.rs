//! MPMC channels with the `crossbeam::channel` surface used by the
//! workspace: `unbounded`, `bounded`, cloneable `Sender`/`Receiver`,
//! blocking `send`/`recv`, and disconnect errors.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Error returned by [`Sender::send`] when every receiver has been dropped.
/// The unsent value is handed back.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

// Like real crossbeam: `Debug` without requiring `T: Debug`.
impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender has been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    /// `None` = unbounded.
    capacity: Option<usize>,
}

impl<T> Chan<T> {
    fn new(capacity: Option<usize>) -> Arc<Self> {
        Arc::new(Chan {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        })
    }
}

/// Sending half of a channel. Clone freely; the channel disconnects for
/// receivers once the last clone is dropped.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Sender<T> {
    /// Block until there is room (bounded channels), then enqueue `value`.
    /// Fails only when every [`Receiver`] is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(cap) = self.chan.capacity {
            while state.queue.len() >= cap && state.receivers > 0 {
                state = self.chan.not_full.wait(state).unwrap_or_else(PoisonError::into_inner);
            }
        }
        if state.receivers == 0 {
            return Err(SendError(value));
        }
        state.queue.push_back(value);
        drop(state);
        self.chan.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().unwrap_or_else(PoisonError::into_inner).senders += 1;
        Sender { chan: Arc::clone(&self.chan) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.senders -= 1;
        let disconnected = state.senders == 0;
        drop(state);
        if disconnected {
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender(..)")
    }
}

/// Receiving half of a channel. Clone freely — each message is delivered to
/// exactly one receiver (work-stealing semantics, as in crossbeam).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Receiver<T> {
    /// Block until a message arrives. Fails only when the channel is empty
    /// and every [`Sender`] is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.chan.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.chan.not_empty.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
        match state.queue.pop_front() {
            Some(value) => {
                drop(state);
                self.chan.not_full.notify_one();
                Ok(value)
            }
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Number of queued messages (snapshot).
    pub fn len(&self) -> usize {
        self.chan.state.lock().unwrap_or_else(PoisonError::into_inner).queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().unwrap_or_else(PoisonError::into_inner).receivers += 1;
        Receiver { chan: Arc::clone(&self.chan) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.receivers -= 1;
        let disconnected = state.receivers == 0;
        drop(state);
        if disconnected {
            self.chan.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver(..)")
    }
}

/// Channel with no capacity limit; `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Chan::new(None);
    (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
}

/// Channel holding at most `cap` queued messages; `send` blocks while full.
/// A zero capacity is clamped to 1 (this stub has no rendezvous mode; the
/// workspace never uses `bounded(0)`).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let chan = Chan::new(Some(cap.max(1)));
    (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_errors_when_senders_gone() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_when_receivers_gone() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn cloned_receivers_split_messages() {
        let (tx, rx1) = unbounded::<u32>();
        let rx2 = rx1.clone();
        let n = 1000u32;
        let t1 = std::thread::spawn(move || (0..).map_while(|_| rx1.recv().ok()).sum::<u32>());
        let t2 = std::thread::spawn(move || (0..).map_while(|_| rx2.recv().ok()).sum::<u32>());
        for i in 1..=n {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total = t1.join().unwrap() + t2.join().unwrap();
        assert_eq!(total, n * (n + 1) / 2);
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }
}
