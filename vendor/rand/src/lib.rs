//! Minimal API-compatible stand-in for the `rand` 0.8 crate. The container
//! building this workspace has no access to crates.io, so the subset the
//! workspace uses is reimplemented here:
//!
//! * [`StdRng`] — xoshiro256++ (Blackman/Vigna), seeded through SplitMix64,
//!   so `seed_from_u64` streams are high quality and reproducible;
//! * [`thread_rng`] — a per-thread [`StdRng`] seeded from OS entropy-ish
//!   sources (time, ASLR, thread id);
//! * [`Rng`] — `gen`, `gen_range`, `gen_bool`, `sample`, `sample_iter`;
//! * [`distributions`] — `Standard`, `Alphanumeric`, `Distribution`;
//! * [`seq::SliceRandom`] — `shuffle`, `choose`.
//!
//! Determinism contract: for a fixed seed, `StdRng` produces the same
//! stream on every platform — the simulator's reproducible-shots tests
//! rely on this, not on matching upstream `rand` output.

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::{Distribution, Standard};
pub use rngs::{StdRng, ThreadRng};

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value via the [`Standard`] distribution (`f64` in `[0, 1)`,
    /// full-range integers, fair `bool`).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Uniform sample from a half-open or inclusive range. Panics if the
    /// range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }

    fn sample_iter<T, D: Distribution<T>>(self, distr: D) -> distributions::DistIter<D, Self, T>
    where
        Self: Sized,
    {
        distributions::DistIter { distr, rng: self, _marker: std::marker::PhantomData }
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable generators; [`SeedableRng::from_entropy`] draws a best-effort
/// nondeterministic seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;

    fn from_entropy() -> Self {
        Self::seed_from_u64(rngs::entropy_seed())
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                // Rejection sampling to kill modulo bias.
                let zone = u128::from(u64::MAX) + 1 - ((u128::from(u64::MAX) + 1) % width);
                loop {
                    let v = u128::from(rng.next_u64());
                    if v < zone {
                        return (self.start as i128 + (v % width) as i128) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                SampleRange::sample_single(start..end + 1, rng)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit: f64 = Standard.sample(rng);
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit: f64 = Standard.sample(rng);
        self.start + (self.end - self.start) * unit as f32
    }
}

/// Per-thread generator handle; see [`rngs::ThreadRng`].
pub fn thread_rng() -> ThreadRng {
    rngs::thread_rng()
}

/// Convenience one-shot sample from the [`Standard`] distribution.
pub fn random<T>() -> T
where
    Standard: Distribution<T>,
{
    thread_rng().gen()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_int_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_float_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let x = rng.gen_range(-3.0..3.0);
            assert!((-3.0..3.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "got {hits}");
    }

    #[test]
    fn alphanumeric_sample_iter() {
        let s: String =
            thread_rng().sample_iter(&distributions::Alphanumeric).take(16).map(char::from).collect();
        assert_eq!(s.len(), 16);
        assert!(s.chars().all(|c| c.is_ascii_alphanumeric()));
    }

    #[test]
    fn shuffle_is_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(5);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
