//! The distribution subset used by the workspace: [`Standard`],
//! [`Alphanumeric`], and the [`Distribution`] trait with
//! [`Rng::sample_iter`](crate::Rng::sample_iter) support.

use crate::RngCore;
use std::marker::PhantomData;

/// Types that can produce values of `T` from a source of randomness.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution per type: `f64`/`f32` uniform in `[0, 1)`,
/// integers over their full range, fair `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniformly distributed ASCII letters and digits, yielded as `u8` (matching
/// rand 0.8, where callers write `.map(char::from)`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Alphanumeric;

const ALPHANUMERIC: &[u8; 62] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";

impl Distribution<u8> for Alphanumeric {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
        loop {
            // 6 random bits, rejecting 62/63 to stay unbiased.
            let v = (rng.next_u64() >> 58) as usize;
            if v < ALPHANUMERIC.len() {
                return ALPHANUMERIC[v];
            }
        }
    }
}

/// Iterator returned by [`Rng::sample_iter`](crate::Rng::sample_iter).
pub struct DistIter<D, R, T> {
    pub(crate) distr: D,
    pub(crate) rng: R,
    pub(crate) _marker: PhantomData<T>,
}

impl<D, R, T> Iterator for DistIter<D, R, T>
where
    D: Distribution<T>,
    R: RngCore,
{
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}
