//! Slice sampling helpers: the [`SliceRandom`] subset used by the
//! workspace (`shuffle`, `choose`).

use crate::{Rng, RngCore};

/// Extension trait for random operations on slices.
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// Uniformly random element, or `None` if the slice is empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }
}
