//! Concrete generators: [`StdRng`] (xoshiro256++) and the per-thread
//! [`ThreadRng`] handle.

use crate::{RngCore, SeedableRng};
use std::cell::RefCell;
use std::rc::Rc;

/// xoshiro256++ (Blackman & Vigna). 256-bit state, 64-bit output, passes
/// BigCrush; more than adequate for simulator shot sampling.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

/// SplitMix64 — the recommended seeder for xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Best-effort nondeterministic seed material: wall clock, monotonic clock,
/// an ASLR-dependent address, the thread id, and a process-wide counter.
pub(crate) fn entropy_seed() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let mut state = 0x243F_6A88_85A3_08D3u64; // pi digits, nothing-up-my-sleeve
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0);
    state ^= splitmix64(&mut { nanos });
    state ^= (&COUNTER as *const _ as u64).rotate_left(17);
    state ^= COUNTER.fetch_add(0x9E37_79B9, Ordering::Relaxed);
    let tid = format!("{:?}", std::thread::current().id());
    for b in tid.bytes() {
        state = state.rotate_left(8) ^ u64::from(b);
    }
    let mut sm = state;
    splitmix64(&mut sm)
}

thread_local! {
    static THREAD_RNG: Rc<RefCell<StdRng>> =
        Rc::new(RefCell::new(StdRng::seed_from_u64(entropy_seed())));
}

/// Cheap handle to a lazily initialized per-thread [`StdRng`]. Not `Send`
/// (each thread gets its own stream), matching rand 0.8.
#[derive(Debug, Clone)]
pub struct ThreadRng {
    rng: Rc<RefCell<StdRng>>,
}

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        self.rng.borrow_mut().next_u64()
    }
}

pub(crate) fn thread_rng() -> ThreadRng {
    ThreadRng { rng: THREAD_RNG.with(Rc::clone) }
}
