//! Runner configuration and deterministic per-case RNG derivation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Subset of proptest's config the workspace uses: the case count.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG for one (test, case) pair: FNV-1a over the test name,
/// mixed with the case index. Stable across runs and platforms so CI
/// failures reproduce locally.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash ^ (u64::from(case) << 32 | u64::from(case)))
}
