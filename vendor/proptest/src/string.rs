//! String generation from a tiny regex subset: literals, character classes
//! (`[01]`, `[a-z]`), `.`, escapes (`\d`, `\w`, `\\`), and the quantifiers
//! `{n}`, `{n,m}`, `?`, `*`, `+` (star/plus capped at 8 repetitions).
//! This covers the patterns the workspace's property tests use (e.g.
//! `"[01]{2}"`); anything fancier panics loudly rather than mis-generating.

use rand::rngs::StdRng;
use rand::Rng;

enum Atom {
    /// Set of candidate characters, sampled uniformly.
    Class(Vec<char>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

pub fn sample_regex(pattern: &str, rng: &mut StdRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let reps = if piece.min == piece.max { piece.min } else { rng.gen_range(piece.min..=piece.max) };
        for _ in 0..reps {
            match &piece.atom {
                Atom::Class(chars) => {
                    let i = rng.gen_range(0..chars.len());
                    out.push(chars[i]);
                }
            }
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("proptest stub: unterminated class in regex {pattern:?}"));
                let set = expand_class(&chars[i + 1..close], pattern);
                i = close + 1;
                Atom::Class(set)
            }
            '.' => {
                i += 1;
                Atom::Class((' '..='~').collect())
            }
            '\\' => {
                let esc = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("proptest stub: dangling escape in regex {pattern:?}"));
                i += 2;
                Atom::Class(match esc {
                    'd' => ('0'..='9').collect(),
                    'w' => ('a'..='z').chain('A'..='Z').chain('0'..='9').chain(['_']).collect(),
                    other => vec![other],
                })
            }
            '(' | ')' | '|' | '^' | '$' => {
                panic!("proptest stub: regex feature {:?} not supported (pattern {pattern:?})", chars[i])
            }
            literal => {
                i += 1;
                Atom::Class(vec![literal])
            }
        };
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close =
                    chars[i..].iter().position(|&c| c == '}').map(|p| i + p).unwrap_or_else(|| {
                        panic!("proptest stub: unterminated repetition in regex {pattern:?}")
                    });
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    None => {
                        let n = body.parse().expect("repetition count");
                        (n, n)
                    }
                    Some((lo, hi)) => {
                        let lo = lo.parse().expect("repetition lower bound");
                        let hi =
                            if hi.is_empty() { lo + 8 } else { hi.parse().expect("repetition upper bound") };
                        (lo, hi)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(body.first() != Some(&'^'), "proptest stub: negated classes not supported (pattern {pattern:?})");
    let mut set = Vec::new();
    let mut j = 0;
    while j < body.len() {
        if j + 2 < body.len() && body[j + 1] == '-' {
            let (lo, hi) = (body[j], body[j + 2]);
            set.extend(lo..=hi);
            j += 3;
        } else {
            set.push(body[j]);
            j += 1;
        }
    }
    assert!(!set.is_empty(), "proptest stub: empty class in regex {pattern:?}");
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn binary_class_repetition() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let s = sample_regex("[01]{2}", &mut rng);
            assert_eq!(s.len(), 2);
            assert!(s.chars().all(|c| c == '0' || c == '1'));
        }
    }

    #[test]
    fn ranges_and_quantifiers() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let s = sample_regex("[a-c]+x?\\d{1,3}", &mut rng);
            assert!(s.len() >= 2);
        }
    }
}
