//! The [`Strategy`] trait and combinators. A strategy here is just a pure
//! generator — `generate(rng) -> Value` — with no shrink tree.

use rand::rngs::StdRng;
use rand::Rng;

/// Generator of random values plus the combinator surface the workspace
/// uses (`prop_map`, `prop_filter`, `prop_filter_map`, `boxed`).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason, pred }
    }

    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { inner: self, reason, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Equal-weight choice between same-valued strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let arm = rng.gen_range(0..self.0.len());
        self.0[arm].generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

const MAX_REJECTS: usize = 10_000;

#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..MAX_REJECTS {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter({}) rejected {MAX_REJECTS} candidates in a row", self.reason);
    }
}

#[derive(Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        for _ in 0..MAX_REJECTS {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map({}) rejected {MAX_REJECTS} candidates in a row", self.reason);
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

/// `&'static str` is a strategy generating strings from a regex subset —
/// see [`crate::string`].
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::sample_regex(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}
