//! Minimal stand-in for the `proptest` crate. The container building this
//! workspace has no access to crates.io, so the property-test files keep
//! their original `proptest!` sources and run against this stub instead.
//!
//! Semantics versus real proptest:
//!
//! * cases are generated from a deterministic per-test seed (test name ×
//!   case index), so failures are reproducible run to run;
//! * there is **no shrinking** — a failing case reports the assertion at
//!   full size;
//! * `prop_assert*` map to the std `assert*` macros (they panic instead of
//!   returning `TestCaseError`, which is indistinguishable at test level);
//! * string strategies support the tiny regex subset the workspace uses
//!   (character classes, `{n}`/`{n,m}`, `?`, `*`, `+`, `.`, literals).

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Namespace mirror so `prop::collection::vec(..)` works after
/// `use proptest::prelude::*`.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Entry macro: expands each `#[test] fn name(pat in strategy, ..) { body }`
/// into a plain `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let config = $cfg;
            let strategies = ($($strat,)+);
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::case_rng(stringify!($name), case);
                let ($($pat,)+) = $crate::strategy::Strategy::generate(&strategies, &mut rng);
                $body
            }
        }
    )*};
}

/// Union of same-valued strategies, each arm equally likely (the stub
/// ignores proptest's optional arm weights, which the workspace never uses).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}
