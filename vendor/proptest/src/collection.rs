//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeMap;
use std::ops::Range;

/// `Vec` of `size` elements drawn from `element`, with `size` uniform in
/// the given range.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = sample_size(&self.size, rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `BTreeMap` with up to `size` entries (duplicate generated keys collapse,
/// as in real proptest, which also treats the size as a target rather than
/// a guarantee once keys collide).
pub fn btree_map<K, V>(keys: K, values: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy { keys, values, size }
}

pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: Range<usize>,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut StdRng) -> BTreeMap<K::Value, V::Value> {
        let target = sample_size(&self.size, rng);
        let mut map = BTreeMap::new();
        // A few extra attempts to approach the target size despite key
        // collisions, then accept whatever landed.
        for _ in 0..target.saturating_mul(2) {
            if map.len() >= target {
                break;
            }
            map.insert(self.keys.generate(rng), self.values.generate(rng));
        }
        map
    }
}

fn sample_size(range: &Range<usize>, rng: &mut StdRng) -> usize {
    if range.is_empty() {
        range.start
    } else {
        rng.gen_range(range.clone())
    }
}
